//! # mis2 — Parallel, Deterministic Distance-2 Maximal Independent Set and
//! Graph Coarsening
//!
//! A from-scratch Rust reproduction of Kelley & Rajamanickam, *"Parallel,
//! Portable Algorithms for Distance-2 Maximal Independent Set and Graph
//! Coarsening"* (IPDPS 2022), the MIS-2 implementation shipped in Kokkos
//! Kernels — including every substrate the paper's evaluation depends on
//! (graphs and generators, sparse linear algebra, coloring, aggregation,
//! Krylov solvers, smoothed-aggregation multigrid, cluster Gauss-Seidel).
//!
//! ## Quick start
//!
//! ```
//! use mis2::prelude::*;
//!
//! // The paper's Laplace3D problem (Galeri 7-point stencil).
//! let g = mis2::graph::gen::laplace3d(20, 20, 20);
//!
//! // Algorithm 1: parallel, deterministic MIS-2.
//! let result = mis2::mis2(&g);
//! assert!(mis2::core::verify_mis2(&g, &result.is_in).is_ok());
//!
//! // Algorithm 3: MIS-2 aggregation for multigrid coarsening.
//! let agg = mis2::coarsen::mis2_aggregation(&g);
//! assert!(agg.validate(&g).is_ok());
//! println!("|MIS-2| = {}, {} aggregates", result.size(), agg.num_aggregates);
//! ```
//!
//! ## Crate map
//!
//! | module | underlying crate | contents |
//! |---|---|---|
//! | [`prim`] | `mis2-prim` | scans, compaction, hashes, pools, timing |
//! | [`graph`] | `mis2-graph` | CSR graphs, generators, Matrix Market, G² |
//! | [`sparse`] | `mis2-sparse` | CSR matrices, SpMV, SpGEMM, Galerkin, LU |
//! | [`core`] | `mis2-core` | **Algorithm 1**, Bell baseline, Luby, oracle |
//! | [`color`] | `mis2-color` | D1/D2 parallel colorings, color sets |
//! | [`coarsen`] | `mis2-coarsen` | **Algorithms 2 & 3**, baselines, prolongators |
//! | [`solver`] | `mis2-solver` | CG, GMRES, point/cluster SGS (**Algorithm 4**), SA-AMG |
//! | [`svc`] | `mis2-svc` | graph registry, batching scheduler, loopback server |
//!
//! Benchmarks reproducing every table and figure live in the `mis2-bench`
//! crate (`cargo run -p mis2-bench --release --bin repro -- all`).

pub use mis2_coarsen as coarsen;
pub use mis2_color as color;
pub use mis2_core as core;
pub use mis2_graph as graph;
pub use mis2_prim as prim;
pub use mis2_solver as solver;
pub use mis2_sparse as sparse;
pub use mis2_svc as svc;

pub use mis2_core::{mis2, mis2_with_config, Mis2Config, Mis2Result};

/// Commonly used items in one import.
pub mod prelude {
    pub use mis2_coarsen::{
        aggregate_stats, mis2_aggregation, mis2_basic, partition, strength_graph, AggScheme,
        AggStats, Aggregation, Partition, PartitionConfig,
    };
    pub use mis2_color::{color_d1, color_d2, color_d2_mis, Coloring};
    pub use mis2_core::{
        bell_mis2, luby_mis1, mis2, mis2_with_config, mis_k, verify_mis2, Mis2Config, Mis2Result,
        PriorityScheme, SimdMode,
    };
    pub use mis2_graph::{CsrGraph, GraphStats, Scale, VertexId};
    pub use mis2_solver::{
        gmres, pcg, AmgConfig, AmgHierarchy, ClusterMcSgs, GsMode, PointMcSgs, Preconditioner,
        SeqSgs, SmootherKind, SolveOpts,
    };
    pub use mis2_sparse::CsrMatrix;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let g = crate::graph::gen::path(10);
        let r = crate::mis2(&g);
        assert!(r.size() >= 2);
    }
}
