//! Verification of (distance-1 and distance-2) maximal independent sets.
//!
//! The checks are O(V + E):
//!
//! * `cnt[v]` = number of `IN` vertices among `adj(v)`.
//! * **Distance-2 independence**: an `IN` vertex `u` must have (a) no `IN`
//!   neighbor and (b) `cnt[w] <= 1` for every neighbor `w` (the single
//!   permitted `IN` neighbor of `w` being `u` itself — any second one would
//!   lie at distance 2 from `u` through `w`).
//! * **Distance-2 maximality**: every vertex must be `IN`, have an `IN`
//!   neighbor, or have a neighbor with an `IN` neighbor.

use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use std::fmt;

/// A verification failure, pinpointing a witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisViolation {
    /// Two set members within the forbidden distance.
    NotIndependent {
        u: VertexId,
        v: VertexId,
        distance: usize,
    },
    /// A vertex that could still be added to the set.
    NotMaximal { v: VertexId },
    /// Mask length does not match the graph.
    BadMask { expected: usize, got: usize },
}

impl fmt::Display for MisViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisViolation::NotIndependent { u, v, distance } => {
                write!(f, "vertices {u} and {v} are both IN at distance {distance}")
            }
            MisViolation::NotMaximal { v } => {
                write!(f, "vertex {v} could be added to the set (not maximal)")
            }
            MisViolation::BadMask { expected, got } => {
                write!(f, "mask length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for MisViolation {}

/// Count of IN vertices among each vertex's neighbors.
fn in_neighbor_counts(g: &CsrGraph, is_in: &[bool]) -> Vec<u32> {
    par::map_range(0..g.num_vertices() as VertexId, |v| {
        g.neighbors(v)
            .iter()
            .filter(|&&w| is_in[w as usize])
            .count() as u32
    })
}

/// Verify that `is_in` is a maximal distance-2 independent set of `g`.
pub fn verify_mis2(g: &CsrGraph, is_in: &[bool]) -> Result<(), MisViolation> {
    let n = g.num_vertices();
    if is_in.len() != n {
        return Err(MisViolation::BadMask {
            expected: n,
            got: is_in.len(),
        });
    }
    let cnt = in_neighbor_counts(g, is_in);

    // Independence.
    if let Some(viol) = par::find_map_range(0..n as VertexId, |u| {
        if !is_in[u as usize] {
            return None;
        }
        for &w in g.neighbors(u) {
            if is_in[w as usize] {
                return Some(MisViolation::NotIndependent {
                    u,
                    v: w,
                    distance: 1,
                });
            }
            if cnt[w as usize] > 1 {
                // Find the concrete distance-2 witness.
                let other = g
                    .neighbors(w)
                    .iter()
                    .copied()
                    .find(|&x| x != u && is_in[x as usize])
                    .expect("cnt > 1 implies another IN neighbor");
                return Some(MisViolation::NotIndependent {
                    u,
                    v: other,
                    distance: 2,
                });
            }
        }
        None
    }) {
        return Err(viol);
    }

    // Maximality.
    if let Some(viol) = par::find_map_range(0..n as VertexId, |v| {
        if is_in[v as usize] || cnt[v as usize] > 0 {
            return None;
        }
        if g.neighbors(v).iter().any(|&w| cnt[w as usize] > 0) {
            return None;
        }
        Some(MisViolation::NotMaximal { v })
    }) {
        return Err(viol);
    }
    Ok(())
}

/// Verify that `is_in` is a maximal (distance-1) independent set of `g`.
pub fn verify_mis1(g: &CsrGraph, is_in: &[bool]) -> Result<(), MisViolation> {
    let n = g.num_vertices();
    if is_in.len() != n {
        return Err(MisViolation::BadMask {
            expected: n,
            got: is_in.len(),
        });
    }
    if let Some(viol) = par::find_map_range(0..n as VertexId, |u| {
        if is_in[u as usize] {
            g.neighbors(u)
                .iter()
                .find(|&&w| is_in[w as usize])
                .map(|&w| MisViolation::NotIndependent {
                    u,
                    v: w,
                    distance: 1,
                })
        } else if !g.neighbors(u).iter().any(|&w| is_in[w as usize]) {
            Some(MisViolation::NotMaximal { v: u })
        } else {
            None
        }
    }) {
        return Err(viol);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    fn mask(n: usize, members: &[u32]) -> Vec<bool> {
        let mut m = vec![false; n];
        for &v in members {
            m[v as usize] = true;
        }
        m
    }

    #[test]
    fn accepts_valid_mis2_on_path() {
        // Path 0..6: {0, 3, 6} are pairwise at distance 3.
        let g = gen::path(7);
        verify_mis2(&g, &mask(7, &[0, 3, 6])).unwrap();
    }

    #[test]
    fn rejects_distance1_violation() {
        let g = gen::path(7);
        let err = verify_mis2(&g, &mask(7, &[0, 1])).unwrap_err();
        assert!(
            matches!(err, MisViolation::NotIndependent { distance: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_distance2_violation() {
        let g = gen::path(7);
        let err = verify_mis2(&g, &mask(7, &[0, 2, 5])).unwrap_err();
        assert!(
            matches!(err, MisViolation::NotIndependent { distance: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_non_maximal() {
        // Path of 7: {0} leaves vertices 3..6 at distance > 2.
        let g = gen::path(7);
        let err = verify_mis2(&g, &mask(7, &[0])).unwrap_err();
        assert!(matches!(err, MisViolation::NotMaximal { .. }), "{err}");
    }

    #[test]
    fn rejects_empty_set_on_nonempty_graph() {
        let g = gen::path(3);
        assert!(verify_mis2(&g, &mask(3, &[])).is_err());
    }

    #[test]
    fn accepts_empty_graph() {
        let g = CsrGraph::empty(0);
        verify_mis2(&g, &[]).unwrap();
    }

    #[test]
    fn rejects_bad_mask_length() {
        let g = gen::path(5);
        assert!(matches!(
            verify_mis2(&g, &[true, false]),
            Err(MisViolation::BadMask { .. })
        ));
    }

    #[test]
    fn mis1_checks() {
        let g = gen::path(5);
        // {0, 2, 4} is a valid MIS-1 of a 5-path.
        verify_mis1(&g, &mask(5, &[0, 2, 4])).unwrap();
        // {0, 1} violates independence.
        assert!(matches!(
            verify_mis1(&g, &mask(5, &[0, 1])),
            Err(MisViolation::NotIndependent { distance: 1, .. })
        ));
        // {0} is not maximal.
        assert!(matches!(
            verify_mis1(&g, &mask(5, &[0])),
            Err(MisViolation::NotMaximal { .. })
        ));
    }

    #[test]
    fn star_center_or_all_leaves() {
        let g = gen::star(6);
        // The center alone is a valid MIS-2.
        verify_mis2(&g, &mask(6, &[0])).unwrap();
        // A single leaf also dominates everything within distance 2.
        verify_mis2(&g, &mask(6, &[3])).unwrap();
        // Two leaves are at distance 2 through the hub.
        assert!(verify_mis2(&g, &mask(6, &[1, 2])).is_err());
    }
}
