//! The seed Algorithm 1 engine, frozen verbatim.
//!
//! This module is a byte-for-byte copy of the pre-adaptive [`crate::engine`]
//! run loop (global `avg_degree >= 16` SIMD gate, per-vertex
//! `SIMD_MIN_DEGREE` branch, separate count / compact / refresh sweeps).
//! It exists for two reasons:
//!
//! 1. **Oracle** — the adaptive engine must stay *bitwise-identical* to
//!    this implementation for every configuration, pool size and feature
//!    backend; `tests/engine_equiv.rs` asserts `engine == reference`
//!    across the full ladder/config matrix.
//! 2. **Baseline** — `crates/bench/benches/mis2_kernel.rs` reports the
//!    adaptive engine's end-to-end speedup *vs the pre-PR engine*, which
//!    is exactly this code.
//!
//! Do not optimize or restructure this module: its only value is being
//! the frozen seed semantics. Behavioral bugs found here should be fixed
//! in [`crate::engine`] first and only mirrored if the golden
//! fingerprints in `tests/cross_backend.rs` prove the seed itself wrong.

use crate::engine::{Mis2Config, Mis2Result, RoundStats, SimdMode};
use crate::tuple::{id_bits, Packed, TupleRepr, Unpacked};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::{compact, par, SharedMut};

fn simd_enabled(mode: SimdMode, g: &CsrGraph) -> bool {
    match mode {
        SimdMode::Off => false,
        SimdMode::On => true,
        SimdMode::Auto => g.avg_degree() >= 16.0,
    }
}

/// Compute an MIS-2 with the default configuration, seed-engine semantics.
pub fn mis2(g: &CsrGraph) -> Mis2Result {
    mis2_with_config(g, &Mis2Config::default())
}

/// Compute an MIS-2 with an explicit configuration using the frozen seed
/// engine. Kept only as the equivalence oracle / bench baseline — use
/// [`crate::engine::mis2_with_config`] everywhere else.
pub fn mis2_with_config(g: &CsrGraph, cfg: &Mis2Config) -> Mis2Result {
    if g.num_vertices() == 0 {
        return Mis2Result {
            in_set: Vec::new(),
            is_in: Vec::new(),
            iterations: 0,
            history: Vec::new(),
        };
    }
    if cfg.packed {
        run::<Packed>(g, cfg)
    } else {
        run::<Unpacked>(g, cfg)
    }
}

/// Chunk size for neighbor-parallel reductions (seed value).
const SIMD_CHUNK: usize = 256;
/// Minimum degree before the inner loop actually splits (seed value).
const SIMD_MIN_DEGREE: usize = 2 * SIMD_CHUNK;

fn run<T: TupleRepr>(g: &CsrGraph, cfg: &Mis2Config) -> Mis2Result {
    let n = g.num_vertices();
    let bits = id_bits(n);
    let simd = simd_enabled(cfg.simd, g);
    // Both representations see the same truncated priorities so that the
    // packed/unpacked toggle changes memory layout only, never the result
    // (the packed word can only hold 64 - bits priority bits).
    let prio_mask: u64 = if bits == 0 {
        u64::MAX
    } else {
        ((1u128 << (64 - bits)) - 1) as u64
    };

    // T and M arrays. M's initial content is never read: every vertex is in
    // worklist2 for iteration 0 and is overwritten by Refresh Column.
    let mut t: Vec<T> = vec![T::OUT; n];
    let mut m: Vec<T> = vec![T::OUT; n];
    let mut wl1: Vec<VertexId> = (0..n as VertexId).collect();
    let mut wl2: Vec<VertexId> = (0..n as VertexId).collect();
    let mut history: Vec<RoundStats> = Vec::new();

    // Refresh Row for iteration 0 (hoisted out of the loop so later
    // iterations can skip decided vertices in the no-worklist mode).
    {
        let tw = SharedMut::new(&mut t);
        par::for_each(&wl1, |&v| {
            let p = cfg.priorities.priority(cfg.seed, 0, v) & prio_mask;
            unsafe { tw.write(v as usize, T::undecided(p, v, bits)) };
        });
    }

    let mut iter: u64 = 0;
    let mut prev_in_total = 0usize;
    loop {
        let undecided_at_start = if cfg.use_worklists {
            wl1.len()
        } else {
            par::count(&t, |x| x.is_undecided())
        };

        // --- Refresh Column: M_v = min(T_w : w in adj(v) ∪ {v}) ---------
        {
            let mw = SharedMut::new(&mut m);
            let t_ref: &[T] = &t;
            if simd {
                par::for_each(&wl2, |&v| {
                    let mut mv = t_ref[v as usize];
                    let nbrs = g.neighbors(v);
                    if nbrs.len() >= SIMD_MIN_DEGREE {
                        let chunk_min = par::chunked_reduce(
                            nbrs,
                            SIMD_CHUNK,
                            |c| c.iter().map(|&w| t_ref[w as usize]).min().unwrap_or(T::OUT),
                            T::OUT,
                            |a, b| a.min(b),
                        );
                        mv = mv.min(chunk_min);
                    } else {
                        for &w in nbrs {
                            mv = mv.min(t_ref[w as usize]);
                        }
                    }
                    if mv.is_in() {
                        mv = T::OUT;
                    }
                    unsafe { mw.write(v as usize, mv) };
                });
            } else {
                par::for_each(&wl2, |&v| {
                    let mut mv = t_ref[v as usize];
                    for &w in g.neighbors(v) {
                        mv = mv.min(t_ref[w as usize]);
                    }
                    if mv.is_in() {
                        mv = T::OUT;
                    }
                    unsafe { mw.write(v as usize, mv) };
                });
            }
        }

        // --- Decide Set --------------------------------------------------
        {
            let tw = SharedMut::new(&mut t);
            let m_ref: &[T] = &m;
            par::for_each(&wl1, |&v| {
                // SAFETY: each worklist1 vertex appears once; we only read
                // and write slot v.
                let tv = unsafe { tw.read(v as usize) };
                if !tv.is_undecided() {
                    // Only reachable in no-worklist mode, where decided
                    // vertices stay in the (full) worklist.
                    return;
                }
                let mv = m_ref[v as usize];
                // Self contribution of the implicit self-loop.
                let mut any_out = mv.is_out();
                let mut all_eq = mv == tv;
                let nbrs = g.neighbors(v);
                if !any_out {
                    if simd && nbrs.len() >= SIMD_MIN_DEGREE {
                        let (o, e) = par::chunked_reduce(
                            nbrs,
                            SIMD_CHUNK,
                            |c| {
                                let mut o = false;
                                let mut e = true;
                                for &w in c {
                                    let mw_ = m_ref[w as usize];
                                    if mw_.is_out() {
                                        o = true;
                                        break;
                                    }
                                    if mw_ != tv {
                                        e = false;
                                    }
                                }
                                (o, e)
                            },
                            (false, true),
                            |a, b| (a.0 || b.0, a.1 && b.1),
                        );
                        any_out = o;
                        all_eq = all_eq && e;
                    } else {
                        for &w in nbrs {
                            let mw_ = m_ref[w as usize];
                            if mw_.is_out() {
                                any_out = true;
                                break;
                            }
                            if mw_ != tv {
                                all_eq = false;
                            }
                        }
                    }
                }
                if any_out {
                    unsafe { tw.write(v as usize, T::OUT) };
                } else if all_eq {
                    unsafe { tw.write(v as usize, T::IN) };
                }
            });
        }

        // --- Bookkeeping + worklist compaction ---------------------------
        iter += 1;
        let (newly_in, newly_out, remaining);
        if cfg.use_worklists {
            // worklist1 held exactly the previously-undecided vertices, so
            // counting decided entries in it gives the per-iteration deltas.
            newly_in = par::count(&wl1, |&v| t[v as usize].is_in());
            newly_out = par::count(&wl1, |&v| t[v as usize].is_out());
            wl1 = compact::par_filter(&wl1, |&v| t[v as usize].is_undecided());
            wl2 = compact::par_filter(&wl2, |&v| !m[v as usize].is_out());
            remaining = wl1.len();
        } else {
            // Full sweeps see cumulative totals; derive the deltas.
            let in_total = par::count(&t, |x| x.is_in());
            remaining = par::count(&t, |x| x.is_undecided());
            newly_in = in_total - prev_in_total;
            newly_out = undecided_at_start - remaining - newly_in;
            prev_in_total = in_total;
        }
        history.push(RoundStats {
            undecided: undecided_at_start,
            newly_in,
            newly_out,
        });

        if remaining == 0 {
            break;
        }

        // --- Refresh Row for the next iteration --------------------------
        {
            let tw = SharedMut::new(&mut t);
            if cfg.use_worklists {
                par::for_each(&wl1, |&v| {
                    let p = cfg.priorities.priority(cfg.seed, iter, v) & prio_mask;
                    unsafe { tw.write(v as usize, T::undecided(p, v, bits)) };
                });
            } else {
                par::for_range(0..n as VertexId, |v| {
                    // SAFETY: one write per distinct v.
                    let cur = unsafe { tw.read(v as usize) };
                    if cur.is_undecided() {
                        let p = cfg.priorities.priority(cfg.seed, iter, v) & prio_mask;
                        unsafe { tw.write(v as usize, T::undecided(p, v, bits)) };
                    }
                });
            }
        }
    }

    let is_in: Vec<bool> = par::map(&t, |x| x.is_in());
    let in_set = compact::par_filter_indices(&is_in, |&b| b);
    Mis2Result {
        in_set,
        is_in,
        iterations: iter as usize,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mis2;
    use mis2_graph::gen;

    #[test]
    fn reference_produces_valid_sets() {
        let g = gen::erdos_renyi(500, 1500, 7);
        let r = mis2(&g);
        verify_mis2(&g, &r.is_in).unwrap();
        assert!(r.iterations > 0);
        assert_eq!(r.history.len(), r.iterations);
    }

    #[test]
    fn reference_empty_graph() {
        let g = mis2_graph::CsrGraph::empty(0);
        let r = mis2(&g);
        assert_eq!(r.size(), 0);
        assert_eq!(r.iterations, 0);
    }
}
