//! The Bell/Dalton/Olson MIS-k algorithm — the CUSP / ViennaCL baseline.
//!
//! Bell, Dalton and Olson ("Exposing fine-grained parallelism in algebraic
//! multigrid methods", SISC 2012) compute a maximal distance-k independent
//! set directly, without forming `G^k`: each vertex carries a fixed random
//! tuple `T_v = (status, rand, id)`; every outer iteration propagates the
//! neighborhood minimum `k` times (so each vertex learns the radius-k
//! minimum) and then decides:
//!
//! * `M^k_v == T_v`  — `v` is the radius-k minimum: mark `IN`;
//! * `M^k_v.status == IN` — an `IN` vertex lies within distance k: mark
//!   `OUT`.
//!
//! Differences from Algorithm 1 that the paper's Section V optimizations
//! remove: priorities are chosen **once** (dependency chains can serialize
//! progress — Table I "Fixed"), **all** vertices are processed every
//! iteration (no worklists), and tuples are explicit 3-field structs.
//!
//! This implementation is the comparison target for Figure 6 (CUSP) and,
//! combined with basic coarsening, Figure 7 (ViennaCL), plus the "KK vs
//! CUSP vs ViennaCL" quality comparison of Table IV. Like everything in
//! this crate it is deterministic: "random" tuples come from xorshift\* of
//! the vertex id.

use crate::engine::{Mis2Result, RoundStats};
use crate::tuple::{Status3, TupleRepr, Unpacked};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::hash::{hash2, xorshift64_star};
use mis2_prim::par;
use mis2_prim::{compact, SharedMut};

/// Compute a maximal distance-`k` independent set with Bell's algorithm.
///
/// `seed` selects the random stream (CUSP and ViennaCL would each draw
/// their own random numbers; different seeds model that).
pub fn bell_mis_k(g: &CsrGraph, k: usize, seed: u64) -> Mis2Result {
    assert!(k >= 1, "distance must be >= 1");
    let n = g.num_vertices();
    if n == 0 {
        return Mis2Result {
            in_set: vec![],
            is_in: vec![],
            iterations: 0,
            history: vec![],
        };
    }

    // Fixed random tuples (status starts Undecided).
    let mut t: Vec<Unpacked> = par::map_range(0..n as u32, |v| Unpacked {
        status: Status3::Undecided,
        priority: hash2(xorshift64_star, seed, v as u64),
        id: v,
    });

    // Propagation buffers.
    let mut cur: Vec<Unpacked> = vec![Unpacked::OUT; n];
    let mut nxt: Vec<Unpacked> = vec![Unpacked::OUT; n];
    let mut history = Vec::new();
    let mut iterations = 0usize;

    loop {
        let undecided = par::count(&t, |x| x.is_undecided());
        if undecided == 0 {
            break;
        }

        // M^0 = T.
        par::for_each_mut_indexed(&mut cur, |i, c| *c = t[i]);
        // k propagation rounds: M^i_v = min(M^{i-1}_w : w in adj(v) ∪ {v}).
        for _ in 0..k {
            {
                let nw = SharedMut::new(&mut nxt);
                let cur_ref: &[Unpacked] = &cur;
                par::for_range(0..n as VertexId, |v| {
                    let mut mv = cur_ref[v as usize];
                    for &w in g.neighbors(v) {
                        mv = mv.min(cur_ref[w as usize]);
                    }
                    unsafe { nw.write(v as usize, mv) };
                });
            }
            std::mem::swap(&mut cur, &mut nxt);
        }

        // Decide.
        let (newly_in, newly_out) = {
            let tw = SharedMut::new(&mut t);
            let cur_ref: &[Unpacked] = &cur;
            par::map_reduce_range(
                0..n as VertexId,
                |v| {
                    // SAFETY: slot v is read/written only by this task.
                    let tv = unsafe { tw.read(v as usize) };
                    if !tv.is_undecided() {
                        return (0usize, 0usize);
                    }
                    let mv = cur_ref[v as usize];
                    if mv == tv {
                        unsafe {
                            tw.write(
                                v as usize,
                                Unpacked {
                                    status: Status3::In,
                                    ..tv
                                },
                            )
                        };
                        (1, 0)
                    } else if mv.is_in() {
                        unsafe {
                            tw.write(
                                v as usize,
                                Unpacked {
                                    status: Status3::Out,
                                    ..tv
                                },
                            )
                        };
                        (0, 1)
                    } else {
                        (0, 0)
                    }
                },
                (0, 0),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
        };

        iterations += 1;
        history.push(RoundStats {
            undecided,
            newly_in,
            newly_out,
        });
        // Progress guarantee: the globally minimal undecided tuple either
        // becomes IN (no IN vertex within distance k) or is knocked OUT by
        // one, so at least one vertex is decided per iteration.
        debug_assert!(newly_in + newly_out > 0, "Bell iteration made no progress");
    }

    let is_in: Vec<bool> = par::map(&t, |x| x.is_in());
    let in_set = compact::par_filter_indices(&is_in, |&b| b);
    Mis2Result {
        in_set,
        is_in,
        iterations,
        history,
    }
}

/// Bell's algorithm at k = 2 — the exact configuration CUSP's MIS-2 uses.
///
/// ```
/// let g = mis2_graph::gen::laplace2d(10, 10);
/// let r = mis2_core::bell_mis2(&g, 0);
/// mis2_core::verify_mis2(&g, &r.is_in).unwrap();
/// ```
pub fn bell_mis2(g: &CsrGraph, seed: u64) -> Mis2Result {
    bell_mis_k(g, 2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_mis1, verify_mis2};
    use mis2_graph::gen;

    #[test]
    fn empty() {
        let g = CsrGraph::empty(0);
        assert_eq!(bell_mis2(&g, 0).size(), 0);
    }

    #[test]
    fn edgeless() {
        let g = CsrGraph::empty(7);
        let r = bell_mis2(&g, 0);
        assert_eq!(r.size(), 7);
    }

    #[test]
    fn k1_is_valid_mis1() {
        let g = gen::erdos_renyi(300, 900, 5);
        let r = bell_mis_k(&g, 1, 0);
        verify_mis1(&g, &r.is_in).unwrap();
    }

    #[test]
    fn k2_is_valid_mis2() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(400, 1200, seed);
            let r = bell_mis2(&g, seed);
            verify_mis2(&g, &r.is_in).unwrap();
        }
    }

    #[test]
    fn k2_valid_on_structured() {
        let g = gen::laplace3d(9, 9, 9);
        let r = bell_mis2(&g, 0);
        verify_mis2(&g, &r.is_in).unwrap();
        assert!(r.size() > 20);
    }

    #[test]
    fn k3_is_distance3_independent() {
        let g = gen::laplace2d(20, 20);
        let r = bell_mis_k(&g, 3, 0);
        // Check pairwise distance > 3 via 3-hop neighborhoods.
        for &u in &r.in_set {
            let near = mis2_graph::ops::neighborhood(&g, u, 3);
            for &w in &near {
                assert!(!r.is_in[w as usize], "{u} and {w} within distance 3");
            }
        }
        // Maximality at distance 3: every vertex within 3 hops of the set.
        for v in 0..g.num_vertices() as u32 {
            let covered = r.is_in[v as usize]
                || mis2_graph::ops::neighborhood(&g, v, 3)
                    .iter()
                    .any(|&w| r.is_in[w as usize]);
            assert!(covered, "vertex {v} uncovered");
        }
    }

    #[test]
    fn deterministic() {
        let g = gen::laplace3d(8, 8, 8);
        let a = bell_mis2(&g, 42);
        let b = bell_mis2(&g, 42);
        assert_eq!(a.in_set, b.in_set);
        let c = mis2_prim::pool::with_pool(1, || bell_mis2(&g, 42));
        assert_eq!(a.in_set, c.in_set);
    }

    #[test]
    fn seeds_give_different_sets_similar_sizes() {
        let g = gen::laplace3d(10, 10, 10);
        let a = bell_mis2(&g, 1);
        let b = bell_mis2(&g, 2);
        assert_ne!(a.in_set, b.in_set);
        let ratio = a.size() as f64 / b.size() as f64;
        assert!(
            ratio > 0.8 && ratio < 1.25,
            "sizes {} vs {}",
            a.size(),
            b.size()
        );
    }

    #[test]
    fn fixed_priorities_typically_need_more_iterations() {
        // The Section V-A claim, smoke-tested: on a mid-size mesh the
        // xorshift* refresh converges at least as fast as fixed priorities.
        let g = gen::laplace3d(12, 12, 12);
        let bell = bell_mis2(&g, 0);
        let kk = crate::engine::mis2(&g);
        assert!(
            kk.iterations <= bell.iterations + 2,
            "kk {} vs bell {}",
            kk.iterations,
            bell.iterations
        );
    }
}
