//! Status-tuple representations (Section V-C of the paper).
//!
//! Algorithm 1 tracks, per vertex, a 3-tuple `(status, rand, ID)` ordered
//! lexicographically with `IN < UNDECIDED < OUT`. Two representations are
//! provided:
//!
//! * [`Packed`] — the paper's compressed representation: a single unsigned
//!   word with `IN = 0`, `OUT = MAX`, and undecided vertices packed as
//!   `(priority << b) | (id + 1)` where `b = ceil(log2(|V| + 2))` id bits.
//!   Equation 1 of the paper shows no packed undecided value can collide
//!   with either sentinel. We use a 64-bit word (the paper uses the vertex
//!   id width, typically 32; with 64 bits priority ties are essentially
//!   impossible while keeping the exact same packing scheme).
//! * [`Unpacked`] — the straightforward 3-field struct Bell's algorithm
//!   uses; kept as the ablation baseline for the "Packed Status" bar of
//!   Figure 2.
//!
//! Both implement [`TupleRepr`] so the Algorithm 1 engine is generic over
//! the representation.

/// Number of id bits `b = ceil(log2(n + 2))`, i.e. the bit length of
/// `n + 1`. Guarantees `2^b >= n + 2`, which by the paper's Equation 1
/// ensures `(priority << b) | (id + 1)` never equals `0` (IN) or the
/// all-ones word (OUT).
#[inline]
pub fn id_bits(n: usize) -> u32 {
    debug_assert!(n > 0);
    u64::BITS - ((n as u64) + 1).leading_zeros()
}

/// Abstraction over the two tuple representations. `Ord` must realize the
/// lexicographic `(status, priority, id)` order with `IN < UNDECIDED < OUT`.
pub trait TupleRepr: Copy + Send + Sync + Ord + Eq + std::fmt::Debug {
    /// The `IN` sentinel (smallest value).
    const IN: Self;
    /// The `OUT` sentinel (largest value).
    const OUT: Self;
    /// An undecided tuple for vertex `id` with the given priority.
    /// `bits` is the precomputed [`id_bits`] of the graph.
    fn undecided(priority: u64, id: u32, bits: u32) -> Self;
    /// Is this the `IN` sentinel?
    fn is_in(self) -> bool;
    /// Is this the `OUT` sentinel?
    fn is_out(self) -> bool;
    /// Is this neither sentinel?
    #[inline]
    fn is_undecided(self) -> bool {
        !self.is_in() && !self.is_out()
    }
}

/// The paper's packed single-word representation.
pub type Packed = u64;

impl TupleRepr for Packed {
    const IN: Self = 0;
    const OUT: Self = u64::MAX;

    #[inline]
    fn undecided(priority: u64, id: u32, bits: u32) -> Self {
        // Keep only the priority bits that fit above the id field; the id
        // (+1, so it is nonzero) functions as the tiebreak in the low bits.
        let prio_bits = 64 - bits;
        let masked = if prio_bits == 64 {
            priority
        } else {
            priority & ((1u64 << prio_bits) - 1)
        };
        (masked << bits) | (id as u64 + 1)
    }

    #[inline]
    fn is_in(self) -> bool {
        self == 0
    }

    #[inline]
    fn is_out(self) -> bool {
        self == u64::MAX
    }
}

/// Extract `(priority, id)` from a packed undecided tuple (test helper).
#[inline]
pub fn unpack(t: Packed, bits: u32) -> (u64, u32) {
    debug_assert!(t != Packed::IN && t != Packed::OUT);
    let id_mask = (1u64 << bits) - 1;
    ((t >> bits), ((t & id_mask) - 1) as u32)
}

/// Vertex status in the explicit 3-field representation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Status3 {
    In = 0,
    Undecided = 1,
    Out = 2,
}

/// Bell-style explicit `(status, priority, id)` tuple. Derived `Ord` is
/// lexicographic over the declaration order, exactly the paper's comparison
/// rule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Unpacked {
    pub status: Status3,
    pub priority: u64,
    pub id: u32,
}

impl TupleRepr for Unpacked {
    const IN: Self = Unpacked {
        status: Status3::In,
        priority: 0,
        id: 0,
    };
    const OUT: Self = Unpacked {
        status: Status3::Out,
        priority: u64::MAX,
        id: u32::MAX,
    };

    #[inline]
    fn undecided(priority: u64, id: u32, _bits: u32) -> Self {
        Unpacked {
            status: Status3::Undecided,
            priority,
            id,
        }
    }

    #[inline]
    fn is_in(self) -> bool {
        self.status == Status3::In
    }

    #[inline]
    fn is_out(self) -> bool {
        self.status == Status3::Out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_bits_matches_formula() {
        // b = ceil(log2(n + 2))
        for n in 1..1000usize {
            let want = ((n + 2) as f64).log2().ceil() as u32;
            assert_eq!(id_bits(n), want, "n = {n}");
        }
        assert_eq!(id_bits(1), 2);
        assert_eq!(id_bits(2), 2);
        assert_eq!(id_bits(3), 3); // log2(5) -> 3
        assert_eq!(id_bits(1_000_000), 20);
    }

    #[test]
    fn packed_never_collides_with_sentinels() {
        // Equation 1 of the paper: for any priority and id, the packed value
        // is strictly between IN and OUT.
        for n in [1usize, 2, 3, 7, 100, 1 << 20] {
            let bits = id_bits(n);
            for &prio in &[0u64, 1, u64::MAX, 0xDEAD_BEEF_DEAD_BEEF] {
                for &id in &[0u32, (n as u32 - 1) / 2, n as u32 - 1] {
                    let t = Packed::undecided(prio, id, bits);
                    assert!(t > Packed::IN, "n={n} prio={prio} id={id}");
                    assert!(t < Packed::OUT, "n={n} prio={prio} id={id}");
                }
            }
        }
    }

    #[test]
    fn packed_roundtrip() {
        let bits = id_bits(1000);
        for id in (0..1000u32).step_by(37) {
            for prio in [0u64, 5, 1 << 40] {
                let t = Packed::undecided(prio, id, bits);
                let (p, i) = unpack(t, bits);
                assert_eq!(i, id);
                assert_eq!(p, prio & ((1 << (64 - bits)) - 1));
            }
        }
    }

    #[test]
    fn packed_order_matches_tuple_order() {
        // Packed comparison must equal (priority, id) lexicographic order.
        let bits = id_bits(100);
        let prio_mask = (1u64 << (64 - bits)) - 1;
        let cases = [(0u64, 0u32), (0, 99), (1, 0), (5, 50), (5, 51), (6, 0)];
        for &(p1, i1) in &cases {
            for &(p2, i2) in &cases {
                let a = Packed::undecided(p1, i1, bits);
                let b = Packed::undecided(p2, i2, bits);
                let want = (p1 & prio_mask, i1).cmp(&(p2 & prio_mask, i2));
                assert_eq!(a.cmp(&b), want, "({p1},{i1}) vs ({p2},{i2})");
            }
        }
    }

    #[test]
    fn packed_ids_break_ties() {
        // Same priority, different id -> distinct packed values (the paper's
        // uniqueness requirement).
        let bits = id_bits(1 << 20);
        let a = Packed::undecided(42, 7, bits);
        let b = Packed::undecided(42, 8, bits);
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn unpacked_ordering() {
        assert!(Unpacked::IN < Unpacked::undecided(0, 0, 0));
        assert!(Unpacked::undecided(u64::MAX, u32::MAX, 0) < Unpacked::OUT);
        assert!(Unpacked::undecided(3, 9, 0) < Unpacked::undecided(4, 0, 0));
        assert!(Unpacked::undecided(3, 9, 0) < Unpacked::undecided(3, 10, 0));
    }

    #[test]
    fn sentinel_predicates() {
        assert!(Packed::IN.is_in() && !Packed::IN.is_out());
        assert!(Packed::OUT.is_out() && !Packed::OUT.is_in());
        assert!(Packed::undecided(1, 1, 8).is_undecided());
        assert!(Unpacked::IN.is_in());
        assert!(Unpacked::OUT.is_out());
        assert!(Unpacked::undecided(1, 1, 0).is_undecided());
    }
}
