//! Algorithm 1 — the parallel, deterministic MIS-2 engine.
//!
//! This is the paper's primary contribution: a distance-2 maximal
//! independent set computed in expected `O(log V)` rounds, with four
//! independently-togglable optimizations (so the Figure 2 ablation ladder
//! can be reproduced exactly):
//!
//! 1. fresh xorshift\* priorities each iteration ([`PriorityScheme`]);
//! 2. worklists compacted by parallel scans ([`Mis2Config::use_worklists`]);
//! 3. packed single-word status tuples ([`Mis2Config::packed`]);
//! 4. "SIMD" (neighbor-parallel) inner loops ([`SimdMode`]), gated by the
//!    paper's average-degree >= 16 heuristic in [`SimdMode::Auto`].
//!
//! ## Structure of one iteration (paper lines 9-35)
//!
//! * **Refresh Row** — every undecided vertex gets tuple
//!   `T_v = (UNDECIDED, h(iter, v), v)`.
//! * **Refresh Column** — every live column vertex computes
//!   `M_v = min(T_w : w in adj(v) ∪ {v})`; if the min is an `IN` tuple,
//!   `M_v` becomes `OUT` permanently (v is distance-1 from the set, so
//!   every neighbor of v is within distance 2).
//! * **Decide Set** — an undecided `v` becomes `OUT` if any
//!   `w in adj(v) ∪ {v}` has `M_w = OUT`, and `IN` if every such `w` has
//!   `M_w = T_v` (v is the strict minimum of its radius-2 neighborhood —
//!   no other vertex can conclude the same, which is what makes the
//!   algorithm race-free and deterministic).
//! * **Compact worklists** — `worklist1` keeps undecided vertices,
//!   `worklist2` keeps vertices with `M_v != OUT`.
//!
//! The adjacency used throughout is `adj(v) ∪ {v}`: the paper's Lemma IV.1
//! assumes self-loops (see its Figure 1, where `M_1 = T_1`). [`CsrGraph`]
//! stores no explicit self-loops, so every reduction here adds the vertex's
//! own contribution; without it two *adjacent* vertices could both enter
//! the set.
//!
//! ## Determinism
//!
//! Priorities depend only on `(scheme, seed, iter, v)`; each phase is a
//! pure map reading the previous phase's arrays and writing disjoint slots;
//! worklist compaction is order-preserving. Hence the output is
//! bitwise-identical for every thread count — the property the paper
//! advertises across CPUs and GPUs.

use crate::priority::PriorityScheme;
use crate::tuple::{id_bits, Packed, TupleRepr, Unpacked};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::{compact, par, SharedMut};

/// Neighbor-parallel ("SIMD") mode for the inner loops of Refresh Column
/// and Decide Set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Always iterate neighbors sequentially per vertex.
    Off,
    /// Enable neighbor-parallel loops iff the average degree is at least 16
    /// — the heuristic the paper uses (Section V-D).
    #[default]
    Auto,
    /// Always use neighbor-parallel loops.
    On,
}

impl SimdMode {
    fn enabled(self, g: &CsrGraph) -> bool {
        match self {
            SimdMode::Off => false,
            SimdMode::On => true,
            SimdMode::Auto => g.avg_degree() >= 16.0,
        }
    }
}

/// Configuration of Algorithm 1. [`Default`] reproduces the full
/// Kokkos Kernels configuration (all four optimizations on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mis2Config {
    /// Priority scheme (Section V-A). Default: xorshift\* per iteration.
    pub priorities: PriorityScheme,
    /// Maintain scan-compacted worklists (Section V-B). When `false`, all
    /// vertices are processed every iteration, as in Bell's algorithm.
    pub use_worklists: bool,
    /// Pack status tuples into one 64-bit word (Section V-C). When
    /// `false`, explicit 3-field tuples are used.
    pub packed: bool,
    /// Neighbor-parallel inner loops (Section V-D).
    pub simd: SimdMode,
    /// Extra seed mixed into the priority hash. 0 = the paper's exact
    /// hash stream. Different seeds give statistically independent runs
    /// (used by the quality-comparison experiments).
    pub seed: u64,
}

impl Default for Mis2Config {
    fn default() -> Self {
        Mis2Config {
            priorities: PriorityScheme::XorStar,
            use_worklists: true,
            packed: true,
            simd: SimdMode::Auto,
            seed: 0,
        }
    }
}

impl Mis2Config {
    /// The Figure 2 optimization ladder: `(label, config)` pairs where each
    /// entry adds one optimization on top of the previous. The true
    /// baseline (Bell's algorithm) is [`crate::bell::bell_mis_k`]; ladder
    /// step 0 here is Algorithm 1 with every optimization disabled and
    /// fixed priorities, which is the closest in-engine equivalent.
    pub fn ladder() -> Vec<(&'static str, Mis2Config)> {
        let base = Mis2Config {
            priorities: PriorityScheme::Fixed,
            use_worklists: false,
            packed: false,
            simd: SimdMode::Off,
            seed: 0,
        };
        vec![
            ("Baseline", base),
            (
                "+RandomPriority",
                Mis2Config {
                    priorities: PriorityScheme::XorStar,
                    ..base
                },
            ),
            (
                "+Worklists",
                Mis2Config {
                    priorities: PriorityScheme::XorStar,
                    use_worklists: true,
                    ..base
                },
            ),
            (
                "+PackedStatus",
                Mis2Config {
                    priorities: PriorityScheme::XorStar,
                    use_worklists: true,
                    packed: true,
                    ..base
                },
            ),
            ("+SIMD", Mis2Config::default()),
        ]
    }
}

/// Per-iteration statistics for analysis and the Table III experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Undecided vertices at the start of the iteration (|worklist1|).
    pub undecided: usize,
    /// Vertices decided IN this iteration.
    pub newly_in: usize,
    /// Vertices decided OUT this iteration.
    pub newly_out: usize,
}

/// Result of an MIS-2 computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mis2Result {
    /// The independent set, sorted ascending.
    pub in_set: Vec<VertexId>,
    /// Per-vertex membership mask.
    pub is_in: Vec<bool>,
    /// Number of outer iterations executed (the paper's Table I / III
    /// "Iters" metric).
    pub iterations: usize,
    /// Per-iteration progress.
    pub history: Vec<RoundStats>,
}

impl Mis2Result {
    fn empty() -> Self {
        Mis2Result {
            in_set: Vec::new(),
            is_in: Vec::new(),
            iterations: 0,
            history: Vec::new(),
        }
    }

    /// |MIS-2| — the paper's quality metric (Tables III and IV).
    pub fn size(&self) -> usize {
        self.in_set.len()
    }

    /// Approximate heap footprint in bytes (capacity of the set, mask and
    /// history arrays) for memory-bounded caches.
    pub fn heap_bytes(&self) -> usize {
        self.in_set.capacity() * std::mem::size_of::<VertexId>()
            + self.is_in.capacity() * std::mem::size_of::<bool>()
            + self.history.capacity() * std::mem::size_of::<RoundStats>()
    }
}

/// Compute an MIS-2 with the default (fully optimized) configuration.
pub fn mis2(g: &CsrGraph) -> Mis2Result {
    mis2_with_config(g, &Mis2Config::default())
}

/// Compute an MIS-2 with an explicit configuration.
pub fn mis2_with_config(g: &CsrGraph, cfg: &Mis2Config) -> Mis2Result {
    if g.num_vertices() == 0 {
        return Mis2Result::empty();
    }
    if cfg.packed {
        run::<Packed>(g, cfg)
    } else {
        run::<Unpacked>(g, cfg)
    }
}

/// Chunk size for neighbor-parallel reductions. A GPU warp is 32 lanes; we
/// use a larger chunk on CPU so parallel task overhead stays negligible.
const SIMD_CHUNK: usize = 256;
/// Minimum degree before the inner loop actually splits.
const SIMD_MIN_DEGREE: usize = 2 * SIMD_CHUNK;

fn run<T: TupleRepr>(g: &CsrGraph, cfg: &Mis2Config) -> Mis2Result {
    let n = g.num_vertices();
    let bits = id_bits(n);
    let simd = cfg.simd.enabled(g);
    // Both representations see the same truncated priorities so that the
    // packed/unpacked toggle changes memory layout only, never the result
    // (the packed word can only hold 64 - bits priority bits).
    let prio_mask: u64 = if bits == 0 {
        u64::MAX
    } else {
        ((1u128 << (64 - bits)) - 1) as u64
    };

    // T and M arrays. M's initial content is never read: every vertex is in
    // worklist2 for iteration 0 and is overwritten by Refresh Column.
    let mut t: Vec<T> = vec![T::OUT; n];
    let mut m: Vec<T> = vec![T::OUT; n];
    let mut wl1: Vec<VertexId> = (0..n as VertexId).collect();
    let mut wl2: Vec<VertexId> = (0..n as VertexId).collect();
    let mut history: Vec<RoundStats> = Vec::new();

    // Refresh Row for iteration 0 (hoisted out of the loop so later
    // iterations can skip decided vertices in the no-worklist mode).
    {
        let tw = SharedMut::new(&mut t);
        par::for_each(&wl1, |&v| {
            let p = cfg.priorities.priority(cfg.seed, 0, v) & prio_mask;
            unsafe { tw.write(v as usize, T::undecided(p, v, bits)) };
        });
    }

    let mut iter: u64 = 0;
    let mut prev_in_total = 0usize;
    loop {
        let undecided_at_start = if cfg.use_worklists {
            wl1.len()
        } else {
            par::count(&t, |x| x.is_undecided())
        };

        // --- Refresh Column: M_v = min(T_w : w in adj(v) ∪ {v}) ---------
        {
            let mw = SharedMut::new(&mut m);
            let t_ref: &[T] = &t;
            if simd {
                par::for_each(&wl2, |&v| {
                    let mut mv = t_ref[v as usize];
                    let nbrs = g.neighbors(v);
                    if nbrs.len() >= SIMD_MIN_DEGREE {
                        let chunk_min = par::chunked_reduce(
                            nbrs,
                            SIMD_CHUNK,
                            |c| c.iter().map(|&w| t_ref[w as usize]).min().unwrap_or(T::OUT),
                            T::OUT,
                            |a, b| a.min(b),
                        );
                        mv = mv.min(chunk_min);
                    } else {
                        for &w in nbrs {
                            mv = mv.min(t_ref[w as usize]);
                        }
                    }
                    if mv.is_in() {
                        mv = T::OUT;
                    }
                    unsafe { mw.write(v as usize, mv) };
                });
            } else {
                par::for_each(&wl2, |&v| {
                    let mut mv = t_ref[v as usize];
                    for &w in g.neighbors(v) {
                        mv = mv.min(t_ref[w as usize]);
                    }
                    if mv.is_in() {
                        mv = T::OUT;
                    }
                    unsafe { mw.write(v as usize, mv) };
                });
            }
        }

        // --- Decide Set --------------------------------------------------
        {
            let tw = SharedMut::new(&mut t);
            let m_ref: &[T] = &m;
            par::for_each(&wl1, |&v| {
                // SAFETY: each worklist1 vertex appears once; we only read
                // and write slot v.
                let tv = unsafe { tw.read(v as usize) };
                if !tv.is_undecided() {
                    // Only reachable in no-worklist mode, where decided
                    // vertices stay in the (full) worklist.
                    return;
                }
                let mv = m_ref[v as usize];
                // Self contribution of the implicit self-loop.
                let mut any_out = mv.is_out();
                let mut all_eq = mv == tv;
                let nbrs = g.neighbors(v);
                if !any_out {
                    if simd && nbrs.len() >= SIMD_MIN_DEGREE {
                        let (o, e) = par::chunked_reduce(
                            nbrs,
                            SIMD_CHUNK,
                            |c| {
                                let mut o = false;
                                let mut e = true;
                                for &w in c {
                                    let mw_ = m_ref[w as usize];
                                    if mw_.is_out() {
                                        o = true;
                                        break;
                                    }
                                    if mw_ != tv {
                                        e = false;
                                    }
                                }
                                (o, e)
                            },
                            (false, true),
                            |a, b| (a.0 || b.0, a.1 && b.1),
                        );
                        any_out = o;
                        all_eq = all_eq && e;
                    } else {
                        for &w in nbrs {
                            let mw_ = m_ref[w as usize];
                            if mw_.is_out() {
                                any_out = true;
                                break;
                            }
                            if mw_ != tv {
                                all_eq = false;
                            }
                        }
                    }
                }
                if any_out {
                    unsafe { tw.write(v as usize, T::OUT) };
                } else if all_eq {
                    unsafe { tw.write(v as usize, T::IN) };
                }
            });
        }

        // --- Bookkeeping + worklist compaction ---------------------------
        iter += 1;
        let (newly_in, newly_out, remaining);
        if cfg.use_worklists {
            // worklist1 held exactly the previously-undecided vertices, so
            // counting decided entries in it gives the per-iteration deltas.
            newly_in = par::count(&wl1, |&v| t[v as usize].is_in());
            newly_out = par::count(&wl1, |&v| t[v as usize].is_out());
            wl1 = compact::par_filter(&wl1, |&v| t[v as usize].is_undecided());
            wl2 = compact::par_filter(&wl2, |&v| !m[v as usize].is_out());
            remaining = wl1.len();
        } else {
            // Full sweeps see cumulative totals; derive the deltas.
            let in_total = par::count(&t, |x| x.is_in());
            remaining = par::count(&t, |x| x.is_undecided());
            newly_in = in_total - prev_in_total;
            newly_out = undecided_at_start - remaining - newly_in;
            prev_in_total = in_total;
        }
        history.push(RoundStats {
            undecided: undecided_at_start,
            newly_in,
            newly_out,
        });

        if remaining == 0 {
            break;
        }

        // --- Refresh Row for the next iteration --------------------------
        {
            let tw = SharedMut::new(&mut t);
            if cfg.use_worklists {
                par::for_each(&wl1, |&v| {
                    let p = cfg.priorities.priority(cfg.seed, iter, v) & prio_mask;
                    unsafe { tw.write(v as usize, T::undecided(p, v, bits)) };
                });
            } else {
                par::for_range(0..n as VertexId, |v| {
                    // SAFETY: one write per distinct v.
                    let cur = unsafe { tw.read(v as usize) };
                    if cur.is_undecided() {
                        let p = cfg.priorities.priority(cfg.seed, iter, v) & prio_mask;
                        unsafe { tw.write(v as usize, T::undecided(p, v, bits)) };
                    }
                });
            }
        }
    }

    let is_in: Vec<bool> = par::map(&t, |x| x.is_in());
    let in_set = compact::par_filter_indices(&is_in, |&b| b);
    Mis2Result {
        in_set,
        is_in,
        iterations: iter as usize,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mis2;
    use mis2_graph::gen;

    fn all_configs() -> Vec<Mis2Config> {
        let mut out = Vec::new();
        for priorities in [
            PriorityScheme::Fixed,
            PriorityScheme::XorHash,
            PriorityScheme::XorStar,
        ] {
            for use_worklists in [false, true] {
                for packed in [false, true] {
                    for simd in [SimdMode::Off, SimdMode::On] {
                        out.push(Mis2Config {
                            priorities,
                            use_worklists,
                            packed,
                            simd,
                            seed: 0,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn empty_graph() {
        let g = mis2_graph::CsrGraph::empty(0);
        let r = mis2(&g);
        assert_eq!(r.size(), 0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn edgeless_graph_all_in() {
        let g = mis2_graph::CsrGraph::empty(10);
        let r = mis2(&g);
        assert_eq!(r.size(), 10);
        assert_eq!(r.iterations, 1);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn single_vertex() {
        let g = mis2_graph::CsrGraph::empty(1);
        let r = mis2(&g);
        assert_eq!(r.in_set, vec![0]);
    }

    #[test]
    fn complete_graph_one_in() {
        let g = gen::complete(10);
        let r = mis2(&g);
        assert_eq!(r.size(), 1);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn star_graph() {
        // Star: any single vertex dominates everything within distance 2.
        let g = gen::star(50);
        let r = mis2(&g);
        assert_eq!(r.size(), 1);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn path_graph_valid() {
        let g = gen::path(100);
        let r = mis2(&g);
        verify_mis2(&g, &r.is_in).unwrap();
        // A path of 100 vertices needs at least ceil(100/5)=20 and at most
        // ceil(100/3)=34 MIS-2 vertices.
        assert!(r.size() >= 20 && r.size() <= 34, "size {}", r.size());
    }

    #[test]
    fn paper_example_graph() {
        // The 6-vertex graph of the paper's Figure 1:
        // 1-2, 2-3, 3-4, 4-5, 4-6 (1-based) — a path with a fork at 4.
        let g = mis2_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)]);
        let r = mis2(&g);
        verify_mis2(&g, &r.is_in).unwrap();
        // The MIS-2 of this graph has exactly 2 vertices (e.g. {1,4} in the
        // paper's run, 0-based {0,3}).
        assert_eq!(r.size(), 2);
    }

    #[test]
    fn all_configs_valid_on_random_graph() {
        let g = gen::erdos_renyi(500, 1500, 7);
        for cfg in all_configs() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("invalid MIS-2 for {cfg:?}: {e}"));
            assert!(r.iterations > 0);
            assert_eq!(r.history.len(), r.iterations);
        }
    }

    #[test]
    fn all_configs_valid_on_grid() {
        let g = gen::laplace3d(8, 8, 8);
        for cfg in all_configs() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("invalid MIS-2 for {cfg:?}: {e}"));
        }
    }

    #[test]
    fn packed_and_unpacked_agree() {
        // Same priorities => same set, regardless of representation.
        let g = gen::erdos_renyi(400, 1200, 3);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                packed: true,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                packed: false,
                ..Default::default()
            },
        );
        // Note: packed truncates priorities to (64 - b) bits, which can in
        // principle change comparisons, but only when two 44+-bit truncated
        // priorities collide — not with these sizes.
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn worklists_do_not_change_result() {
        let g = gen::laplace2d(40, 40);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                use_worklists: true,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                use_worklists: false,
                ..Default::default()
            },
        );
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn simd_does_not_change_result() {
        let g = gen::elasticity3d(6, 6, 6, 3);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                simd: SimdMode::On,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                simd: SimdMode::Off,
                ..Default::default()
            },
        );
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = gen::erdos_renyi(2000, 8000, 11);
        let baseline = mis2_prim::pool::with_pool(1, || mis2(&g));
        for threads in [2, 4] {
            let r = mis2_prim::pool::with_pool(threads, || mis2(&g));
            assert_eq!(r.in_set, baseline.in_set, "differs at {threads} threads");
            assert_eq!(r.iterations, baseline.iterations);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gen::laplace3d(12, 12, 12);
        let a = mis2(&g);
        let b = mis2(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let g = gen::laplace3d(10, 10, 10);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                seed: 1,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                seed: 2,
                ..Default::default()
            },
        );
        verify_mis2(&g, &a.is_in).unwrap();
        verify_mis2(&g, &b.is_in).unwrap();
        assert_ne!(a.in_set, b.in_set);
    }

    #[test]
    fn history_is_consistent() {
        let g = gen::laplace2d(30, 30);
        let r = mis2(&g);
        let total_in: usize = r.history.iter().map(|h| h.newly_in).sum();
        let total_out: usize = r.history.iter().map(|h| h.newly_out).sum();
        assert_eq!(total_in, r.size());
        assert_eq!(total_in + total_out, g.num_vertices());
        // Undecided counts strictly decrease... at least weakly, and reach 0.
        for w in r.history.windows(2) {
            assert!(w[1].undecided <= w[0].undecided);
        }
        assert_eq!(
            r.history.last().unwrap().undecided,
            r.history.last().unwrap().newly_in + r.history.last().unwrap().newly_out
        );
    }

    #[test]
    fn ladder_configs_all_valid() {
        let g = gen::laplace3d(8, 8, 8);
        let mut sizes = Vec::new();
        for (label, cfg) in Mis2Config::ladder() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("{label}: {e}"));
            sizes.push((label, r.size()));
        }
        // All ladder steps produce similar-quality sets (within 2x).
        let min = sizes.iter().map(|s| s.1).min().unwrap();
        let max = sizes.iter().map(|s| s.1).max().unwrap();
        assert!(max <= 2 * min, "quality spread too wide: {sizes:?}");
    }

    #[test]
    fn two_vertex_edge() {
        // Regression test for the implicit self-loop: without it, both
        // endpoints of a single edge would mark themselves IN.
        let g = mis2_graph::CsrGraph::from_edges(2, &[(0, 1)]);
        let r = mis2(&g);
        assert_eq!(r.size(), 1, "adjacent vertices both IN — self-loop bug");
        verify_mis2(&g, &r.is_in).unwrap();
    }
}
