//! Algorithm 1 — the parallel, deterministic MIS-2 engine, on an adaptive
//! execution layer.
//!
//! This is the paper's primary contribution: a distance-2 maximal
//! independent set computed in expected `O(log V)` rounds, with four
//! independently-togglable optimizations (so the Figure 2 ablation ladder
//! can be reproduced exactly):
//!
//! 1. fresh xorshift\* priorities each iteration ([`PriorityScheme`]);
//! 2. worklists compacted by parallel scans ([`Mis2Config::use_worklists`]);
//! 3. packed single-word status tuples ([`Mis2Config::packed`]);
//! 4. "SIMD" (neighbor-parallel) inner loops ([`SimdMode`]).
//!
//! ## Structure of one iteration (paper lines 9-35)
//!
//! * **Refresh Row** — every undecided vertex gets tuple
//!   `T_v = (UNDECIDED, h(iter, v), v)`.
//! * **Refresh Column** — every live column vertex computes
//!   `M_v = min(T_w : w in adj(v) ∪ {v})`; if the min is an `IN` tuple,
//!   `M_v` becomes `OUT` permanently (v is distance-1 from the set, so
//!   every neighbor of v is within distance 2).
//! * **Decide Set** — an undecided `v` becomes `OUT` if any
//!   `w in adj(v) ∪ {v}` has `M_w = OUT`, and `IN` if every such `w` has
//!   `M_w = T_v` (v is the strict minimum of its radius-2 neighborhood —
//!   no other vertex can conclude the same, which is what makes the
//!   algorithm race-free and deterministic).
//! * **Compact worklists** — `worklist1` keeps undecided vertices,
//!   `worklist2` keeps vertices with `M_v != OUT`.
//!
//! The adjacency used throughout is `adj(v) ∪ {v}`: the paper's Lemma IV.1
//! assumes self-loops (see its Figure 1, where `M_1 = T_1`). [`CsrGraph`]
//! stores no explicit self-loops, so every reduction here adds the vertex's
//! own contribution; without it two *adjacent* vertices could both enter
//! the set.
//!
//! ## Execution strategy
//!
//! Degrees never change, so both worklists are split **once** into three
//! static degree classes (an order-preserving [`mis2_prim::bucket::partition_by`]
//! split; compaction then filters each class list independently, which is
//! sound because worklists are *sets* — no phase observes their order).
//! Each class runs the strategy that fits its row size, replacing the seed
//! engine's graph-global `avg_degree >= 16` gate and per-vertex
//! `SIMD_MIN_DEGREE` branch; on power-law graphs this stops whole scheduler
//! blocks from serializing behind one hub row:
//!
//! | class  | degree range          | dispatch                | inner loop                    |
//! |--------|-----------------------|-------------------------|-------------------------------|
//! | small  | `< 128`               | blocks of 4096 vertices | serial                        |
//! | medium | `128 .. 2^17`         | blocks of 32 vertices   | serial                        |
//! | huge   | `>= 2^17`             | serial over vertices    | team-wide `chunked_reduce`    |
//!
//! The class split itself only happens when `max_degree >= 128`; meshes and
//! other low-variance graphs keep a single flat class and pay nothing. A
//! class whose list fits a single dispatch block runs inline — one block
//! would execute as one task anyway, so the region wake-up is pure waste.
//! [`SimdMode`] still gates neighbor parallelism: `Off` forces serial inner
//! loops everywhere (huge rows are then dispatched one-per-task instead of
//! team-wide), while `On`/`Auto` use the adaptive table above. All
//! strategies are bitwise-identical: per-vertex phases are pure maps with
//! disjoint writes, and the tuple `min` / decide reductions are invariant
//! under any chunk decomposition.
//!
//! ## Fused per-round epilogue
//!
//! The seed engine issued separate sweeps for Decide, the two
//! `newly_in`/`newly_out` counts, worklist compaction and the next round's
//! Refresh Row. Here each class does one **decide pass** (decide + classify
//! into keep/in/out flags + per-block counts + inline Refresh Row for
//! survivors) and one **scatter pass** (exclusive scan of the keep counts →
//! compacted worklist), and Refresh Column likewise classifies
//! `worklist2` survivors in its own pass. Fusion invariants: Decide reads
//! only `M` (all column passes complete first) and slot `T[v]` itself, so
//! writing the survivor's fresh tuple for round `i+1` inside the decide
//! pass races with nothing; the final round has no survivors, so nothing
//! is refreshed — exactly the seed ordering. In no-worklist mode the same
//! per-block reductions yield `newly_in`/`newly_out` directly and the
//! undecided count is carried between rounds, eliminating the seed's two
//! extra full-array `par::count` sweeps per round.
//!
//! ## Sparse-tail fast path
//!
//! The undecided frontier shrinks geometrically (Blelloch, Fineman & Shun),
//! so late rounds are dominated by parallel-region dispatch, not work. Once
//! `|worklist1| + |worklist2| <= 2048` (or `|V| <= 2048` in no-worklist
//! mode, where sweeps never shrink), the whole round runs serially inline —
//! no region wake-ups at all. The cutoff depends only on list lengths,
//! which are pool-independent, so the tail path cannot break determinism.
//!
//! ## Determinism
//!
//! Priorities depend only on `(scheme, seed, iter, v)`; each phase is a
//! pure map reading the previous phase's arrays and writing disjoint slots;
//! worklist compaction is order-preserving per class. Hence the output is
//! bitwise-identical for every thread count — the property the paper
//! advertises across CPUs and GPUs. The frozen seed engine is kept in
//! [`crate::reference`] and `tests/engine_equiv.rs` asserts equality across
//! the full config matrix.

use crate::priority::PriorityScheme;
use crate::tuple::{id_bits, Packed, TupleRepr, Unpacked};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::{bucket, compact, exclusive_scan, par, SharedMut};

/// Neighbor-parallel ("SIMD") mode for the inner loops of Refresh Column
/// and Decide Set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Always iterate neighbors sequentially per vertex.
    Off,
    /// Adaptive: team-wide neighbor-parallel reductions for huge-degree
    /// rows, serial inner loops elsewhere. (The seed engine's global
    /// `avg_degree >= 16` heuristic from Section V-D is subsumed by the
    /// per-class dispatch; results are identical either way.)
    #[default]
    Auto,
    /// Neighbor-parallel loops wherever profitable (same adaptive table as
    /// `Auto`; kept distinct so the Figure 2 ladder's `+SIMD` step remains
    /// an explicit toggle).
    On,
}

/// Configuration of Algorithm 1. [`Default`] reproduces the full
/// Kokkos Kernels configuration (all four optimizations on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mis2Config {
    /// Priority scheme (Section V-A). Default: xorshift\* per iteration.
    pub priorities: PriorityScheme,
    /// Maintain scan-compacted worklists (Section V-B). When `false`, all
    /// vertices are processed every iteration, as in Bell's algorithm.
    pub use_worklists: bool,
    /// Pack status tuples into one 64-bit word (Section V-C). When
    /// `false`, explicit 3-field tuples are used.
    pub packed: bool,
    /// Neighbor-parallel inner loops (Section V-D).
    pub simd: SimdMode,
    /// Extra seed mixed into the priority hash. 0 = the paper's exact
    /// hash stream. Different seeds give statistically independent runs
    /// (used by the quality-comparison experiments).
    pub seed: u64,
}

impl Default for Mis2Config {
    fn default() -> Self {
        Mis2Config {
            priorities: PriorityScheme::XorStar,
            use_worklists: true,
            packed: true,
            simd: SimdMode::Auto,
            seed: 0,
        }
    }
}

impl Mis2Config {
    /// The Figure 2 optimization ladder: `(label, config)` pairs where each
    /// entry adds one optimization on top of the previous. The true
    /// baseline (Bell's algorithm) is [`crate::bell::bell_mis_k`]; ladder
    /// step 0 here is Algorithm 1 with every optimization disabled and
    /// fixed priorities, which is the closest in-engine equivalent.
    pub fn ladder() -> Vec<(&'static str, Mis2Config)> {
        let base = Mis2Config {
            priorities: PriorityScheme::Fixed,
            use_worklists: false,
            packed: false,
            simd: SimdMode::Off,
            seed: 0,
        };
        vec![
            ("Baseline", base),
            (
                "+RandomPriority",
                Mis2Config {
                    priorities: PriorityScheme::XorStar,
                    ..base
                },
            ),
            (
                "+Worklists",
                Mis2Config {
                    priorities: PriorityScheme::XorStar,
                    use_worklists: true,
                    ..base
                },
            ),
            (
                "+PackedStatus",
                Mis2Config {
                    priorities: PriorityScheme::XorStar,
                    use_worklists: true,
                    packed: true,
                    ..base
                },
            ),
            ("+SIMD", Mis2Config::default()),
        ]
    }
}

/// Per-iteration statistics for analysis and the Table III experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Undecided vertices at the start of the iteration (|worklist1|).
    pub undecided: usize,
    /// Vertices decided IN this iteration.
    pub newly_in: usize,
    /// Vertices decided OUT this iteration.
    pub newly_out: usize,
}

/// Result of an MIS-2 computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mis2Result {
    /// The independent set, sorted ascending.
    pub in_set: Vec<VertexId>,
    /// Per-vertex membership mask.
    pub is_in: Vec<bool>,
    /// Number of outer iterations executed (the paper's Table I / III
    /// "Iters" metric).
    pub iterations: usize,
    /// Per-iteration progress.
    pub history: Vec<RoundStats>,
}

impl Mis2Result {
    fn empty() -> Self {
        Mis2Result {
            in_set: Vec::new(),
            is_in: Vec::new(),
            iterations: 0,
            history: Vec::new(),
        }
    }

    /// |MIS-2| — the paper's quality metric (Tables III and IV).
    pub fn size(&self) -> usize {
        self.in_set.len()
    }

    /// Approximate heap footprint in bytes (capacity of the set, mask and
    /// history arrays) for memory-bounded caches.
    pub fn heap_bytes(&self) -> usize {
        self.in_set.capacity() * std::mem::size_of::<VertexId>()
            + self.is_in.capacity() * std::mem::size_of::<bool>()
            + self.history.capacity() * std::mem::size_of::<RoundStats>()
    }
}

/// Compute an MIS-2 with the default (fully optimized) configuration.
pub fn mis2(g: &CsrGraph) -> Mis2Result {
    mis2_with_config(g, &Mis2Config::default())
}

/// Compute an MIS-2 with an explicit configuration.
pub fn mis2_with_config(g: &CsrGraph, cfg: &Mis2Config) -> Mis2Result {
    if g.num_vertices() == 0 {
        return Mis2Result::empty();
    }
    if cfg.packed {
        run::<Packed>(g, cfg)
    } else {
        run::<Unpacked>(g, cfg)
    }
}

/// Chunk size for team-wide neighbor reductions on huge rows. A GPU warp is
/// 32 lanes; we use a larger chunk on CPU so per-chunk task overhead stays
/// negligible.
const SIMD_CHUNK: usize = 256;
/// Rows below this degree are "small": cheap enough that a serial inner
/// loop inside a coarse vertex block is optimal.
const MED_DEGREE: usize = 128;
/// Rows at or above this degree are "huge": one row is a whole team's worth
/// of work, so the row itself becomes the parallel loop (when [`SimdMode`]
/// allows) instead of serializing a scheduler block behind it. The cutoff
/// is sized to the cost of waking a parallel region (~10µs on the worker
/// pool): a 2^17-edge row is ~50-100µs of serial gather work, so splitting
/// it team-wide wins from 2 workers up, while anything smaller is cheaper
/// to keep inside the medium class's fine-grained blocks.
const HUGE_DEGREE: usize = 1 << 17;
/// Vertices per dispatch block for the small class.
const SMALL_GRAIN: usize = 4096;
/// Vertices per dispatch block for the medium class (each vertex is
/// 128..4096 edge-ops, so small blocks load-balance without tiny tasks).
const MED_GRAIN: usize = 32;
/// Total frontier (`|worklist1| + |worklist2|`, or `|V|` without worklists)
/// below which a round runs serially inline — parallel-region dispatch
/// dominates tail-round latency otherwise.
const TAIL_CUTOFF: usize = 2048;

/// Raw-pointer wrapper for disjoint scatter writes into a fresh
/// (uninitialized-capacity) worklist buffer.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// A worklist split into the three static degree classes. Worklists are
/// sets — no phase observes their order — so compacting each class
/// independently is observationally identical to compacting one flat list.
struct Classes {
    small: Vec<VertexId>,
    med: Vec<VertexId>,
    huge: Vec<VertexId>,
}

impl Classes {
    fn split(g: &CsrGraph, list: Vec<VertexId>, bucketed: bool) -> Classes {
        if !bucketed {
            return Classes {
                small: list,
                med: Vec::new(),
                huge: Vec::new(),
            };
        }
        let mut parts = bucket::partition_by(&list, 3, |&v| {
            let d = g.degree(v);
            if d >= HUGE_DEGREE {
                2
            } else if d >= MED_DEGREE {
                1
            } else {
                0
            }
        });
        let huge = parts.pop().unwrap();
        let med = parts.pop().unwrap();
        let small = parts.pop().unwrap();
        Classes { small, med, huge }
    }

    fn len(&self) -> usize {
        self.small.len() + self.med.len() + self.huge.len()
    }
}

/// Per-run execution context: everything the per-vertex kernels need.
struct Exec<'a> {
    g: &'a CsrGraph,
    priorities: PriorityScheme,
    seed: u64,
    bits: u32,
    prio_mask: u64,
    /// Team-wide neighbor reductions allowed for huge rows
    /// ([`SimdMode::On`] / [`SimdMode::Auto`]).
    team_huge: bool,
}

impl Exec<'_> {
    #[inline]
    fn fresh<T: TupleRepr>(&self, iter: u64, v: VertexId) -> T {
        let p = self.priorities.priority(self.seed, iter, v) & self.prio_mask;
        T::undecided(p, v, self.bits)
    }

    /// Refresh Column for one vertex: `min(T_w : w in adj(v) ∪ {v})`,
    /// collapsed to `OUT` if the min is `IN`. The team-wide chunked
    /// reduction groups the same `min` differently but `min` over a total
    /// order is decomposition-invariant, so both paths are bitwise-equal.
    #[inline]
    fn column_value<T: TupleRepr>(&self, t: &[T], v: VertexId, team: bool) -> T {
        let mut mv = t[v as usize];
        let nbrs = self.g.neighbors(v);
        if team {
            let chunk_min = par::chunked_reduce(
                nbrs,
                SIMD_CHUNK,
                |c| c.iter().map(|&w| t[w as usize]).min().unwrap_or(T::OUT),
                T::OUT,
                |a, b| a.min(b),
            );
            mv = mv.min(chunk_min);
        } else {
            for &w in nbrs {
                mv = mv.min(t[w as usize]);
            }
        }
        if mv.is_in() {
            T::OUT
        } else {
            mv
        }
    }

    /// Decide Set for one undecided vertex: the new `T_v` (`OUT`, `IN`, or
    /// `tv` unchanged). The serial loop's early break on an `OUT` neighbor
    /// can leave `all_eq` stale, but `any_out` dominates the decision, so
    /// the chunked `(any_out || , all_eq &&)` combine reaches the same
    /// verdict on every decomposition.
    #[inline]
    fn decide_value<T: TupleRepr>(&self, tv: T, m: &[T], v: VertexId, team: bool) -> T {
        let mv = m[v as usize];
        // Self contribution of the implicit self-loop.
        let mut any_out = mv.is_out();
        let mut all_eq = mv == tv;
        if !any_out {
            let nbrs = self.g.neighbors(v);
            if team {
                let (o, e) = par::chunked_reduce(
                    nbrs,
                    SIMD_CHUNK,
                    |c| {
                        let mut o = false;
                        let mut e = true;
                        for &w in c {
                            let mw = m[w as usize];
                            if mw.is_out() {
                                o = true;
                                break;
                            }
                            if mw != tv {
                                e = false;
                            }
                        }
                        (o, e)
                    },
                    (false, true),
                    |a, b| (a.0 || b.0, a.1 && b.1),
                );
                any_out = o;
                all_eq = all_eq && e;
            } else {
                for &w in nbrs {
                    let mw = m[w as usize];
                    if mw.is_out() {
                        any_out = true;
                        break;
                    }
                    if mw != tv {
                        all_eq = false;
                    }
                }
            }
        }
        if any_out {
            T::OUT
        } else if all_eq {
            T::IN
        } else {
            tv
        }
    }

    // --- Refresh Column over one class list --------------------------------

    /// Serial outer loop (tail rounds, and the huge class when `team` rows
    /// parallelize the inner reduction instead). Worklist mode: returns the
    /// compacted survivor list (`M_v != OUT`).
    fn column_compact_serial<T: TupleRepr>(
        &self,
        list: &[VertexId],
        t: &[T],
        m: &mut [T],
        team: bool,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(list.len());
        for &v in list {
            let mv = self.column_value(t, v, team);
            m[v as usize] = mv;
            if !mv.is_out() {
                out.push(v);
            }
        }
        out
    }

    /// Parallel fused column pass: writes `M_v`, keep flags and per-block
    /// keep counts in one sweep, then scatters the survivors. A list that
    /// fits one grain block would run as a single task anyway, so it runs
    /// inline instead (identical output, no region wake-up).
    fn column_compact_par<T: TupleRepr>(
        &self,
        list: &[VertexId],
        t: &[T],
        m: &mut [T],
        grain: usize,
        flags: &mut Vec<u8>,
    ) -> Vec<VertexId> {
        let n = list.len();
        if n <= grain {
            return self.column_compact_serial(list, t, m, false);
        }
        flags.clear();
        flags.resize(n, 0);
        let mut counts = vec![0usize; n.div_ceil(grain)];
        {
            let mw = SharedMut::new(m);
            let fw = SharedMut::new(flags.as_mut_slice());
            let cw = SharedMut::new(counts.as_mut_slice());
            par::for_chunks(list, grain, |b, chunk| {
                let base = b * grain;
                let mut kept = 0usize;
                for (i, &v) in chunk.iter().enumerate() {
                    let mv = self.column_value(t, v, false);
                    // SAFETY: every vertex appears once across the class
                    // lists, so slot v (and flag base+i) has one writer.
                    unsafe { mw.write(v as usize, mv) };
                    let keep = !mv.is_out();
                    unsafe { fw.write(base + i, keep as u8) };
                    kept += keep as usize;
                }
                // SAFETY: one write per block index.
                unsafe { cw.write(b, kept) };
            });
        }
        let (offsets, total) = exclusive_scan(&counts);
        scatter_kept(list, flags, &offsets, total, grain)
    }

    /// No-worklist column pass: write `M_v` only, grain-batched.
    fn column_nw_par<T: TupleRepr>(&self, list: &[VertexId], t: &[T], m: &mut [T], grain: usize) {
        if list.len() <= grain {
            return self.column_nw_serial(list, t, m, false);
        }
        let mw = SharedMut::new(m);
        par::for_each_grain(list, grain, |&v| {
            // SAFETY: one writer per slot v.
            unsafe { mw.write(v as usize, self.column_value(t, v, false)) };
        });
    }

    /// No-worklist serial column pass (tail rounds / team-huge rows).
    fn column_nw_serial<T: TupleRepr>(&self, list: &[VertexId], t: &[T], m: &mut [T], team: bool) {
        for &v in list {
            m[v as usize] = self.column_value(t, v, team);
        }
    }

    // --- Decide Set + fused epilogue over one class list -------------------

    /// Serial decide + compact + inline Refresh Row (tail rounds, and the
    /// huge class under team-wide rows). Returns `(survivors, newly_in,
    /// newly_out)`.
    fn decide_compact_refresh_serial<T: TupleRepr>(
        &self,
        list: &[VertexId],
        t: &mut [T],
        m: &[T],
        team: bool,
        next_iter: u64,
    ) -> (Vec<VertexId>, usize, usize) {
        let mut out = Vec::with_capacity(list.len());
        let (mut nin, mut nout) = (0usize, 0usize);
        for &v in list {
            let tv = t[v as usize];
            debug_assert!(tv.is_undecided(), "worklist1 must hold undecided only");
            let nt = self.decide_value(tv, m, v, team);
            if nt.is_in() {
                nin += 1;
                t[v as usize] = nt;
            } else if nt.is_out() {
                nout += 1;
                t[v as usize] = nt;
            } else {
                t[v as usize] = self.fresh(next_iter, v);
                out.push(v);
            }
        }
        (out, nin, nout)
    }

    /// Parallel fused decide pass: decide, classify into keep/in/out flags,
    /// count per block, and write the survivor's fresh round-`next_iter`
    /// tuple — one sweep — then scatter the compacted worklist.
    fn decide_compact_refresh_par<T: TupleRepr>(
        &self,
        list: &[VertexId],
        t: &mut [T],
        m: &[T],
        grain: usize,
        next_iter: u64,
        flags: &mut Vec<u8>,
    ) -> (Vec<VertexId>, usize, usize) {
        let n = list.len();
        if n <= grain {
            return self.decide_compact_refresh_serial(list, t, m, false, next_iter);
        }
        flags.clear();
        flags.resize(n, 0);
        let mut counts = vec![[0usize; 3]; n.div_ceil(grain)];
        {
            let tw = SharedMut::new(t);
            let fw = SharedMut::new(flags.as_mut_slice());
            let cw = SharedMut::new(counts.as_mut_slice());
            par::for_chunks(list, grain, |b, chunk| {
                let base = b * grain;
                let mut c = [0usize; 3];
                for (i, &v) in chunk.iter().enumerate() {
                    // SAFETY: each worklist1 vertex appears once; only slot
                    // v is read and written (Decide reads M, never other
                    // T slots, so the inline refresh races with nothing).
                    let tv = unsafe { tw.read(v as usize) };
                    debug_assert!(tv.is_undecided(), "worklist1 must hold undecided only");
                    let nt = self.decide_value(tv, m, v, false);
                    let f: u8 = if nt.is_in() {
                        1
                    } else if nt.is_out() {
                        2
                    } else {
                        0
                    };
                    if f == 0 {
                        unsafe { tw.write(v as usize, self.fresh::<T>(next_iter, v)) };
                    } else {
                        unsafe { tw.write(v as usize, nt) };
                    }
                    unsafe { fw.write(base + i, (f == 0) as u8) };
                    c[f as usize] += 1;
                }
                // SAFETY: one write per block index.
                unsafe { cw.write(b, c) };
            });
        }
        let keep_counts: Vec<usize> = counts.iter().map(|c| c[0]).collect();
        let (offsets, total) = exclusive_scan(&keep_counts);
        let nin = counts.iter().map(|c| c[1]).sum();
        let nout = counts.iter().map(|c| c[2]).sum();
        (scatter_kept(list, flags, &offsets, total, grain), nin, nout)
    }

    /// No-worklist decide pass, serial: skip decided vertices, count the
    /// transitions, refresh the still-undecided inline.
    fn decide_nw_serial<T: TupleRepr>(
        &self,
        list: &[VertexId],
        t: &mut [T],
        m: &[T],
        team: bool,
        next_iter: u64,
    ) -> (usize, usize) {
        let (mut nin, mut nout) = (0usize, 0usize);
        for &v in list {
            let tv = t[v as usize];
            if !tv.is_undecided() {
                continue;
            }
            let nt = self.decide_value(tv, m, v, team);
            if nt.is_in() {
                nin += 1;
                t[v as usize] = nt;
            } else if nt.is_out() {
                nout += 1;
                t[v as usize] = nt;
            } else {
                t[v as usize] = self.fresh(next_iter, v);
            }
        }
        (nin, nout)
    }

    /// No-worklist decide pass, parallel: per-block transition counts (the
    /// fused replacement for the seed engine's two full-array `par::count`
    /// sweeps) plus the inline refresh.
    fn decide_nw_par<T: TupleRepr>(
        &self,
        list: &[VertexId],
        t: &mut [T],
        m: &[T],
        grain: usize,
        next_iter: u64,
    ) -> (usize, usize) {
        let n = list.len();
        if n <= grain {
            return self.decide_nw_serial(list, t, m, false, next_iter);
        }
        let mut counts = vec![[0usize; 2]; n.div_ceil(grain)];
        {
            let tw = SharedMut::new(t);
            let cw = SharedMut::new(counts.as_mut_slice());
            par::for_chunks(list, grain, |b, chunk| {
                let mut c = [0usize; 2];
                for &v in chunk {
                    // SAFETY: one reader/writer per slot v.
                    let tv = unsafe { tw.read(v as usize) };
                    if !tv.is_undecided() {
                        continue;
                    }
                    let nt = self.decide_value(tv, m, v, false);
                    if nt.is_in() {
                        c[0] += 1;
                        unsafe { tw.write(v as usize, nt) };
                    } else if nt.is_out() {
                        c[1] += 1;
                        unsafe { tw.write(v as usize, nt) };
                    } else {
                        unsafe { tw.write(v as usize, self.fresh::<T>(next_iter, v)) };
                    }
                }
                // SAFETY: one write per block index.
                unsafe { cw.write(b, c) };
            });
        }
        let nin = counts.iter().map(|c| c[0]).sum();
        let nout = counts.iter().map(|c| c[1]).sum();
        (nin, nout)
    }
}

/// Scatter the flagged survivors of `list` into a fresh compacted list
/// using the scanned per-block offsets. Output order equals input order
/// for any grain.
fn scatter_kept(
    list: &[VertexId],
    flags: &[u8],
    offsets: &[usize],
    total: usize,
    grain: usize,
) -> Vec<VertexId> {
    let mut out: Vec<VertexId> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    par::for_chunks(flags, grain, |b, fchunk| {
        let base = b * grain;
        let mut w = offsets[b];
        for (i, &k) in fchunk.iter().enumerate() {
            if k != 0 {
                // SAFETY: block b writes the disjoint range
                // [offsets[b], offsets[b] + counts[b]) inside capacity.
                unsafe { ptr.get().add(w).write(list[base + i]) };
                w += 1;
            }
        }
    });
    // SAFETY: exactly `total` slots were initialized above.
    unsafe { out.set_len(total) };
    out
}

fn run<T: TupleRepr>(g: &CsrGraph, cfg: &Mis2Config) -> Mis2Result {
    let n = g.num_vertices();
    let bits = id_bits(n);
    // Both representations see the same truncated priorities so that the
    // packed/unpacked toggle changes memory layout only, never the result
    // (the packed word can only hold 64 - bits priority bits).
    let prio_mask: u64 = if bits == 0 {
        u64::MAX
    } else {
        ((1u128 << (64 - bits)) - 1) as u64
    };
    let exec = Exec {
        g,
        priorities: cfg.priorities,
        seed: cfg.seed,
        bits,
        prio_mask,
        team_huge: cfg.simd != SimdMode::Off,
    };

    // T and M arrays. M's initial content is never read: every vertex is in
    // worklist2 for iteration 0 and is overwritten by Refresh Column.
    let mut t: Vec<T> = vec![T::OUT; n];
    let mut m: Vec<T> = vec![T::OUT; n];
    let mut history: Vec<RoundStats> = Vec::new();

    // Refresh Row for iteration 0 (hoisted out of the loop so later
    // iterations only touch undecided vertices).
    {
        let tw = SharedMut::new(&mut t);
        par::for_range(0..n as VertexId, |v| {
            // SAFETY: one write per distinct v.
            unsafe { tw.write(v as usize, exec.fresh::<T>(0, v)) };
        });
    }

    // Static degree-class split (degrees never change). Low-variance
    // graphs (max degree < MED_DEGREE) keep one flat class and skip the
    // partition entirely.
    let bucketed = g.max_degree() >= MED_DEGREE;
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    // Both worklists start as the full vertex set: split once, clone.
    let mut wl1 = Classes::split(g, all, bucketed);
    let mut wl2 = Classes {
        small: wl1.small.clone(),
        med: wl1.med.clone(),
        huge: wl1.huge.clone(),
    };

    // Reusable keep/in/out flag buffer for the fused passes.
    let mut flags: Vec<u8> = Vec::new();
    let mut iter: u64 = 0;
    // Undecided count carried across rounds in no-worklist mode (the fused
    // decide pass reports the transitions, so no full-array count is ever
    // needed).
    let mut undecided_nw = n;
    loop {
        let undecided_at_start = if cfg.use_worklists {
            wl1.len()
        } else {
            undecided_nw
        };
        // Sparse-tail fast path: below the cutoff a whole round runs
        // serially inline. The condition is pool-independent, so the
        // switchover round is identical at every thread count.
        let tail = if cfg.use_worklists {
            wl1.len() + wl2.len() <= TAIL_CUTOFF
        } else {
            n <= TAIL_CUTOFF
        };
        let next_iter = iter + 1;

        // --- Refresh Column (+ worklist2 compaction) ---------------------
        if cfg.use_worklists {
            if tail {
                wl2.small = exec.column_compact_serial(&wl2.small, &t, &mut m, false);
                wl2.med = exec.column_compact_serial(&wl2.med, &t, &mut m, false);
                wl2.huge = exec.column_compact_serial(&wl2.huge, &t, &mut m, false);
            } else {
                wl2.small =
                    exec.column_compact_par(&wl2.small, &t, &mut m, SMALL_GRAIN, &mut flags);
                wl2.med = exec.column_compact_par(&wl2.med, &t, &mut m, MED_GRAIN, &mut flags);
                wl2.huge = if exec.team_huge {
                    // Serial over the (few) hub rows; each row's reduction
                    // is team-wide at top level.
                    exec.column_compact_serial(&wl2.huge, &t, &mut m, true)
                } else {
                    exec.column_compact_par(&wl2.huge, &t, &mut m, 1, &mut flags)
                };
            }
        } else if tail {
            exec.column_nw_serial(&wl2.small, &t, &mut m, false);
            exec.column_nw_serial(&wl2.med, &t, &mut m, false);
            exec.column_nw_serial(&wl2.huge, &t, &mut m, false);
        } else {
            exec.column_nw_par(&wl2.small, &t, &mut m, SMALL_GRAIN);
            exec.column_nw_par(&wl2.med, &t, &mut m, MED_GRAIN);
            if exec.team_huge {
                exec.column_nw_serial(&wl2.huge, &t, &mut m, true);
            } else {
                exec.column_nw_par(&wl2.huge, &t, &mut m, 1);
            }
        }

        // --- Decide Set + fused epilogue ---------------------------------
        iter = next_iter;
        let (newly_in, newly_out, remaining);
        if cfg.use_worklists {
            let (mut nin, mut nout) = (0usize, 0usize);
            if tail {
                let (s, a, b) =
                    exec.decide_compact_refresh_serial(&wl1.small, &mut t, &m, false, next_iter);
                wl1.small = s;
                nin += a;
                nout += b;
                let (s, a, b) =
                    exec.decide_compact_refresh_serial(&wl1.med, &mut t, &m, false, next_iter);
                wl1.med = s;
                nin += a;
                nout += b;
                let (s, a, b) =
                    exec.decide_compact_refresh_serial(&wl1.huge, &mut t, &m, false, next_iter);
                wl1.huge = s;
                nin += a;
                nout += b;
            } else {
                let (s, a, b) = exec.decide_compact_refresh_par(
                    &wl1.small,
                    &mut t,
                    &m,
                    SMALL_GRAIN,
                    next_iter,
                    &mut flags,
                );
                wl1.small = s;
                nin += a;
                nout += b;
                let (s, a, b) = exec.decide_compact_refresh_par(
                    &wl1.med, &mut t, &m, MED_GRAIN, next_iter, &mut flags,
                );
                wl1.med = s;
                nin += a;
                nout += b;
                let (s, a, b) = if exec.team_huge {
                    exec.decide_compact_refresh_serial(&wl1.huge, &mut t, &m, true, next_iter)
                } else {
                    exec.decide_compact_refresh_par(&wl1.huge, &mut t, &m, 1, next_iter, &mut flags)
                };
                wl1.huge = s;
                nin += a;
                nout += b;
            }
            newly_in = nin;
            newly_out = nout;
            remaining = wl1.len();
        } else {
            let (mut nin, mut nout) = (0usize, 0usize);
            if tail {
                let (a, b) = exec.decide_nw_serial(&wl1.small, &mut t, &m, false, next_iter);
                nin += a;
                nout += b;
                let (a, b) = exec.decide_nw_serial(&wl1.med, &mut t, &m, false, next_iter);
                nin += a;
                nout += b;
                let (a, b) = exec.decide_nw_serial(&wl1.huge, &mut t, &m, false, next_iter);
                nin += a;
                nout += b;
            } else {
                let (a, b) = exec.decide_nw_par(&wl1.small, &mut t, &m, SMALL_GRAIN, next_iter);
                nin += a;
                nout += b;
                let (a, b) = exec.decide_nw_par(&wl1.med, &mut t, &m, MED_GRAIN, next_iter);
                nin += a;
                nout += b;
                let (a, b) = if exec.team_huge {
                    exec.decide_nw_serial(&wl1.huge, &mut t, &m, true, next_iter)
                } else {
                    exec.decide_nw_par(&wl1.huge, &mut t, &m, 1, next_iter)
                };
                nin += a;
                nout += b;
            }
            newly_in = nin;
            newly_out = nout;
            remaining = undecided_at_start - newly_in - newly_out;
            undecided_nw = remaining;
        }
        history.push(RoundStats {
            undecided: undecided_at_start,
            newly_in,
            newly_out,
        });

        if remaining == 0 {
            break;
        }
    }

    let is_in: Vec<bool> = par::map(&t, |x| x.is_in());
    let in_set = compact::par_filter_indices(&is_in, |&b| b);
    Mis2Result {
        in_set,
        is_in,
        iterations: iter as usize,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mis2;
    use mis2_graph::gen;

    fn all_configs() -> Vec<Mis2Config> {
        let mut out = Vec::new();
        for priorities in [
            PriorityScheme::Fixed,
            PriorityScheme::XorHash,
            PriorityScheme::XorStar,
        ] {
            for use_worklists in [false, true] {
                for packed in [false, true] {
                    for simd in [SimdMode::Off, SimdMode::On] {
                        out.push(Mis2Config {
                            priorities,
                            use_worklists,
                            packed,
                            simd,
                            seed: 0,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn empty_graph() {
        let g = mis2_graph::CsrGraph::empty(0);
        let r = mis2(&g);
        assert_eq!(r.size(), 0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn edgeless_graph_all_in() {
        let g = mis2_graph::CsrGraph::empty(10);
        let r = mis2(&g);
        assert_eq!(r.size(), 10);
        assert_eq!(r.iterations, 1);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn single_vertex() {
        let g = mis2_graph::CsrGraph::empty(1);
        let r = mis2(&g);
        assert_eq!(r.in_set, vec![0]);
    }

    #[test]
    fn complete_graph_one_in() {
        let g = gen::complete(10);
        let r = mis2(&g);
        assert_eq!(r.size(), 1);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn star_graph() {
        // Star: any single vertex dominates everything within distance 2.
        let g = gen::star(50);
        let r = mis2(&g);
        assert_eq!(r.size(), 1);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn star_graph_huge_hub() {
        // A star bigger than HUGE_DEGREE puts the hub in the huge class
        // (team-wide reduction) and the leaves in the small class — every
        // dispatch strategy in one graph.
        let g = gen::star(HUGE_DEGREE + 10);
        for cfg in all_configs() {
            let r = mis2_with_config(&g, &cfg);
            assert_eq!(r.size(), 1, "{cfg:?}");
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        }
    }

    #[test]
    fn path_graph_valid() {
        let g = gen::path(100);
        let r = mis2(&g);
        verify_mis2(&g, &r.is_in).unwrap();
        // A path of 100 vertices needs at least ceil(100/5)=20 and at most
        // ceil(100/3)=34 MIS-2 vertices.
        assert!(r.size() >= 20 && r.size() <= 34, "size {}", r.size());
    }

    #[test]
    fn paper_example_graph() {
        // The 6-vertex graph of the paper's Figure 1:
        // 1-2, 2-3, 3-4, 4-5, 4-6 (1-based) — a path with a fork at 4.
        let g = mis2_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)]);
        let r = mis2(&g);
        verify_mis2(&g, &r.is_in).unwrap();
        // The MIS-2 of this graph has exactly 2 vertices (e.g. {1,4} in the
        // paper's run, 0-based {0,3}).
        assert_eq!(r.size(), 2);
    }

    #[test]
    fn all_configs_valid_on_random_graph() {
        let g = gen::erdos_renyi(500, 1500, 7);
        for cfg in all_configs() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("invalid MIS-2 for {cfg:?}: {e}"));
            assert!(r.iterations > 0);
            assert_eq!(r.history.len(), r.iterations);
        }
    }

    #[test]
    fn all_configs_valid_on_grid() {
        let g = gen::laplace3d(8, 8, 8);
        for cfg in all_configs() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("invalid MIS-2 for {cfg:?}: {e}"));
        }
    }

    #[test]
    fn all_configs_valid_on_powerlaw() {
        // Skewed degrees: exercises the three-way class split, the
        // team-wide hub path and the class-wise compaction together.
        let g = gen::rmat(11, 16, 0.65, 0.15, 0.15, 5);
        for cfg in all_configs() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("invalid MIS-2 for {cfg:?}: {e}"));
        }
    }

    #[test]
    fn packed_and_unpacked_agree() {
        // Same priorities => same set, regardless of representation.
        let g = gen::erdos_renyi(400, 1200, 3);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                packed: true,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                packed: false,
                ..Default::default()
            },
        );
        // Note: packed truncates priorities to (64 - b) bits, which can in
        // principle change comparisons, but only when two 44+-bit truncated
        // priorities collide — not with these sizes.
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn worklists_do_not_change_result() {
        let g = gen::laplace2d(40, 40);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                use_worklists: true,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                use_worklists: false,
                ..Default::default()
            },
        );
        assert_eq!(a.in_set, b.in_set);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn simd_does_not_change_result() {
        let g = gen::elasticity3d(6, 6, 6, 3);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                simd: SimdMode::On,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                simd: SimdMode::Off,
                ..Default::default()
            },
        );
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn simd_does_not_change_result_on_powerlaw() {
        // Hubs above HUGE_DEGREE take the team-wide path only when SIMD is
        // enabled; the chunked reduction must match the serial loop exactly.
        let g = gen::rmat(12, 16, 0.65, 0.15, 0.15, 9);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                simd: SimdMode::On,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                simd: SimdMode::Off,
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = gen::erdos_renyi(2000, 8000, 11);
        let baseline = mis2_prim::pool::with_pool(1, || mis2(&g));
        for threads in [2, 4] {
            let r = mis2_prim::pool::with_pool(threads, || mis2(&g));
            assert_eq!(r.in_set, baseline.in_set, "differs at {threads} threads");
            assert_eq!(r.iterations, baseline.iterations);
        }
    }

    #[test]
    fn deterministic_across_thread_counts_powerlaw() {
        let g = gen::rmat(12, 16, 0.6, 0.2, 0.1, 3);
        let baseline = mis2_prim::pool::with_pool(1, || mis2(&g));
        for threads in [2, 4, 8] {
            let r = mis2_prim::pool::with_pool(threads, || mis2(&g));
            assert_eq!(r, baseline, "differs at {threads} threads");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gen::laplace3d(12, 12, 12);
        let a = mis2(&g);
        let b = mis2(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let g = gen::laplace3d(10, 10, 10);
        let a = mis2_with_config(
            &g,
            &Mis2Config {
                seed: 1,
                ..Default::default()
            },
        );
        let b = mis2_with_config(
            &g,
            &Mis2Config {
                seed: 2,
                ..Default::default()
            },
        );
        verify_mis2(&g, &a.is_in).unwrap();
        verify_mis2(&g, &b.is_in).unwrap();
        assert_ne!(a.in_set, b.in_set);
    }

    #[test]
    fn history_is_consistent() {
        let g = gen::laplace2d(30, 30);
        let r = mis2(&g);
        let total_in: usize = r.history.iter().map(|h| h.newly_in).sum();
        let total_out: usize = r.history.iter().map(|h| h.newly_out).sum();
        assert_eq!(total_in, r.size());
        assert_eq!(total_in + total_out, g.num_vertices());
        // Undecided counts strictly decrease... at least weakly, and reach 0.
        for w in r.history.windows(2) {
            assert!(w[1].undecided <= w[0].undecided);
        }
        assert_eq!(
            r.history.last().unwrap().undecided,
            r.history.last().unwrap().newly_in + r.history.last().unwrap().newly_out
        );
    }

    #[test]
    fn ladder_configs_all_valid() {
        let g = gen::laplace3d(8, 8, 8);
        let mut sizes = Vec::new();
        for (label, cfg) in Mis2Config::ladder() {
            let r = mis2_with_config(&g, &cfg);
            verify_mis2(&g, &r.is_in).unwrap_or_else(|e| panic!("{label}: {e}"));
            sizes.push((label, r.size()));
        }
        // All ladder steps produce similar-quality sets (within 2x).
        let min = sizes.iter().map(|s| s.1).min().unwrap();
        let max = sizes.iter().map(|s| s.1).max().unwrap();
        assert!(max <= 2 * min, "quality spread too wide: {sizes:?}");
    }

    #[test]
    fn two_vertex_edge() {
        // Regression test for the implicit self-loop: without it, both
        // endpoints of a single edge would mark themselves IN.
        let g = mis2_graph::CsrGraph::from_edges(2, &[(0, 1)]);
        let r = mis2(&g);
        assert_eq!(r.size(), 1, "adjacent vertices both IN — self-loop bug");
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn class_split_covers_worklist() {
        // The static degree-class split must partition the vertex set.
        let g = gen::rmat(11, 16, 0.65, 0.15, 0.15, 5);
        let n = g.num_vertices();
        let all: Vec<VertexId> = (0..n as VertexId).collect();
        let c = Classes::split(&g, all, true);
        assert_eq!(c.len(), n);
        let mut seen = vec![false; n];
        for &v in c.small.iter().chain(&c.med).chain(&c.huge) {
            assert!(!seen[v as usize], "vertex {v} in two classes");
            seen[v as usize] = true;
        }
        for &v in &c.small {
            assert!(g.degree(v) < MED_DEGREE);
        }
        for &v in &c.med {
            let d = g.degree(v);
            assert!((MED_DEGREE..HUGE_DEGREE).contains(&d));
        }
        for &v in &c.huge {
            assert!(g.degree(v) >= HUGE_DEGREE);
        }
    }

    #[test]
    fn matches_reference_engine_on_all_configs() {
        // The adaptive engine must be bitwise-identical to the frozen seed
        // engine (full result struct, history included) on every config.
        // The big cross-pool/backends matrix lives in tests/engine_equiv.rs.
        for g in [
            gen::erdos_renyi(1500, 6000, 13),
            gen::rmat(11, 16, 0.65, 0.15, 0.15, 5),
        ] {
            for cfg in all_configs() {
                let got = mis2_with_config(&g, &cfg);
                let want = crate::reference::mis2_with_config(&g, &cfg);
                assert_eq!(got, want, "diverges from seed engine for {cfg:?}");
            }
        }
    }
}
