//! # mis2-core — parallel, deterministic distance-2 maximal independent set
//!
//! Rust reproduction of the MIS-2 algorithm of Kelley & Rajamanickam,
//! *"Parallel, Portable Algorithms for Distance-2 Maximal Independent Set
//! and Graph Coarsening"* (IPDPS 2022), as shipped in Kokkos Kernels.
//!
//! ## Quick start
//!
//! ```
//! use mis2_core::mis2;
//! use mis2_graph::gen;
//!
//! let g = gen::laplace3d(20, 20, 20);
//! let result = mis2(&g);
//! mis2_core::verify::verify_mis2(&g, &result.is_in).unwrap();
//! println!("|MIS-2| = {} in {} iterations", result.size(), result.iterations);
//! ```
//!
//! ## Modules
//!
//! * [`engine`] — Algorithm 1 with the four togglable optimizations
//!   (priority refresh, worklists, packed tuples, SIMD-style inner loops).
//! * [`bell`] — the Bell/Dalton/Olson MIS-k baseline (what CUSP and
//!   ViennaCL implement), used for Figures 6-7 and Table IV.
//! * [`luby`] — Luby's Algorithm A for MIS-1.
//! * [`misk`] — Algorithm 1 generalized to arbitrary distance k.
//! * [`oracle`] — `MIS-1(G²)` as an independent MIS-2 oracle (Lemma IV.2).
//! * [`reference`] — the frozen seed engine (pre-adaptive execution), the
//!   bitwise-equivalence oracle and the kernel bench baseline.
//! * [`mod@tuple`] — packed and 3-field status tuples (Section V-C).
//! * [`priority`] — Fixed / xorshift / xorshift\* priority schemes
//!   (Section V-A, Table I).
//! * [`verify`] — O(V+E) validity checkers for MIS-1/MIS-2.
//!
//! ## Determinism
//!
//! Every algorithm in this crate is deterministic: results depend only on
//! the graph and the configured seed, never on thread count, scheduling or
//! memory layout. This mirrors the paper's headline property ("producing an
//! identical result for a given input across all of these platforms").

pub mod bell;
pub mod engine;
pub mod luby;
pub mod misk;
pub mod oracle;
pub mod priority;
pub mod reference;
pub mod tuple;
pub mod verify;

pub use bell::{bell_mis2, bell_mis_k};
pub use engine::{mis2, mis2_with_config, Mis2Config, Mis2Result, RoundStats, SimdMode};
pub use luby::{luby_mis1, Mis1Result};
pub use misk::mis_k;
pub use oracle::mis2_via_square;
pub use priority::PriorityScheme;
pub use verify::{verify_mis1, verify_mis2, MisViolation};
