//! Generalized deterministic MIS-k: Algorithm 1 extended to arbitrary
//! distance k.
//!
//! Algorithm 1 computes the radius-2 minimum by one Refresh Column pass
//! (radius-1 minima `M_v`) plus a decide pass that consults neighbors'
//! `M_w`. The same idea telescopes: `k - 1` min-propagation passes give
//! every vertex the radius-`(k-1)` minimum, and the decide pass extends it
//! to radius `k`. With fresh xorshift\* priorities per iteration this keeps
//! Algorithm 1's expected `O(log V)` iterations and determinism while
//! generalizing Bell's MIS-k the way the paper's optimizations generalize
//! its k = 2 case (Section V-E explicitly frames them as reusable).
//!
//! For `k = 2` this is exactly Algorithm 1 (without worklists, which do not
//! generalize cleanly: the column-status invalidation radius grows with k);
//! [`crate::engine`] remains the production k = 2 path.

use crate::engine::{Mis2Result, RoundStats};
use crate::priority::PriorityScheme;
use crate::tuple::{id_bits, Packed, TupleRepr};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::{compact, SharedMut};

/// Compute a maximal distance-`k` independent set with per-iteration
/// priorities (deterministic, parallel).
///
/// ```
/// let g = mis2_graph::gen::path(10);
/// // Distance-3 MIS of a 10-path has 2-3 members.
/// let r = mis2_core::mis_k(&g, 3, 0);
/// assert!(r.size() >= 2 && r.size() <= 3);
/// ```
pub fn mis_k(g: &CsrGraph, k: usize, seed: u64) -> Mis2Result {
    assert!(k >= 1, "distance must be >= 1");
    let n = g.num_vertices();
    if n == 0 {
        return Mis2Result {
            in_set: vec![],
            is_in: vec![],
            iterations: 0,
            history: vec![],
        };
    }
    let bits = id_bits(n);
    let prio_mask: u64 = ((1u128 << (64 - bits)) - 1) as u64;
    let scheme = PriorityScheme::XorStar;

    let mut t: Vec<Packed> = vec![Packed::OUT; n];
    let mut m: Vec<Packed> = vec![Packed::OUT; n];
    let mut m_next: Vec<Packed> = vec![Packed::OUT; n];
    let mut history = Vec::new();
    let mut iter: u64 = 0;

    // Initial priorities.
    {
        let tw = SharedMut::new(&mut t);
        par::for_range(0..n as VertexId, |v| {
            let p = scheme.priority(seed, 0, v) & prio_mask;
            unsafe { tw.write(v as usize, Packed::undecided(p, v, bits)) };
        });
    }

    loop {
        let undecided = par::count(&t, |x| x.is_undecided());
        if undecided == 0 {
            break;
        }

        // Propagate the neighborhood minimum. The decide pass below adds
        // one more hop of radius when it consults neighbors' M (k >= 2),
        // so `k - 1` passes suffice; for k = 1 the decide pass only reads
        // the vertex's own M, so one pass is needed here.
        // An IN minimum is translated to the OUT sentinel at the *end* of
        // propagation (not before, as IN must keep winning mins).
        let passes = if k == 1 { 1 } else { k - 1 };
        m.copy_from_slice(&t);
        for _round in 0..passes {
            {
                let mw = SharedMut::new(&mut m_next);
                let m_ref: &[Packed] = &m;
                par::for_range(0..n as VertexId, |v| {
                    let mut mv = m_ref[v as usize];
                    for &w in g.neighbors(v) {
                        mv = mv.min(m_ref[w as usize]);
                    }
                    unsafe { mw.write(v as usize, mv) };
                });
            }
            std::mem::swap(&mut m, &mut m_next);
        }
        // Translate "saw an IN tuple" into the permanent OUT broadcast,
        // exactly like Algorithm 1's line 19-21.
        par::for_each_mut(&mut m, |mv| {
            if mv.is_in() {
                *mv = Packed::OUT;
            }
        });

        // Decide: v IN iff every closed-neighborhood M equals T_v
        // (v is the radius-k strict minimum); OUT iff any M is OUT
        // (an IN vertex within distance k).
        let (newly_in, newly_out) = {
            let tw = SharedMut::new(&mut t);
            let m_ref: &[Packed] = &m;
            par::map_reduce_range(
                0..n as VertexId,
                |v| {
                    let tv = unsafe { tw.read(v as usize) };
                    if !tv.is_undecided() {
                        return (0usize, 0usize);
                    }
                    let mv = m_ref[v as usize];
                    let mut any_out = mv.is_out();
                    let mut all_eq = mv == tv;
                    // For k = 1 the radius-1 minimum is already in M_v;
                    // consulting neighbors would add a hop.
                    if k >= 2 && !any_out {
                        for &w in g.neighbors(v) {
                            let mw_ = m_ref[w as usize];
                            if mw_.is_out() {
                                any_out = true;
                                break;
                            }
                            if mw_ != tv {
                                all_eq = false;
                            }
                        }
                    }
                    if any_out {
                        unsafe { tw.write(v as usize, Packed::OUT) };
                        (0, 1)
                    } else if all_eq {
                        unsafe { tw.write(v as usize, Packed::IN) };
                        (1, 0)
                    } else {
                        (0, 0)
                    }
                },
                (0, 0),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
        };

        iter += 1;
        history.push(RoundStats {
            undecided,
            newly_in,
            newly_out,
        });
        debug_assert!(newly_in + newly_out > 0, "MIS-k iteration stalled");

        // Fresh priorities for the still-undecided.
        {
            let tw = SharedMut::new(&mut t);
            par::for_range(0..n as VertexId, |v| {
                let cur = unsafe { tw.read(v as usize) };
                if cur.is_undecided() {
                    let p = scheme.priority(seed, iter, v) & prio_mask;
                    unsafe { tw.write(v as usize, Packed::undecided(p, v, bits)) };
                }
            });
        }
    }

    let is_in: Vec<bool> = par::map(&t, |x| x.is_in());
    let in_set = compact::par_filter_indices(&is_in, |&b| b);
    Mis2Result {
        in_set,
        is_in,
        iterations: iter as usize,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_mis1, verify_mis2};
    use mis2_graph::{gen, ops};

    /// Direct distance-k verification via capped BFS.
    fn verify_mis_k(g: &CsrGraph, is_in: &[bool], k: usize) {
        for u in 0..g.num_vertices() as u32 {
            let near = ops::neighborhood(g, u, k);
            if is_in[u as usize] {
                for &w in &near {
                    assert!(
                        !is_in[w as usize],
                        "{u} and {w} both IN within distance {k}"
                    );
                }
            } else {
                let covered = near.iter().any(|&w| is_in[w as usize]);
                assert!(covered, "vertex {u} not within distance {k} of the set");
            }
        }
    }

    #[test]
    fn k1_matches_mis1_semantics() {
        let g = gen::erdos_renyi(300, 900, 4);
        let r = mis_k(&g, 1, 0);
        verify_mis1(&g, &r.is_in).unwrap();
    }

    #[test]
    fn k2_matches_algorithm1_semantics() {
        let g = gen::erdos_renyi(300, 900, 5);
        let r = mis_k(&g, 2, 0);
        verify_mis2(&g, &r.is_in).unwrap();
    }

    #[test]
    fn k2_equals_engine_without_worklists() {
        // Same priorities, same decide rule: mis_k(2) must equal the engine
        // in its no-worklist configuration.
        let g = gen::laplace2d(20, 20);
        let r1 = mis_k(&g, 2, 0);
        let r2 = crate::engine::mis2_with_config(
            &g,
            &crate::engine::Mis2Config {
                use_worklists: false,
                simd: crate::engine::SimdMode::Off,
                ..Default::default()
            },
        );
        assert_eq!(r1.in_set, r2.in_set);
        assert_eq!(r1.iterations, r2.iterations);
    }

    #[test]
    fn k3_and_k4_valid() {
        for k in [3usize, 4] {
            let g = gen::laplace2d(15, 15);
            let r = mis_k(&g, k, 0);
            verify_mis_k(&g, &r.is_in, k);
        }
    }

    #[test]
    fn k_larger_than_diameter_yields_single_vertex() {
        let g = gen::path(10); // diameter 9
        let r = mis_k(&g, 20, 0);
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn set_size_decreases_with_k() {
        let g = gen::laplace2d(20, 20);
        let sizes: Vec<usize> = (1..=4).map(|k| mis_k(&g, k, 0).size()).collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "sizes should shrink with k: {sizes:?}");
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let g = gen::erdos_renyi(500, 1500, 2);
        let a = mis2_prim::pool::with_pool(1, || mis_k(&g, 3, 7));
        let b = mis2_prim::pool::with_pool(4, || mis_k(&g, 3, 7));
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(mis_k(&CsrGraph::empty(0), 3, 0).size(), 0);
    }
}
