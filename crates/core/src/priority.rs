//! Pseudo-random priority schemes (Section V-A of the paper).
//!
//! Algorithm 1 assigns each undecided vertex a fresh pseudo-random priority
//! at the start of every iteration: `h(iter, v) = f(f(iter) XOR f(v))`.
//! Table I of the paper compares three choices:
//!
//! * **Fixed** — priorities drawn once and reused in every iteration (what
//!   Bell's algorithm / CUSP / ViennaCL do). Vulnerable to dependency
//!   chains: if `w` has the lowest and `v` the second-lowest priority in
//!   `v`'s radius-2 neighborhood, nothing in that neighborhood can be
//!   decided until `w` is.
//! * **Xor** — `f` = 64-bit xorshift. Surprisingly *worse* than Fixed: the
//!   hash is correlated across iterations, so chains persist.
//! * **XorStar** — `f` = 64-bit xorshift\*. Breaks chains; fewest
//!   iterations. This is the scheme used by Kokkos Kernels and all of the
//!   paper's main experiments.

use mis2_prim::hash::{hash2, xorshift64, xorshift64_star};

/// Which priority scheme Algorithm 1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityScheme {
    /// Priorities chosen once (iteration-independent) — Bell's choice.
    Fixed,
    /// Fresh priorities per iteration via plain xorshift (Table I "Xor").
    XorHash,
    /// Fresh priorities per iteration via xorshift\* (Table I "Xor\*") —
    /// the paper's production scheme.
    #[default]
    XorStar,
}

impl PriorityScheme {
    /// Short display name matching the paper's Table I column headers.
    pub fn label(self) -> &'static str {
        match self {
            PriorityScheme::Fixed => "Fixed",
            PriorityScheme::XorHash => "Xor Hash",
            PriorityScheme::XorStar => "Xor* Hash",
        }
    }

    /// The priority of vertex `v` at iteration `iter`.
    ///
    /// `seed` perturbs the stream (0 reproduces the paper's exact hashes);
    /// it is mixed into the iteration argument so determinism is preserved:
    /// the value depends only on `(scheme, seed, iter, v)`.
    #[inline]
    pub fn priority(self, seed: u64, iter: u64, v: u32) -> u64 {
        let it = match self {
            // Fixed: same hash input every iteration.
            PriorityScheme::Fixed => seed,
            _ => iter ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        match self {
            PriorityScheme::Fixed | PriorityScheme::XorStar => hash2(xorshift64_star, it, v as u64),
            PriorityScheme::XorHash => hash2(xorshift64, it, v as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_iteration_independent() {
        for v in 0..100u32 {
            let p0 = PriorityScheme::Fixed.priority(0, 0, v);
            for iter in 1..20u64 {
                assert_eq!(PriorityScheme::Fixed.priority(0, iter, v), p0);
            }
        }
    }

    #[test]
    fn xorstar_changes_each_iteration() {
        let mut distinct = std::collections::HashSet::new();
        for iter in 0..100u64 {
            distinct.insert(PriorityScheme::XorStar.priority(0, iter, 7));
        }
        assert!(distinct.len() >= 99);
    }

    #[test]
    fn schemes_differ() {
        // Xor and Xor* should produce different streams.
        let a: Vec<u64> = (0..50)
            .map(|v| PriorityScheme::XorHash.priority(0, 3, v))
            .collect();
        let b: Vec<u64> = (0..50)
            .map(|v| PriorityScheme::XorStar.priority(0, 3, v))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn seed_perturbs_stream() {
        let a = PriorityScheme::XorStar.priority(0, 5, 9);
        let b = PriorityScheme::XorStar.priority(1, 5, 9);
        assert_ne!(a, b);
        // ... but the same seed reproduces it.
        assert_eq!(PriorityScheme::XorStar.priority(1, 5, 9), b);
    }

    #[test]
    fn labels() {
        assert_eq!(PriorityScheme::Fixed.label(), "Fixed");
        assert_eq!(PriorityScheme::XorHash.label(), "Xor Hash");
        assert_eq!(PriorityScheme::XorStar.label(), "Xor* Hash");
    }

    #[test]
    fn default_is_xorstar() {
        assert_eq!(PriorityScheme::default(), PriorityScheme::XorStar);
    }
}
