//! The Lemma IV.2 oracle: `MIS-1(G²)` is a valid `MIS-2(G)`.
//!
//! Section IV of the paper proves that running any MIS-1 algorithm on the
//! squared graph (with self-loops) yields a valid MIS-2 of the original
//! graph. Squaring is too expensive for production (its avoidance is the
//! point of Bell's direct formulation), but it provides an independent
//! correctness oracle for Algorithm 1 and grounds the `O(log V)` iteration
//! bound via Luby's analysis.

use crate::luby::{luby_mis1, Mis1Result};
use mis2_graph::{ops, CsrGraph};

/// Compute an MIS-2 of `g` by running Luby's MIS-1 on `G²`.
pub fn mis2_via_square(g: &CsrGraph, seed: u64) -> Mis1Result {
    let g2 = ops::square(g);
    luby_mis1(&g2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mis2;
    use mis2_graph::gen;

    #[test]
    fn oracle_output_is_valid_mis2() {
        // Lemma IV.2, checked empirically on several families.
        for seed in 0..3u64 {
            let graphs = vec![
                gen::path(50),
                gen::cycle(60),
                gen::star(30),
                gen::erdos_renyi(200, 600, seed),
                gen::laplace2d(15, 15),
                gen::laplace3d(6, 6, 6),
            ];
            for g in &graphs {
                let r = mis2_via_square(g, seed);
                verify_mis2(g, &r.is_in)
                    .unwrap_or_else(|e| panic!("oracle invalid (seed {seed}): {e}"));
            }
        }
    }

    #[test]
    fn oracle_and_engine_sizes_comparable() {
        // Both are maximal D2 sets; sizes should be in the same ballpark.
        let g = gen::laplace3d(8, 8, 8);
        let oracle = mis2_via_square(&g, 0);
        let engine = crate::engine::mis2(&g);
        let ratio = oracle.size() as f64 / engine.size() as f64;
        assert!(
            (0.6..=1.7).contains(&ratio),
            "oracle {} vs engine {}",
            oracle.size(),
            engine.size()
        );
    }

    #[test]
    fn oracle_iterations_logarithmic() {
        // Luby's bound transported through the reduction.
        let g = gen::erdos_renyi(5000, 20_000, 2);
        let r = mis2_via_square(&g, 0);
        assert!(r.iterations <= 30, "{} iterations", r.iterations);
    }
}
