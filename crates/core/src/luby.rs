//! Luby's Monte Carlo Algorithm A for MIS-1.
//!
//! Section IV of the paper analyzes Algorithm 1 by reduction to Luby's
//! algorithm (SIAM J. Comput. 1986): with the same per-iteration hash
//! priorities, Luby's algorithm on `G²` terminates in the same number of
//! iterations as Algorithm 1 on `G`, which by Luby's Theorem 1 is expected
//! `O(log V)`. This module provides that algorithm both as the distance-1
//! production kernel and as the oracle half of Lemma IV.2
//! ([`crate::oracle`]).

use crate::engine::RoundStats;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::hash::{hash2, xorshift64_star};
use mis2_prim::par;
use mis2_prim::{compact, SharedMut};

/// Result of an MIS-1 computation (same shape as [`crate::Mis2Result`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mis1Result {
    pub in_set: Vec<VertexId>,
    pub is_in: Vec<bool>,
    pub iterations: usize,
    pub history: Vec<RoundStats>,
}

impl Mis1Result {
    /// |MIS-1|.
    pub fn size(&self) -> usize {
        self.in_set.len()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum S {
    Undecided,
    In,
    Out,
}

/// Compute an MIS-1 with Luby's Algorithm A, using fresh xorshift\*
/// priorities per round (the distance-1 analogue of Algorithm 1, per the
/// paper's Section IV discussion). Deterministic for fixed `seed`.
pub fn luby_mis1(g: &CsrGraph, seed: u64) -> Mis1Result {
    let n = g.num_vertices();
    if n == 0 {
        return Mis1Result {
            in_set: vec![],
            is_in: vec![],
            iterations: 0,
            history: vec![],
        };
    }
    let mut status = vec![S::Undecided; n];
    let mut wl: Vec<VertexId> = (0..n as VertexId).collect();
    let mut history = Vec::new();
    let mut iterations = 0usize;
    let mut iter_seed = seed;

    while !wl.is_empty() {
        let undecided = wl.len();
        // Priorities for this round: (hash, id) with the id as tiebreak.
        let prio = |v: VertexId| -> (u64, VertexId) {
            (
                hash2(xorshift64_star, iter_seed ^ (iterations as u64), v as u64),
                v,
            )
        };

        // Phase A: v wins if it is the strict minimum among undecided
        // closed-neighborhood members.
        let winners: Vec<bool> = {
            let status_ref: &[S] = &status;
            let mut w = vec![false; n];
            let ww = SharedMut::new(&mut w);
            par::for_each(&wl, |&v| {
                let pv = prio(v);
                let mut win = true;
                for &u in g.neighbors(v) {
                    if status_ref[u as usize] == S::Undecided && prio(u) < pv {
                        win = false;
                        break;
                    }
                }
                unsafe { ww.write(v as usize, win) };
            });
            w
        };

        // Phase B: winners join; their undecided neighbors leave.
        let (newly_in, newly_out) = {
            let winners_ref: &[bool] = &winners;
            let sw = SharedMut::new(&mut status);
            par::map_reduce(
                &wl,
                |&v| {
                    // SAFETY: slot v touched only by its own task. Reads of
                    // neighbors go through `winners_ref` (previous phase).
                    if winners_ref[v as usize] {
                        unsafe { sw.write(v as usize, S::In) };
                        (1usize, 0usize)
                    } else if g.neighbors(v).iter().any(|&u| winners_ref[u as usize]) {
                        unsafe { sw.write(v as usize, S::Out) };
                        (0, 1)
                    } else {
                        (0, 0)
                    }
                },
                (0, 0),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
        };

        wl = compact::par_filter(&wl, |&v| status[v as usize] == S::Undecided);
        iterations += 1;
        history.push(RoundStats {
            undecided,
            newly_in,
            newly_out,
        });
        debug_assert!(newly_in > 0, "Luby round made no progress");
        iter_seed = seed; // seed is mixed via `iterations` inside prio
    }

    let is_in: Vec<bool> = par::map(&status, |&s| s == S::In);
    let in_set = compact::par_filter_indices(&is_in, |&b| b);
    Mis1Result {
        in_set,
        is_in,
        iterations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_mis1;
    use mis2_graph::gen;

    #[test]
    fn empty() {
        assert_eq!(luby_mis1(&CsrGraph::empty(0), 0).size(), 0);
    }

    #[test]
    fn edgeless_all_in() {
        let r = luby_mis1(&CsrGraph::empty(5), 0);
        assert_eq!(r.size(), 5);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn triangle_one_in() {
        let g = gen::complete(3);
        let r = luby_mis1(&g, 0);
        assert_eq!(r.size(), 1);
        verify_mis1(&g, &r.is_in).unwrap();
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..5u64 {
            let g = gen::erdos_renyi(500, 2000, seed);
            let r = luby_mis1(&g, seed);
            verify_mis1(&g, &r.is_in).unwrap();
        }
    }

    #[test]
    fn valid_on_grid() {
        let g = gen::laplace2d(30, 30);
        let r = luby_mis1(&g, 0);
        verify_mis1(&g, &r.is_in).unwrap();
        // 5-point grid MIS-1 is at least a quarter of the vertices.
        assert!(r.size() >= 900 / 5);
    }

    #[test]
    fn deterministic() {
        let g = gen::erdos_renyi(800, 3000, 9);
        let a = luby_mis1(&g, 3);
        let b = mis2_prim::pool::with_pool(1, || luby_mis1(&g, 3));
        assert_eq!(a.in_set, b.in_set);
    }

    #[test]
    fn log_iterations_on_big_graph() {
        // Luby's theorem: expected O(log n) rounds.
        let g = gen::erdos_renyi(20_000, 100_000, 1);
        let r = luby_mis1(&g, 0);
        assert!(r.iterations <= 30, "{} rounds", r.iterations);
    }

    #[test]
    fn path_alternation_quality() {
        let g = gen::path(1000);
        let r = luby_mis1(&g, 0);
        verify_mis1(&g, &r.is_in).unwrap();
        // MIS-1 of a path has between ceil(n/3) and ceil(n/2) vertices.
        assert!(r.size() >= 334 && r.size() <= 500, "size {}", r.size());
    }
}
