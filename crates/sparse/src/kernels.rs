//! Dense vector kernels with deterministic reductions.
//!
//! The Krylov solvers (CG, GMRES) are built on these. Dot products and
//! norms use the fixed-block deterministic reduction from `mis2-prim`, so a
//! whole solve is bitwise reproducible across thread counts — extending the
//! paper's determinism property through the solver stack.

use mis2_prim::par;

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    par::for_each_mut_indexed(y, |i, y| *y += alpha * x[i]);
}

/// `y = x + beta * y` (xpay — the CG direction update).
pub fn xpay(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    par::for_each_mut_indexed(y, |i, y| *y = x[i] + beta * *y);
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    par::for_each_mut(x, |v| *v *= alpha);
}

/// Deterministic dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    mis2_prim::reduce::det_dot(a, b)
}

/// Deterministic Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm.
pub fn norm_inf(x: &[f64]) -> f64 {
    par::map_reduce(x, |v| v.abs(), 0.0, f64::max)
}

/// `z = a - b` elementwise.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    par::map_range(0..a.len(), |i| a[i] - b[i])
}

/// Residual `r = b - A x`.
pub fn residual(a: &crate::csr_matrix::CsrMatrix, x: &[f64], b: &[f64]) -> Vec<f64> {
    let ax = a.spmv(x);
    sub(b, &ax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn xpay_basic() {
        let mut y = vec![1.0, 2.0];
        xpay(&[10.0, 20.0], 0.5, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn dot_deterministic() {
        let a: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..100_000).map(|i| (i as f64).cos()).collect();
        let d1 = mis2_prim::pool::with_pool(1, || dot(&a, &b));
        let d2 = mis2_prim::pool::with_pool(3, || dot(&a, &b));
        assert_eq!(d1.to_bits(), d2.to_bits());
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let m = crate::csr_matrix::CsrMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let r = residual(&m, &x, &x);
        assert!(norm2(&r) < 1e-15);
    }
}
