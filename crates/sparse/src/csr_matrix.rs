//! CSR sparse matrix with `f64` values.
//!
//! The solver-side substrate of the reproduction: the paper's use cases
//! (smoothed-aggregation AMG in Section VI-F, cluster Gauss-Seidel in
//! Section VI-G) operate on sparse linear systems whose structure is the
//! graphs that MIS-2 coarsens. Rows are sorted by column index; explicit
//! zeros are allowed (they arise in Galerkin products and are harmless).

use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::SharedMut;

/// A sparse matrix in CSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

/// Errors from matrix construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    BadRowPtr(String),
    ColOutOfBounds { row: usize, col: u32 },
    UnsortedRow { row: usize },
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::BadRowPtr(m) => write!(f, "bad row_ptr: {m}"),
            MatrixError::ColOutOfBounds { row, col } => {
                write!(f, "column {col} out of bounds in row {row}")
            }
            MatrixError::UnsortedRow { row } => write!(f, "row {row} not strictly sorted"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl CsrMatrix {
    /// Validated construction from raw CSR arrays.
    pub fn from_csr(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, MatrixError> {
        if row_ptr.len() != nrows + 1 || row_ptr[0] != 0 {
            return Err(MatrixError::BadRowPtr("length/first element".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() || col_idx.len() != values.len() {
            return Err(MatrixError::BadRowPtr("row_ptr[n] != nnz".into()));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(MatrixError::BadRowPtr(format!("decreasing at {r}")));
            }
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for (k, &c) in row.iter().enumerate() {
                if c as usize >= ncols {
                    return Err(MatrixError::ColOutOfBounds { row: r, col: c });
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(MatrixError::UnsortedRow { row: r });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Build from COO triplets; duplicate entries are summed.
    ///
    /// ```
    /// use mis2_sparse::CsrMatrix;
    /// let a = CsrMatrix::from_coo(2, 2, &[(0, 0, 2.0), (1, 1, 3.0), (0, 0, 1.0)]);
    /// assert_eq!(a.get(0, 0), 3.0);
    /// assert_eq!(a.spmv(&[1.0, 1.0]), vec![3.0, 3.0]);
    /// ```
    pub fn from_coo(nrows: usize, ncols: usize, entries: &[(u32, u32, f64)]) -> Self {
        let mut counts = vec![0usize; nrows + 1];
        for &(r, _, _) in entries {
            assert!((r as usize) < nrows, "row index out of bounds");
            counts[r as usize] += 1;
        }
        let total = mis2_prim::scan::exclusive_scan_in_place(&mut counts);
        let mut cols = vec![0u32; total];
        let mut vals = vec![0f64; total];
        let mut cursor = counts.clone();
        for &(r, c, v) in entries {
            assert!((c as usize) < ncols, "col index out of bounds");
            let p = cursor[r as usize];
            cols[p] = c;
            vals[p] = v;
            cursor[r as usize] += 1;
        }
        // Sort + combine duplicates per row.
        let rows: Vec<(Vec<u32>, Vec<f64>)> = par::map_range(0..nrows, |r| {
            let lo = counts[r];
            let hi = counts[r + 1];
            let mut pairs: Vec<(u32, f64)> = cols[lo..hi]
                .iter()
                .copied()
                .zip(vals[lo..hi].iter().copied())
                .collect();
            pairs.sort_by_key(|p| p.0);
            let mut rc = Vec::with_capacity(pairs.len());
            let mut rv: Vec<f64> = Vec::with_capacity(pairs.len());
            for (c, v) in pairs {
                if rc.last() == Some(&c) {
                    *rv.last_mut().unwrap() += v;
                } else {
                    rc.push(c);
                    rv.push(v);
                }
            }
            (rc, rv)
        });
        Self::from_sorted_rows(nrows, ncols, rows)
    }

    /// Assemble from per-row `(cols, vals)` pairs that are already sorted
    /// and duplicate-free.
    pub fn from_sorted_rows(nrows: usize, ncols: usize, rows: Vec<(Vec<u32>, Vec<f64>)>) -> Self {
        assert_eq!(rows.len(), nrows);
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut total = 0usize;
        for (rc, rv) in &rows {
            debug_assert_eq!(rc.len(), rv.len());
            total += rc.len();
            row_ptr.push(total);
        }
        let mut col_idx = vec![0u32; total];
        let mut values = vec![0f64; total];
        {
            let cw = SharedMut::new(&mut col_idx);
            let vw = SharedMut::new(&mut values);
            par::for_each_indexed(&rows, |r, (rc, rv)| {
                let base = row_ptr[r];
                for (k, (&c, &v)) in rc.iter().zip(rv.iter()).enumerate() {
                    // SAFETY: row ranges are disjoint.
                    unsafe {
                        cw.write(base + k, c);
                        vw.write(base + k, v);
                    }
                }
            });
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(r, c)`, or 0 if not stored.
    pub fn get(&self, r: usize, c: u32) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Parallel sparse matrix-vector product `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// `y = A x`, writing into an existing buffer.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        par::for_each_mut_indexed(y, |r, yr| {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        });
    }

    /// Transpose (parallel, deterministic).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let total = mis2_prim::scan::exclusive_scan_in_place(&mut counts);
        debug_assert_eq!(total, self.nnz());
        let offsets = counts; // exclusive offsets per new row (old column)
        let mut col_idx = vec![0u32; total];
        let mut values = vec![0f64; total];
        let mut cursor = offsets.clone();
        // Sequential fill in row order so each transposed row ends up sorted
        // by (old) row index automatically.
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = cursor[c as usize];
                col_idx[p] = r as u32;
                values[p] = v;
                cursor[c as usize] += 1;
            }
        }
        let mut row_ptr = offsets;
        row_ptr[self.ncols] = total;
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The diagonal as a dense vector (0 where no diagonal entry stored).
    pub fn diag(&self) -> Vec<f64> {
        par::map_range(0..self.nrows, |r| self.get(r, r as u32))
    }

    /// Structural graph: off-diagonal pattern, symmetrized, as a
    /// [`CsrGraph`]. This is what the MIS-2 / aggregation pipeline consumes.
    pub fn to_graph(&self) -> CsrGraph {
        assert_eq!(self.nrows, self.ncols, "graph requires square matrix");
        let edges: Vec<(VertexId, VertexId)> = (0..self.nrows)
            .flat_map(|r| {
                let (cols, _) = self.row(r);
                cols.iter()
                    .filter(move |&&c| c as usize != r)
                    .map(move |&c| (r as VertexId, c))
                    .collect::<Vec<_>>()
            })
            .collect();
        CsrGraph::from_edges(self.nrows, &edges)
    }

    /// Check numerical symmetry within `tol` (used by tests and by solver
    /// preconditions for CG).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Pattern asymmetry: compare entrywise the slow way.
            return par::all_range(0..self.nrows, |r| {
                let (cols, vals) = self.row(r);
                cols.iter()
                    .zip(vals)
                    .all(|(&c, &v)| (self.get(c as usize, r as u32) - v).abs() <= tol)
            });
        }
        par::all_range(0..t.values.len(), |i| {
            (t.values[i] - self.values[i]).abs() <= tol
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        par::chunked_reduce(
            &self.values,
            par::DET_BLOCK,
            |c| c.iter().map(|v| v * v).sum::<f64>(),
            0.0,
            |a, b| a + b,
        )
        .sqrt()
    }

    /// Dense representation (small matrices / tests / coarsest AMG level).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                *d.at_mut(r, c as usize) += v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [2 -1 0]
        // [-1 2 -1]
        // [0 -1 2]
        CsrMatrix::from_coo(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = CsrMatrix::from_coo(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn spmv_tridiag() {
        let m = small();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn spmv_identity() {
        let m = CsrMatrix::identity(5);
        let x = vec![1.0, -2.0, 3.0, 0.5, 0.0];
        assert_eq!(m.spmv(&x), x);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_coo(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn diag_and_get() {
        let m = small();
        assert_eq!(m.diag(), vec![2.0, 2.0, 2.0]);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn symmetric_check() {
        assert!(small().is_symmetric(1e-14));
        let asym = CsrMatrix::from_coo(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]);
        assert!(!asym.is_symmetric(1e-14));
        assert!(asym.is_symmetric(1.5));
    }

    #[test]
    fn to_graph_drops_diag_and_symmetrizes() {
        let m = CsrMatrix::from_coo(3, 3, &[(0, 0, 5.0), (0, 1, 1.0), (2, 1, 1.0)]);
        let g = m.to_graph();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            CsrMatrix::from_csr(2, 2, vec![0, 1], vec![0], vec![1.0]),
            Err(MatrixError::BadRowPtr(_))
        ));
        assert!(matches!(
            CsrMatrix::from_csr(1, 1, vec![0, 1], vec![4], vec![1.0]),
            Err(MatrixError::ColOutOfBounds { .. })
        ));
        assert!(matches!(
            CsrMatrix::from_csr(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]),
            Err(MatrixError::UnsortedRow { .. })
        ));
    }

    #[test]
    fn frobenius() {
        let m = CsrMatrix::from_coo(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn to_dense_matches() {
        let m = small();
        let d = m.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d.at(r, c), m.get(r, c as u32));
            }
        }
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn spmv_rejects_wrong_x_length() {
        small().spmv(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row index out of bounds")]
    fn from_coo_rejects_bad_row() {
        CsrMatrix::from_coo(2, 2, &[(5, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "graph requires square matrix")]
    fn to_graph_rejects_rectangular() {
        CsrMatrix::from_coo(2, 3, &[(0, 2, 1.0)]).to_graph();
    }

    #[test]
    fn spmv_deterministic_across_threads() {
        let n = 500;
        let entries: Vec<(u32, u32, f64)> = (0..n as u32)
            .flat_map(|i| {
                vec![
                    (i, i, 4.0),
                    (i, (i + 1) % n as u32, -1.0),
                    (i, (i + 7) % n as u32, 0.5),
                ]
            })
            .collect();
        let m = CsrMatrix::from_coo(n, n, &entries);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y1 = mis2_prim::pool::with_pool(1, || m.spmv(&x));
        let y2 = mis2_prim::pool::with_pool(4, || m.spmv(&x));
        assert_eq!(y1, y2);
    }
}
