//! # mis2-sparse — sparse linear algebra substrate
//!
//! CSR matrices and the kernels the paper's solver experiments need:
//!
//! * [`csr_matrix`] — [`CsrMatrix`] with parallel SpMV, transpose,
//!   diagonal extraction, graph extraction.
//! * [`mod@spgemm`] — row-parallel Gustavson SpGEMM and the Galerkin triple
//!   product `Pᵀ A P` for smoothed-aggregation AMG.
//! * [`kernels`] — deterministic vector kernels (axpy, dot, norms) so whole
//!   Krylov solves are bitwise reproducible across thread counts.
//! * [`dense`] — dense LU for the coarsest AMG level.
//! * [`gen`] — matrix generators (Galeri-style Laplace operators, SPD
//!   operators over arbitrary graphs).

pub mod csr_matrix;
pub mod dense;
pub mod gen;
pub mod kernels;
pub mod spgemm;

pub use csr_matrix::{CsrMatrix, MatrixError};
pub use dense::{DenseMatrix, LuFactors, SingularMatrix};
pub use spgemm::{add_scaled, galerkin_product, scale_rows, spgemm};
