//! Sparse matrix-matrix multiplication (SpGEMM) and the Galerkin triple
//! product.
//!
//! SpGEMM is the substrate the *earlier* MIS-2 literature needed (Tuminaro
//! & Tong computed MIS-2 as MIS-1 of `A²` via SpGEMM — paper Section II)
//! and which smoothed-aggregation AMG needs to form the coarse operator
//! `A_c = Pᵀ A P` (Section III-B). The implementation is row-parallel with
//! a per-thread dense accumulator (the classic Gustavson algorithm);
//! accumulation order within a row is fixed (A's column order), so results
//! are bitwise deterministic for any thread count.

use crate::csr_matrix::CsrMatrix;
use mis2_prim::par;

/// Per-thread sparse accumulator: dense value array with generation-tagged
/// occupancy markers, so clearing between rows is O(nnz(row)).
struct Accumulator {
    values: Vec<f64>,
    tag: Vec<u64>,
    current: u64,
}

impl Accumulator {
    fn new(ncols: usize) -> Self {
        Accumulator {
            values: vec![0.0; ncols],
            tag: vec![0; ncols],
            current: 0,
        }
    }

    #[inline]
    fn begin_row(&mut self) {
        self.current += 1;
    }

    #[inline]
    fn add(&mut self, col: usize, v: f64) {
        if self.tag[col] != self.current {
            self.tag[col] = self.current;
            self.values[col] = v;
        } else {
            self.values[col] += v;
        }
    }

    #[inline]
    fn get(&self, col: usize) -> f64 {
        debug_assert_eq!(self.tag[col], self.current);
        self.values[col]
    }

    #[inline]
    fn occupied(&self, col: usize) -> bool {
        self.tag[col] == self.current
    }
}

/// `C = A * B`.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.ncols(), b.nrows(), "spgemm dimension mismatch");
    let nrows = a.nrows();
    let ncols = b.ncols();
    // Row blocks amortize the dense accumulator: one per block (ex
    // map_init-per-thread), which keeps allocation O(blocks * ncols) while
    // the per-row accumulation order stays fixed and deterministic.
    const ROW_BLOCK: usize = 256;
    let nblocks = nrows.div_ceil(ROW_BLOCK);
    let blocks: Vec<Vec<(Vec<u32>, Vec<f64>)>> = par::map_range(0..nblocks, |blk| {
        let lo = blk * ROW_BLOCK;
        let hi = (lo + ROW_BLOCK).min(nrows);
        let mut acc = Accumulator::new(ncols);
        let mut out = Vec::with_capacity(hi - lo);
        for r in lo..hi {
            acc.begin_row();
            let (acols, avals) = a.row(r);
            let mut touched: Vec<u32> = Vec::new();
            for (&k, &av) in acols.iter().zip(avals) {
                let (bcols, bvals) = b.row(k as usize);
                for (&j, &bv) in bcols.iter().zip(bvals) {
                    if !acc.occupied(j as usize) {
                        touched.push(j);
                    }
                    acc.add(j as usize, av * bv);
                }
            }
            touched.sort_unstable();
            let vals: Vec<f64> = touched.iter().map(|&j| acc.get(j as usize)).collect();
            out.push((touched, vals));
        }
        out
    });
    let rows: Vec<(Vec<u32>, Vec<f64>)> = blocks.into_iter().flatten().collect();
    CsrMatrix::from_sorted_rows(nrows, ncols, rows)
}

/// Galerkin coarse operator `A_c = Pᵀ A P` (paper Section III-B: restrict,
/// solve coarse, interpolate).
pub fn galerkin_product(a: &CsrMatrix, p: &CsrMatrix) -> CsrMatrix {
    let ap = spgemm(a, p);
    let r = p.transpose();
    spgemm(&r, &ap)
}

/// `C = alpha * A + beta * B` by parallel row merge. Shapes must match.
pub fn add_scaled(alpha: f64, a: &CsrMatrix, beta: f64, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.nrows(), b.nrows(), "add_scaled row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "add_scaled col mismatch");
    let rows: Vec<(Vec<u32>, Vec<f64>)> = par::map_range(0..a.nrows(), |r| {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let mut cols = Vec::with_capacity(ac.len() + bc.len());
        let mut vals = Vec::with_capacity(ac.len() + bc.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let ca = ac.get(i).copied().unwrap_or(u32::MAX);
            let cb = bc.get(j).copied().unwrap_or(u32::MAX);
            if ca < cb {
                cols.push(ca);
                vals.push(alpha * av[i]);
                i += 1;
            } else if cb < ca {
                cols.push(cb);
                vals.push(beta * bv[j]);
                j += 1;
            } else {
                cols.push(ca);
                vals.push(alpha * av[i] + beta * bv[j]);
                i += 1;
                j += 1;
            }
        }
        (cols, vals)
    });
    CsrMatrix::from_sorted_rows(a.nrows(), a.ncols(), rows)
}

/// Scale each row `i` of `A` by `s[i]` (used for `D⁻¹ A` in prolongator
/// smoothing and Jacobi).
pub fn scale_rows(s: &[f64], a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(s.len(), a.nrows());
    let rows: Vec<(Vec<u32>, Vec<f64>)> = par::map_range(0..a.nrows(), |r| {
        let (cols, vals) = a.row(r);
        (cols.to_vec(), vals.iter().map(|&v| s[r] * v).collect())
    });
    CsrMatrix::from_sorted_rows(a.nrows(), a.ncols(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)]
    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
        let mut c = vec![vec![0.0; b.ncols()]; a.nrows()];
        for r in 0..a.nrows() {
            let (cols, vals) = a.row(r);
            for (&k, &av) in cols.iter().zip(vals) {
                let (bc, bv) = b.row(k as usize);
                for (&j, &bvv) in bc.iter().zip(bv) {
                    c[r][j as usize] += av * bvv;
                }
            }
        }
        c
    }

    fn random_matrix(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> CsrMatrix {
        let mut entries = Vec::new();
        for r in 0..nrows as u32 {
            for k in 0..per_row {
                let h = mis2_prim::hash::splitmix64(seed ^ ((r as u64) << 20) ^ k as u64);
                let c = (h % ncols as u64) as u32;
                let v = ((h >> 32) % 100) as f64 / 10.0 - 5.0;
                entries.push((r, c, v));
            }
        }
        CsrMatrix::from_coo(nrows, ncols, &entries)
    }

    #[test]
    fn identity_times_identity() {
        let i = CsrMatrix::identity(5);
        let c = spgemm(&i, &i);
        assert_eq!(c, i);
    }

    #[test]
    fn identity_preserves() {
        let a = random_matrix(10, 10, 3, 1);
        assert_eq!(spgemm(&CsrMatrix::identity(10), &a), a);
        assert_eq!(spgemm(&a, &CsrMatrix::identity(10)), a);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matches_dense_reference() {
        let a = random_matrix(30, 20, 4, 7);
        let b = random_matrix(20, 25, 4, 8);
        let c = spgemm(&a, &b);
        let want = dense_mul(&a, &b);
        for r in 0..30 {
            for j in 0..25u32 {
                let got = c.get(r, j);
                assert!(
                    (got - want[r][j as usize]).abs() < 1e-10,
                    "({r},{j}): {got} vs {}",
                    want[r][j as usize]
                );
            }
        }
    }

    #[test]
    fn rectangular_chain() {
        let a = random_matrix(8, 40, 5, 2);
        let b = random_matrix(40, 3, 2, 3);
        let c = spgemm(&a, &b);
        assert_eq!(c.nrows(), 8);
        assert_eq!(c.ncols(), 3);
    }

    #[test]
    fn spgemm_deterministic() {
        let a = random_matrix(200, 200, 6, 4);
        let b = random_matrix(200, 200, 6, 5);
        let c1 = mis2_prim::pool::with_pool(1, || spgemm(&a, &b));
        let c2 = mis2_prim::pool::with_pool(4, || spgemm(&a, &b));
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "spgemm dimension mismatch")]
    fn spgemm_rejects_mismatched_shapes() {
        let a = CsrMatrix::identity(3);
        let b = CsrMatrix::identity(4);
        spgemm(&a, &b);
    }

    #[test]
    #[should_panic(expected = "add_scaled row mismatch")]
    fn add_scaled_rejects_mismatch() {
        add_scaled(1.0, &CsrMatrix::identity(2), 1.0, &CsrMatrix::identity(3));
    }

    #[test]
    fn galerkin_small() {
        // A = diag(1, 2, 3, 4); P aggregates {0,1} and {2,3}.
        let a = CsrMatrix::from_coo(4, 4, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0)]);
        let p = CsrMatrix::from_coo(4, 2, &[(0, 0, 1.0), (1, 0, 1.0), (2, 1, 1.0), (3, 1, 1.0)]);
        let ac = galerkin_product(&a, &p);
        assert_eq!(ac.nrows(), 2);
        assert_eq!(ac.get(0, 0), 3.0); // 1 + 2
        assert_eq!(ac.get(1, 1), 7.0); // 3 + 4
        assert_eq!(ac.get(0, 1), 0.0);
    }

    #[test]
    fn add_scaled_matches_dense() {
        let a = random_matrix(12, 9, 3, 1);
        let b = random_matrix(12, 9, 3, 2);
        let c = add_scaled(2.0, &a, -0.5, &b);
        for r in 0..12 {
            for j in 0..9u32 {
                let want = 2.0 * a.get(r, j) - 0.5 * b.get(r, j);
                assert!((c.get(r, j) - want).abs() < 1e-12, "({r},{j})");
            }
        }
    }

    #[test]
    fn scale_rows_basic() {
        let a = CsrMatrix::from_coo(2, 2, &[(0, 0, 2.0), (0, 1, 4.0), (1, 1, 3.0)]);
        let s = scale_rows(&[0.5, 2.0], &a);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(1, 1), 6.0);
    }

    #[test]
    fn galerkin_keeps_symmetry() {
        // Symmetric A and any P give symmetric RAP.
        let a = crate::gen::laplace2d_matrix(6, 6);
        let p = random_matrix(36, 9, 1, 9);
        let ac = galerkin_product(&a, &p);
        assert!(ac.is_symmetric(1e-10));
    }
}
