//! Small dense matrices with LU factorization.
//!
//! Used for the coarsest level of the AMG hierarchy ("the system is solved
//! directly on the coarsest level", paper Section III-B) and as a reference
//! in tests. Row-major storage; partial pivoting.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            *m.at_mut(i, i) = 1.0;
        }
        m
    }

    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.ncols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.ncols + c]
    }

    /// Dense mat-vec.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|r| (0..self.ncols).map(|c| self.at(r, c) * x[c]).sum())
            .collect()
    }

    /// LU factorization with partial pivoting.
    pub fn lu(&self) -> Result<LuFactors, SingularMatrix> {
        assert_eq!(self.nrows, self.ncols, "LU requires a square matrix");
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot: largest |a[i][k]| for i >= k.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(SingularMatrix { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    a.swap(k * n + c, p * n + c);
                }
                perm.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let l = a[i * n + k] / pivot;
                a[i * n + k] = l;
                for c in (k + 1)..n {
                    a[i * n + c] -= l * a[k * n + c];
                }
            }
        }
        Ok(LuFactors { n, lu: a, perm })
    }
}

/// The matrix was (numerically) singular.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix {
    /// The elimination step at which no usable pivot remained.
    pub pivot: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "singular matrix at pivot {}", self.pivot)
    }
}

impl std::error::Error for SingularMatrix {}

/// LU factors with the row permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solve `A x = b`.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for c in 0..i {
                acc -= self.lu[i * n + c] * x[c];
            }
            x[i] = acc;
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for c in (i + 1)..n {
                acc -= self.lu[i * n + c] * x[c];
            }
            x[i] = acc / self.lu[i * n + i];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let m = DenseMatrix::identity(4);
        let lu = m.lu().unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b), b);
    }

    #[test]
    fn solve_small_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let mut m = DenseMatrix::zeros(2, 2);
        *m.at_mut(0, 0) = 2.0;
        *m.at_mut(0, 1) = 1.0;
        *m.at_mut(1, 0) = 1.0;
        *m.at_mut(1, 1) = 3.0;
        let x = m.lu().unwrap().solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] needs a row swap.
        let mut m = DenseMatrix::zeros(2, 2);
        *m.at_mut(0, 1) = 1.0;
        *m.at_mut(1, 0) = 1.0;
        let x = m.lu().unwrap().solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut m = DenseMatrix::zeros(2, 2);
        *m.at_mut(0, 0) = 1.0;
        *m.at_mut(0, 1) = 2.0;
        *m.at_mut(1, 0) = 2.0;
        *m.at_mut(1, 1) = 4.0;
        assert!(m.lu().is_err());
    }

    #[test]
    fn random_roundtrip() {
        let n = 20;
        let mut m = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let h = mis2_prim::hash::splitmix64((r * n + c) as u64);
                *m.at_mut(r, c) = ((h % 1000) as f64 - 500.0) / 100.0;
            }
            // Diagonal dominance for well-conditioned test.
            *m.at_mut(r, r) += 50.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let b = m.matvec(&x_true);
        let x = m.lu().unwrap().solve(&b);
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "component {i}");
        }
    }

    #[test]
    fn matvec() {
        let mut m = DenseMatrix::zeros(2, 3);
        *m.at_mut(0, 0) = 1.0;
        *m.at_mut(0, 2) = 2.0;
        *m.at_mut(1, 1) = -1.0;
        assert_eq!(m.matvec(&[1.0, 2.0, 3.0]), vec![7.0, -2.0]);
    }
}
