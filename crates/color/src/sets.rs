//! CRS-by-color layout.
//!
//! Both multicolor Gauss-Seidel variants sweep "for color in colors:
//! parallel-for over the vertices/clusters of that color" (Algorithm 4
//! lines 7-8). This structure groups vertex ids by color contiguously so
//! each sweep is a cache-friendly slice, built deterministically with a
//! counting sort.

use crate::Coloring;
use mis2_graph::VertexId;

/// Vertices grouped by color: `members[offsets[c]..offsets[c+1]]` holds the
/// vertices of color `c` in ascending id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorSets {
    offsets: Vec<usize>,
    members: Vec<VertexId>,
}

impl ColorSets {
    /// Build from a coloring.
    pub fn build(coloring: &Coloring) -> Self {
        let (offsets, members) =
            mis2_prim::bucket::bucket_by_key(coloring.num_colors as usize, &coloring.colors);
        ColorSets { offsets, members }
    }

    /// Number of colors.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The vertices of color `c` (ascending ids).
    #[inline]
    pub fn members(&self, c: usize) -> &[VertexId] {
        &self.members[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Iterate over `(color, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[VertexId])> {
        (0..self.num_colors()).map(move |c| (c, self.members(c)))
    }

    /// Total vertices across all colors.
    pub fn total(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jp::color_d1;
    use mis2_graph::gen;

    #[test]
    fn partition_property() {
        let g = gen::erdos_renyi(200, 800, 4);
        let c = color_d1(&g, 0);
        let sets = ColorSets::build(&c);
        assert_eq!(sets.num_colors(), c.num_colors as usize);
        assert_eq!(sets.total(), 200);
        // Every vertex appears exactly once, under its own color.
        let mut seen = [false; 200];
        for (color, members) in sets.iter() {
            for &v in members {
                assert!(!seen[v as usize], "duplicate vertex {v}");
                seen[v as usize] = true;
                assert_eq!(c.colors[v as usize] as usize, color);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn members_sorted() {
        let g = gen::laplace2d(10, 10);
        let sets = ColorSets::build(&color_d1(&g, 0));
        for (_, members) in sets.iter() {
            for w in members.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn empty() {
        let c = Coloring::from_colors(vec![], 0);
        let sets = ColorSets::build(&c);
        assert_eq!(sets.num_colors(), 0);
        assert_eq!(sets.total(), 0);
    }
}
