//! Speculative greedy distance-1 coloring (Deveci et al., IPDPS 2016).
//!
//! All worklist vertices speculatively pick the smallest color not used by
//! their neighbors *as currently visible*; a second pass detects conflicts
//! (equal-colored neighbors) and uncolors the lower-id endpoint; repeat.
//! Faster than Jones–Plassmann in practice but **nondeterministic** under
//! parallel execution (the visible neighbor colors depend on scheduling) —
//! exactly why the paper's Table V marks the D2C aggregation baselines
//! non-deterministic while the MIS-2 schemes get a checkmark.

use crate::jp::{smallest_free, UNCOLORED};
use crate::Coloring;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::compact;
use mis2_prim::par;
use std::sync::atomic::{AtomicU32, Ordering};

/// Speculative greedy coloring with conflict resolution.
pub fn color_d1_speculative(g: &CsrGraph, _seed: u64) -> Coloring {
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    let mut wl: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;

    while !wl.is_empty() {
        rounds += 1;
        // Speculative assignment: read neighbor colors racily.
        par::for_each(&wl, |&v| {
            let mut used: Vec<u32> = g
                .neighbors(v)
                .iter()
                .map(|&w| colors[w as usize].load(Ordering::Relaxed))
                .filter(|&c| c != UNCOLORED)
                .collect();
            let c = smallest_free(&mut used);
            colors[v as usize].store(c, Ordering::Relaxed);
        });
        // Conflict detection: the smaller id of a conflicting pair loses.
        wl = compact::par_filter(&wl, |&v| {
            let cv = colors[v as usize].load(Ordering::Relaxed);
            let conflicted = g
                .neighbors(v)
                .iter()
                .any(|&w| w > v && colors[w as usize].load(Ordering::Relaxed) == cv);
            if conflicted {
                colors[v as usize].store(UNCOLORED, Ordering::Relaxed);
            }
            conflicted
        });
    }
    let colors: Vec<u32> = colors.into_iter().map(|a| a.into_inner()).collect();
    Coloring::from_colors(colors, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_coloring_d1;
    use mis2_graph::gen;

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..4u64 {
            let g = gen::erdos_renyi(400, 1600, seed);
            let c = color_d1_speculative(&g, seed);
            verify_coloring_d1(&g, &c.colors).unwrap();
            assert!(c.num_colors as usize <= g.max_degree() + 1);
        }
    }

    #[test]
    fn valid_on_structured() {
        let g = gen::laplace2d(30, 30);
        let c = color_d1_speculative(&g, 0);
        verify_coloring_d1(&g, &c.colors).unwrap();
        assert!(c.num_colors <= 5);
    }

    #[test]
    fn complete_graph() {
        let g = gen::complete(8);
        let c = color_d1_speculative(&g, 0);
        verify_coloring_d1(&g, &c.colors).unwrap();
        assert_eq!(c.num_colors, 8);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(color_d1_speculative(&CsrGraph::empty(0), 0).num_colors, 0);
        let c = color_d1_speculative(&CsrGraph::empty(9), 0);
        assert_eq!(c.num_colors, 1);
    }

    #[test]
    fn single_thread_is_one_round() {
        // On one thread speculation sees fully up-to-date colors: no
        // conflicts, one round.
        let g = gen::erdos_renyi(300, 900, 1);
        let c = mis2_prim::pool::with_pool(1, || color_d1_speculative(&g, 0));
        verify_coloring_d1(&g, &c.colors).unwrap();
        assert_eq!(c.rounds, 1);
    }
}
