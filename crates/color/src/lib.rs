//! # mis2-color — parallel graph coloring substrate
//!
//! Coloring appears in two places in the paper:
//!
//! * the **cluster multicolor Gauss-Seidel** preconditioner (Algorithm 4)
//!   colors the *coarsened* graph to find independent clusters that can be
//!   swept in parallel;
//! * the **D2C aggregation baselines** of Table V ("Serial D2C", "NB D2C")
//!   use net-based distance-2 coloring to pick aggregate roots.
//!
//! Provided algorithms:
//!
//! * [`jp::color_d1`] — deterministic parallel distance-1 coloring
//!   (Jones–Plassmann with xorshift\* priorities);
//! * [`greedy::color_d1_speculative`] — speculative greedy coloring with
//!   conflict resolution (Deveci et al., IPDPS 2016) — the faster but
//!   *nondeterministic* baseline;
//! * [`d2::color_d2`] — deterministic parallel distance-2 coloring
//!   (Jones–Plassmann over two-hop neighborhoods, the "net-based" scheme);
//! * [`d2::color_d2_serial`] — sequential greedy distance-2 coloring
//!   (the "Serial D2C" baseline's coloring step);
//! * [`sets::ColorSets`] — CRS-by-color layout for sweeping color classes.

pub mod d2;
pub mod greedy;
pub mod jp;
pub mod mis_based;
pub mod sets;
pub mod verify;

pub use d2::{color_d2, color_d2_serial, color_d2_speculative};
pub use greedy::color_d1_speculative;
pub use jp::color_d1;
pub use mis_based::color_d2_mis;
pub use sets::ColorSets;
pub use verify::{verify_coloring_d1, verify_coloring_d2, ColoringViolation};

/// A coloring: `colors[v]` in `0..num_colors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Per-vertex color, `0..num_colors`.
    pub colors: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: u32,
    /// Rounds the parallel algorithm needed (1 for serial algorithms).
    pub rounds: usize,
}

impl Coloring {
    /// Construct from a raw color array (recomputes `num_colors`).
    pub fn from_colors(colors: Vec<u32>, rounds: usize) -> Self {
        let num_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
        Coloring {
            colors,
            num_colors,
            rounds,
        }
    }
}
