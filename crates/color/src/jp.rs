//! Deterministic parallel distance-1 coloring (Jones–Plassmann).
//!
//! Each round, an uncolored vertex whose `(hash, id)` priority is the strict
//! maximum among its uncolored neighbors claims the smallest color not used
//! by its already-colored neighbors. Every round is a pure map over the
//! previous round's color array, so the result is independent of thread
//! count — the deterministic counterpart to the speculative greedy scheme
//! in [`crate::greedy`].

use crate::Coloring;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::hash::{hash2, xorshift64_star};
use mis2_prim::par;
use mis2_prim::{compact, SharedMut};

pub(crate) const UNCOLORED: u32 = u32::MAX;

#[inline]
pub(crate) fn prio(seed: u64, v: VertexId) -> (u64, VertexId) {
    (hash2(xorshift64_star, seed, v as u64), v)
}

/// Smallest color not present in `used` (which must be sorted ascending).
#[inline]
pub(crate) fn smallest_free(used: &mut Vec<u32>) -> u32 {
    used.sort_unstable();
    used.dedup();
    let mut c = 0u32;
    for &u in used.iter() {
        if u == c {
            c += 1;
        } else if u > c {
            break;
        }
    }
    c
}

/// Deterministic parallel distance-1 coloring.
///
/// ```
/// let g = mis2_graph::gen::cycle(6);
/// let c = mis2_color::color_d1(&g, 0);
/// mis2_color::verify_coloring_d1(&g, &c.colors).unwrap();
/// assert!(c.num_colors <= 3);
/// ```
pub fn color_d1(g: &CsrGraph, seed: u64) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![UNCOLORED; n];
    let mut wl: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;

    while !wl.is_empty() {
        rounds += 1;
        // Decide which vertices win this round (pure read of `colors`).
        let winners: Vec<VertexId> = compact::par_filter(&wl, |&v| {
            let pv = prio(seed, v);
            g.neighbors(v)
                .iter()
                .all(|&w| colors[w as usize] != UNCOLORED || prio(seed, w) < pv)
        });
        debug_assert!(!winners.is_empty(), "JP round stalled");
        // Winners pick colors. Winners form an independent set among the
        // uncolored vertices (strict local maxima), so reading `colors`
        // while writing distinct winner slots never reads a slot written
        // this round by a *neighbor*.
        {
            let cw = SharedMut::new(&mut colors);
            par::for_each(&winners, |&v| {
                let mut used: Vec<u32> = g
                    .neighbors(v)
                    .iter()
                    .map(|&w| unsafe { cw.read(w as usize) })
                    .filter(|&c| c != UNCOLORED)
                    .collect();
                let c = smallest_free(&mut used);
                unsafe { cw.write(v as usize, c) };
            });
        }
        wl = compact::par_filter(&wl, |&v| colors[v as usize] == UNCOLORED);
    }
    Coloring::from_colors(colors, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_coloring_d1;
    use mis2_graph::gen;

    #[test]
    fn empty_graph() {
        let c = color_d1(&CsrGraph::empty(0), 0);
        assert_eq!(c.num_colors, 0);
    }

    #[test]
    fn edgeless_one_color() {
        let c = color_d1(&CsrGraph::empty(5), 0);
        assert_eq!(c.num_colors, 1);
        assert!(c.colors.iter().all(|&x| x == 0));
    }

    #[test]
    fn complete_graph_n_colors() {
        let g = gen::complete(6);
        let c = color_d1(&g, 0);
        assert_eq!(c.num_colors, 6);
        verify_coloring_d1(&g, &c.colors).unwrap();
    }

    #[test]
    fn path_two_colors_or_so() {
        let g = gen::path(50);
        let c = color_d1(&g, 0);
        verify_coloring_d1(&g, &c.colors).unwrap();
        assert!(c.num_colors <= 3, "{} colors on a path", c.num_colors);
    }

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..4u64 {
            let g = gen::erdos_renyi(300, 1200, seed);
            let c = color_d1(&g, seed);
            verify_coloring_d1(&g, &c.colors).unwrap();
            // Greedy bound: at most max_degree + 1 colors.
            assert!(c.num_colors as usize <= g.max_degree() + 1);
        }
    }

    #[test]
    fn valid_on_grid() {
        let g = gen::laplace3d(8, 8, 8);
        let c = color_d1(&g, 0);
        verify_coloring_d1(&g, &c.colors).unwrap();
        assert!(c.num_colors <= 7);
    }

    #[test]
    fn deterministic_across_threads() {
        let g = gen::erdos_renyi(1000, 5000, 3);
        let a = mis2_prim::pool::with_pool(1, || color_d1(&g, 0));
        let b = mis2_prim::pool::with_pool(4, || color_d1(&g, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn smallest_free_logic() {
        assert_eq!(smallest_free(&mut vec![]), 0);
        assert_eq!(smallest_free(&mut vec![0, 1, 2]), 3);
        assert_eq!(smallest_free(&mut vec![1, 2]), 0);
        assert_eq!(smallest_free(&mut vec![0, 2, 3]), 1);
        assert_eq!(smallest_free(&mut vec![2, 0, 0, 1, 5]), 3);
    }
}
