//! Distance-2 coloring by repeated maximal-independent-set extraction on
//! `G²`.
//!
//! A construction connecting the paper's two halves through its Lemma
//! IV.2: a maximal independent set of `G²` is a maximal *distance-2*
//! independent set of `G`, so repeatedly extracting an MIS-1 from the
//! still-uncolored induced subgraph of `G²` yields one distance-2 color
//! class per round. (Extracting MIS-2 from induced subgraphs of `G`
//! itself would be wrong: removing colored vertices removes the length-2
//! paths that make two survivors conflict. `G²` materializes those paths
//! as edges, which induced subgraphs preserve.)
//!
//! Maximal classes pack better than a greedy coloring's first-fit classes,
//! and Luby extraction is deterministic — a deterministic alternative to
//! the speculative net-based scheme, at the cost of forming `G²`.

use crate::Coloring;
use mis2_core::luby_mis1;
use mis2_graph::{ops, CsrGraph};
use mis2_prim::par;

/// Distance-2 coloring via repeated MIS extraction on `G²`
/// (deterministic).
pub fn color_d2_mis(g: &CsrGraph, seed: u64) -> Coloring {
    let n = g.num_vertices();
    const UNCOLORED: u32 = u32::MAX;
    let g2 = ops::square(g);
    let mut colors = vec![UNCOLORED; n];
    let mut uncolored = n;
    let mut color = 0u32;
    let mut rounds = 0usize;
    while uncolored > 0 {
        rounds += 1;
        let keep: Vec<bool> = par::map(&colors, |&c| c == UNCOLORED);
        let (sub, new_to_old) = ops::induced_subgraph(&g2, &keep);
        let m = luby_mis1(&sub, seed ^ (color as u64).wrapping_mul(0x9E37));
        debug_assert!(!m.in_set.is_empty());
        for &v2 in &m.in_set {
            colors[new_to_old[v2 as usize] as usize] = color;
        }
        uncolored -= m.in_set.len();
        color += 1;
    }
    Coloring {
        colors,
        num_colors: color,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_coloring_d2;
    use mis2_graph::gen;

    #[test]
    fn valid_on_random_and_structured() {
        for seed in 0..3u64 {
            let g = gen::erdos_renyi(150, 450, seed);
            let c = color_d2_mis(&g, seed);
            verify_coloring_d2(&g, &c.colors).unwrap();
        }
        let g = gen::laplace2d(14, 14);
        let c = color_d2_mis(&g, 0);
        verify_coloring_d2(&g, &c.colors).unwrap();
    }

    #[test]
    fn usually_fewer_colors_than_greedy_d2() {
        // Maximal classes pack better than greedy's first-fit classes on
        // structured graphs.
        let g = gen::laplace2d(20, 20);
        let mis = color_d2_mis(&g, 0);
        let greedy = crate::d2::color_d2(&g, 0);
        verify_coloring_d2(&g, &mis.colors).unwrap();
        assert!(
            mis.num_colors <= greedy.num_colors + 2,
            "MIS-based {} vs greedy {}",
            mis.num_colors,
            greedy.num_colors
        );
    }

    #[test]
    fn first_class_is_maximal() {
        // Color class 0 is a *maximal* D2 independent set of the original
        // graph — the property a greedy D2 coloring does not guarantee.
        let g = gen::laplace3d(6, 6, 6);
        let c = color_d2_mis(&g, 0);
        let is_in: Vec<bool> = c.colors.iter().map(|&x| x == 0).collect();
        mis2_core::verify_mis2(&g, &is_in).unwrap();
    }

    #[test]
    fn deterministic() {
        let g = gen::erdos_renyi(300, 900, 7);
        let a = mis2_prim::pool::with_pool(1, || color_d2_mis(&g, 1));
        let b = mis2_prim::pool::with_pool(4, || color_d2_mis(&g, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(color_d2_mis(&CsrGraph::empty(0), 0).num_colors, 0);
        let c = color_d2_mis(&CsrGraph::empty(7), 0);
        assert_eq!(c.num_colors, 1);
    }
}
