//! Distance-2 ("net-based") graph coloring.
//!
//! A distance-2 coloring assigns distinct colors to any two vertices within
//! distance <= 2. The vertices of a given color therefore form a
//! **distance-2 independent set** (not necessarily maximal) — which is
//! exactly why MueLu's D2C aggregation baselines (Table V "Serial D2C",
//! "NB D2C") can use each color class as a wave of aggregate roots.
//!
//! * [`color_d2`] — deterministic parallel Jones–Plassmann over two-hop
//!   neighborhoods (the parallel "net-based" coloring of Taş et al. that
//!   the paper cites for NB D2C).
//! * [`color_d2_serial`] — sequential greedy (Serial D2C's coloring step).

use crate::jp::{smallest_free, UNCOLORED};
use crate::Coloring;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::{compact, SharedMut};

/// Visit every vertex within distance <= 2 of `v` (excluding `v`),
/// possibly with repeats.
#[inline]
fn for_two_hop(g: &CsrGraph, v: VertexId, mut f: impl FnMut(VertexId)) {
    for &w in g.neighbors(v) {
        f(w);
        for &x in g.neighbors(w) {
            if x != v {
                f(x);
            }
        }
    }
}

/// Deterministic parallel distance-2 coloring (Jones–Plassmann over
/// two-hop neighborhoods). Priorities are cached in one array up front so
/// each round costs one two-hop sweep, not one hash per visited edge.
pub fn color_d2(g: &CsrGraph, seed: u64) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![UNCOLORED; n];
    let prios: Vec<u64> = par::map_range(0..n as u64, |v| {
        mis2_prim::hash::hash2(mis2_prim::hash::xorshift64_star, seed, v)
    });
    let pr = |v: VertexId| (prios[v as usize], v);
    let mut wl: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;

    while !wl.is_empty() {
        rounds += 1;
        let winners: Vec<VertexId> = compact::par_filter(&wl, |&v| {
            let pv = pr(v);
            let mut win = true;
            for_two_hop(g, v, |w| {
                if win && colors[w as usize] == UNCOLORED && pr(w) > pv {
                    win = false;
                }
            });
            win
        });
        debug_assert!(!winners.is_empty(), "D2 JP round stalled");
        {
            // Winners are pairwise at distance > 2, hence never in each
            // other's two-hop sets: concurrent reads below never observe a
            // slot written in this round.
            let cw = SharedMut::new(&mut colors);
            par::for_each(&winners, |&v| {
                let mut used: Vec<u32> = Vec::new();
                for_two_hop(g, v, |w| {
                    let c = unsafe { cw.read(w as usize) };
                    if c != UNCOLORED {
                        used.push(c);
                    }
                });
                let c = smallest_free(&mut used);
                unsafe { cw.write(v as usize, c) };
            });
        }
        wl = compact::par_filter(&wl, |&v| colors[v as usize] == UNCOLORED);
    }
    Coloring::from_colors(colors, rounds)
}

/// Speculative parallel distance-2 coloring with conflict resolution — the
/// fast, **nondeterministic** scheme the "NB D2C" baseline of Table V uses
/// in practice (Taş et al. greedy, as wrapped by MueLu): every uncolored
/// vertex speculatively claims the smallest color not visible in its
/// two-hop neighborhood; conflicts (same color within distance 2) uncolor
/// the lower-id endpoint and retry.
pub fn color_d2_speculative(g: &CsrGraph, _seed: u64) -> Coloring {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    let mut wl: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0usize;
    while !wl.is_empty() {
        rounds += 1;
        par::for_each(&wl, |&v| {
            let mut used: Vec<u32> = Vec::new();
            for_two_hop(g, v, |w| {
                let c = colors[w as usize].load(Ordering::Relaxed);
                if c != UNCOLORED {
                    used.push(c);
                }
            });
            let c = smallest_free(&mut used);
            colors[v as usize].store(c, Ordering::Relaxed);
        });
        wl = compact::par_filter(&wl, |&v| {
            let cv = colors[v as usize].load(Ordering::Relaxed);
            let mut conflict = false;
            for_two_hop(g, v, |w| {
                if !conflict && w > v && colors[w as usize].load(Ordering::Relaxed) == cv {
                    conflict = true;
                }
            });
            if conflict {
                colors[v as usize].store(UNCOLORED, Ordering::Relaxed);
            }
            conflict
        });
    }
    let colors: Vec<u32> = colors.into_iter().map(|a| a.into_inner()).collect();
    Coloring::from_colors(colors, rounds)
}

/// Sequential greedy distance-2 coloring in natural vertex order.
pub fn color_d2_serial(g: &CsrGraph) -> Coloring {
    let n = g.num_vertices();
    let mut colors = vec![UNCOLORED; n];
    for v in 0..n as VertexId {
        let mut used: Vec<u32> = Vec::new();
        for_two_hop(g, v, |w| {
            let c = colors[w as usize];
            if c != UNCOLORED {
                used.push(c);
            }
        });
        colors[v as usize] = smallest_free(&mut used);
    }
    Coloring::from_colors(colors, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_coloring_d2;
    use mis2_graph::gen;

    #[test]
    fn path_needs_three_colors() {
        // On a path, vertices at distance 1 and 2 conflict: chromatic
        // number of P_n^2 is 3 for n >= 3.
        let g = gen::path(30);
        for c in [color_d2(&g, 0), color_d2_serial(&g)] {
            verify_coloring_d2(&g, &c.colors).unwrap();
            assert!(c.num_colors >= 3 && c.num_colors <= 4, "{}", c.num_colors);
        }
    }

    #[test]
    fn star_all_leaves_differ() {
        // Every pair of leaves is at distance 2: n colors needed.
        let g = gen::star(10);
        let c = color_d2(&g, 0);
        verify_coloring_d2(&g, &c.colors).unwrap();
        assert_eq!(c.num_colors, 10);
    }

    #[test]
    fn valid_on_random() {
        for seed in 0..3u64 {
            let g = gen::erdos_renyi(150, 450, seed);
            let c = color_d2(&g, seed);
            verify_coloring_d2(&g, &c.colors).unwrap();
            let cs = color_d2_serial(&g);
            verify_coloring_d2(&g, &cs.colors).unwrap();
        }
    }

    #[test]
    fn valid_on_grid() {
        let g = gen::laplace2d(15, 15);
        let c = color_d2(&g, 0);
        verify_coloring_d2(&g, &c.colors).unwrap();
        // 2D 5-pt stencil squared has degree <= 12; greedy stays within 13.
        assert!(c.num_colors <= 13);
    }

    #[test]
    fn deterministic_across_threads() {
        let g = gen::erdos_renyi(400, 1200, 9);
        let a = mis2_prim::pool::with_pool(1, || color_d2(&g, 1));
        let b = mis2_prim::pool::with_pool(4, || color_d2(&g, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn color_classes_are_d2_independent_sets() {
        // The property D2C aggregation relies on.
        let g = gen::laplace2d(12, 12);
        let c = color_d2(&g, 0);
        for color in 0..c.num_colors {
            let members: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| c.colors[v as usize] == color)
                .collect();
            for &u in &members {
                let near = mis2_graph::ops::neighborhood(&g, u, 2);
                for &w in &near {
                    assert!(
                        c.colors[w as usize] != color,
                        "{u} and {w} share color {color} at distance <= 2"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        assert_eq!(color_d2(&CsrGraph::empty(0), 0).num_colors, 0);
        assert_eq!(color_d2_serial(&CsrGraph::empty(0)).num_colors, 0);
        assert_eq!(color_d2_speculative(&CsrGraph::empty(0), 0).num_colors, 0);
    }

    #[test]
    fn speculative_valid_on_random_and_grid() {
        for seed in 0..3u64 {
            let g = gen::erdos_renyi(150, 450, seed);
            let c = color_d2_speculative(&g, seed);
            verify_coloring_d2(&g, &c.colors).unwrap();
        }
        let g = gen::laplace2d(15, 15);
        let c = color_d2_speculative(&g, 0);
        verify_coloring_d2(&g, &c.colors).unwrap();
    }

    #[test]
    fn speculative_single_thread_one_round() {
        let g = gen::erdos_renyi(200, 600, 1);
        let c = mis2_prim::pool::with_pool(1, || color_d2_speculative(&g, 0));
        verify_coloring_d2(&g, &c.colors).unwrap();
        assert_eq!(c.rounds, 1);
    }
}
