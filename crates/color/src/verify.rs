//! Validity checkers for distance-1 and distance-2 colorings.

use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use std::fmt;

/// A coloring defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringViolation {
    /// Two vertices within the forbidden distance share a color.
    Conflict {
        u: VertexId,
        v: VertexId,
        color: u32,
        distance: usize,
    },
    /// A vertex was left uncolored.
    Uncolored { v: VertexId },
    /// Mask length mismatch.
    BadLength { expected: usize, got: usize },
}

impl fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringViolation::Conflict {
                u,
                v,
                color,
                distance,
            } => {
                write!(
                    f,
                    "vertices {u} and {v} share color {color} at distance {distance}"
                )
            }
            ColoringViolation::Uncolored { v } => write!(f, "vertex {v} uncolored"),
            ColoringViolation::BadLength { expected, got } => {
                write!(f, "color array length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ColoringViolation {}

const UNCOLORED: u32 = u32::MAX;

/// Check a proper distance-1 coloring (all vertices colored, no equal-color
/// edge).
pub fn verify_coloring_d1(g: &CsrGraph, colors: &[u32]) -> Result<(), ColoringViolation> {
    let n = g.num_vertices();
    if colors.len() != n {
        return Err(ColoringViolation::BadLength {
            expected: n,
            got: colors.len(),
        });
    }
    match par::find_map_range(0..n as VertexId, |u| {
        let cu = colors[u as usize];
        if cu == UNCOLORED {
            return Some(ColoringViolation::Uncolored { v: u });
        }
        g.neighbors(u)
            .iter()
            .find(|&&w| colors[w as usize] == cu)
            .map(|&w| ColoringViolation::Conflict {
                u,
                v: w,
                color: cu,
                distance: 1,
            })
    }) {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// Check a proper distance-2 coloring.
pub fn verify_coloring_d2(g: &CsrGraph, colors: &[u32]) -> Result<(), ColoringViolation> {
    verify_coloring_d1(g, colors)?;
    match par::find_map_range(0..g.num_vertices() as VertexId, |u| {
        let cu = colors[u as usize];
        for &w in g.neighbors(u) {
            for &x in g.neighbors(w) {
                if x != u && colors[x as usize] == cu {
                    return Some(ColoringViolation::Conflict {
                        u,
                        v: x,
                        color: cu,
                        distance: 2,
                    });
                }
            }
        }
        None
    }) {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn accepts_proper_d1() {
        let g = gen::path(4);
        verify_coloring_d1(&g, &[0, 1, 0, 1]).unwrap();
    }

    #[test]
    fn rejects_d1_conflict() {
        let g = gen::path(3);
        let e = verify_coloring_d1(&g, &[0, 0, 1]).unwrap_err();
        assert!(matches!(e, ColoringViolation::Conflict { distance: 1, .. }));
    }

    #[test]
    fn rejects_uncolored() {
        let g = gen::path(3);
        let e = verify_coloring_d1(&g, &[0, u32::MAX, 0]).unwrap_err();
        assert!(matches!(e, ColoringViolation::Uncolored { v: 1 }));
    }

    #[test]
    fn rejects_bad_length() {
        let g = gen::path(3);
        assert!(matches!(
            verify_coloring_d1(&g, &[0, 1]),
            Err(ColoringViolation::BadLength { .. })
        ));
    }

    #[test]
    fn d2_catches_two_hop_conflict() {
        // Path 0-1-2: colors [0,1,0] are d1-proper but d2-improper.
        let g = gen::path(3);
        verify_coloring_d1(&g, &[0, 1, 0]).unwrap();
        let e = verify_coloring_d2(&g, &[0, 1, 0]).unwrap_err();
        assert!(matches!(e, ColoringViolation::Conflict { distance: 2, .. }));
        verify_coloring_d2(&g, &[0, 1, 2]).unwrap();
    }
}
