//! Deterministic parallel prefix sums.
//!
//! Algorithm 1 compacts its two worklists with a parallel prefix sum every
//! iteration (Section V-B of the paper; Kokkos `parallel_scan`). The paper's
//! complexity analysis (Section IV) assumes the scan has `O(log n)` depth and
//! `O(n log n)` work. This module implements the classic three-phase
//! block-scan:
//!
//! 1. partition the input into fixed-size blocks and reduce each block in
//!    parallel;
//! 2. scan the (short) vector of block sums sequentially;
//! 3. re-scan each block in parallel, seeded with its block offset.
//!
//! The block size is **independent of the number of worker threads**, so the
//! result — and every intermediate value — is identical for any pool size.

use crate::par;

/// Element type usable in a scan: a copyable additive monoid.
pub trait ScanElem: Copy + Send + Sync {
    /// Additive identity.
    const ZERO: Self;
    /// Associative addition.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_scan_elem {
    ($($t:ty),*) => {$(
        impl ScanElem for $t {
            const ZERO: Self = 0;
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
        }
    )*};
}
impl_scan_elem!(usize, u32, u64, i64);

/// Below this length the scan runs sequentially; parallel setup would only
/// add overhead.
const SEQ_CUTOFF: usize = 1 << 14;
/// Fixed block size for the parallel scan. Chosen once (not per-pool) so
/// output is bitwise-stable across thread counts.
const BLOCK: usize = par::DET_BLOCK;

/// Exclusive prefix sum of `input` into a fresh vector; returns the total.
///
/// `out[i] = input[0] + ... + input[i-1]`, `out[0] = 0`.
///
/// ```
/// let (scan, total) = mis2_prim::scan::exclusive_scan(&[3usize, 1, 4]);
/// assert_eq!(scan, vec![0, 3, 4]);
/// assert_eq!(total, 8);
/// ```
pub fn exclusive_scan<T: ScanElem>(input: &[T]) -> (Vec<T>, T) {
    let mut out = vec![T::ZERO; input.len()];
    let total = exclusive_scan_to(input, &mut out);
    (out, total)
}

/// Exclusive prefix sum of `input` written into `out` (same length);
/// returns the total sum.
pub fn exclusive_scan_to<T: ScanElem>(input: &[T], out: &mut [T]) -> T {
    assert_eq!(input.len(), out.len(), "scan output length mismatch");
    let n = input.len();
    if n == 0 {
        return T::ZERO;
    }
    if n < SEQ_CUTOFF {
        return seq_exclusive(input, out);
    }
    // Phase 1: block sums.
    let nblocks = n.div_ceil(BLOCK);
    let mut block_sums: Vec<T> =
        par::map_chunks(input, BLOCK, |c| c.iter().fold(T::ZERO, |a, &b| a.add(b)));
    // Phase 2: sequential exclusive scan of the block sums.
    let mut run = T::ZERO;
    for bs in block_sums.iter_mut().take(nblocks) {
        let s = *bs;
        *bs = run;
        run = run.add(s);
    }
    let total = run;
    // Phase 3: per-block exclusive scans seeded by the block offset.
    par::for_chunks_mut(out, BLOCK, |b, oc| {
        let lo = b * BLOCK;
        let ic = &input[lo..lo + oc.len()];
        let mut acc = block_sums[b];
        for (o, &i) in oc.iter_mut().zip(ic) {
            *o = acc;
            acc = acc.add(i);
        }
    });
    total
}

/// Exclusive scan performed in place; returns the total.
pub fn exclusive_scan_in_place<T: ScanElem>(data: &mut [T]) -> T {
    let n = data.len();
    if n == 0 {
        return T::ZERO;
    }
    if n < SEQ_CUTOFF {
        let mut run = T::ZERO;
        for x in data.iter_mut() {
            let v = *x;
            *x = run;
            run = run.add(v);
        }
        return run;
    }
    let mut block_sums: Vec<T> =
        par::map_chunks(data, BLOCK, |c| c.iter().fold(T::ZERO, |a, &b| a.add(b)));
    let mut run = T::ZERO;
    for bs in block_sums.iter_mut() {
        let s = *bs;
        *bs = run;
        run = run.add(s);
    }
    let total = run;
    par::for_chunks_mut(data, BLOCK, |b, chunk| {
        let mut acc = block_sums[b];
        for x in chunk.iter_mut() {
            let v = *x;
            *x = acc;
            acc = acc.add(v);
        }
    });
    total
}

/// Inclusive prefix sum: `out[i] = input[0] + ... + input[i]`.
pub fn inclusive_scan<T: ScanElem>(input: &[T]) -> Vec<T> {
    let (mut out, _) = exclusive_scan(input);
    par::for_each_mut_indexed(&mut out, |i, o| *o = o.add(input[i]));
    out
}

fn seq_exclusive<T: ScanElem>(input: &[T], out: &mut [T]) -> T {
    let mut run = T::ZERO;
    for (o, &i) in out.iter_mut().zip(input) {
        *o = run;
        run = run.add(i);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference<T: ScanElem>(input: &[T]) -> (Vec<T>, T) {
        let mut out = Vec::with_capacity(input.len());
        let mut run = T::ZERO;
        for &x in input {
            out.push(run);
            run = run.add(x);
        }
        (out, run)
    }

    #[test]
    fn empty() {
        let (v, t) = exclusive_scan::<usize>(&[]);
        assert!(v.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn single() {
        let (v, t) = exclusive_scan(&[42usize]);
        assert_eq!(v, vec![0]);
        assert_eq!(t, 42);
    }

    #[test]
    fn small_matches_reference() {
        let input: Vec<usize> = (0..1000).map(|i| (i * 7 + 3) % 11).collect();
        let (got, total) = exclusive_scan(&input);
        let (want, want_total) = reference(&input);
        assert_eq!(got, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn large_matches_reference() {
        // Force the parallel path (> SEQ_CUTOFF) with a non-trivial pattern.
        let n = (1 << 16) + 1234;
        let input: Vec<u64> = (0..n as u64)
            .map(|i| crate::hash::splitmix64(i) % 97)
            .collect();
        let (got, total) = exclusive_scan(&input);
        let (want, want_total) = reference(&input);
        assert_eq!(got, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn in_place_matches_scan() {
        let n = (1 << 16) + 7;
        let input: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let (want, want_total) = reference(&input);
        let mut data = input.clone();
        let total = exclusive_scan_in_place(&mut data);
        assert_eq!(data, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn inclusive_matches_reference() {
        let input: Vec<usize> = (0..70_000).map(|i| i % 3).collect();
        let got = inclusive_scan(&input);
        let mut run = 0usize;
        for (i, &x) in input.iter().enumerate() {
            run += x;
            assert_eq!(got[i], run, "mismatch at {i}");
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let n = (1 << 17) + 99;
        let input: Vec<u64> = (0..n as u64)
            .map(|i| crate::hash::xorshift64_star(i + 1) % 1000)
            .collect();
        let baseline = crate::pool::with_pool(1, || exclusive_scan(&input));
        for threads in [2, 3, 4] {
            let got = crate::pool::with_pool(threads, || exclusive_scan(&input));
            assert_eq!(got, baseline, "scan differs at {threads} threads");
        }
    }
}
