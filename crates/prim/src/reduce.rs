//! Deterministic parallel reductions.
//!
//! Floating-point addition is not associative, so a naive parallel sum can
//! return different values depending on how the runtime splits the work.
//! The solver stack (dot products inside CG/GMRES)
//! must be bitwise reproducible for the paper's determinism claims to carry
//! through end-to-end, so the f64 reductions here use a fixed block
//! decomposition: block partial sums are computed in parallel (each block
//! sequentially, in index order) and the short vector of block sums is then
//! folded sequentially. The result is identical for any thread count.

use crate::par;

/// Fixed block size (thread-count independent).
const BLOCK: usize = par::DET_BLOCK;
const SEQ_CUTOFF: usize = 1 << 14;

/// Deterministic parallel sum of `f64` values.
pub fn det_sum_f64(data: &[f64]) -> f64 {
    if data.len() < SEQ_CUTOFF {
        return data.iter().sum();
    }
    par::chunked_reduce(data, BLOCK, |c| c.iter().sum::<f64>(), 0.0, |a, b| a + b)
}

/// Deterministic parallel dot product.
pub fn det_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    if a.len() < SEQ_CUTOFF {
        return a.iter().zip(b).map(|(x, y)| x * y).sum();
    }
    let nblocks = a.len().div_ceil(BLOCK);
    let partials: Vec<f64> = par::map_range(0..nblocks, |blk| {
        let lo = blk * BLOCK;
        let hi = (lo + BLOCK).min(a.len());
        a[lo..hi].iter().zip(&b[lo..hi]).map(|(x, y)| x * y).sum()
    });
    partials.iter().sum()
}

/// Parallel sum of usize values (integers are associative, but we keep the
/// same structure for symmetry and overflow checking in debug builds).
pub fn det_sum_usize(data: &[usize]) -> usize {
    if data.len() < SEQ_CUTOFF {
        return data.iter().sum();
    }
    par::chunked_reduce(data, BLOCK, |c| c.iter().sum::<usize>(), 0, |a, b| a + b)
}

/// Parallel minimum; `None` on empty input. Min is commutative and
/// idempotent so any reduction order gives the same result.
pub fn det_min<T: Copy + Ord + Send + Sync>(data: &[T]) -> Option<T> {
    par::chunked_reduce(
        data,
        BLOCK,
        |c| c.iter().copied().min(),
        None,
        |a, b| match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        },
    )
}

/// Parallel maximum; `None` on empty input.
pub fn det_max<T: Copy + Ord + Send + Sync>(data: &[T]) -> Option<T> {
    par::chunked_reduce(
        data,
        BLOCK,
        |c| c.iter().copied().max(),
        None,
        |a, b| match (a, b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_small() {
        assert_eq!(det_sum_f64(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(det_sum_usize(&[1, 2, 3]), 6);
    }

    #[test]
    fn sum_empty() {
        assert_eq!(det_sum_f64(&[]), 0.0);
        assert_eq!(det_min::<u32>(&[]), None);
    }

    #[test]
    fn dot_matches_sequential() {
        let n = 100_000;
        let a: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let got = det_dot(&a, &b);
        let want: f64 = {
            // reproduce the exact blocked order
            let partials: Vec<f64> = a
                .chunks(BLOCK)
                .zip(b.chunks(BLOCK))
                .map(|(ca, cb)| ca.iter().zip(cb).map(|(x, y)| x * y).sum())
                .collect();
            partials.iter().sum()
        };
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn f64_sum_bitwise_stable_across_threads() {
        let data: Vec<f64> = (0..200_000)
            .map(|i| (crate::hash::splitmix64(i) as f64) / 1e12)
            .collect();
        let baseline = crate::pool::with_pool(1, || det_sum_f64(&data));
        for t in [2, 3, 8] {
            let got = crate::pool::with_pool(t, || det_sum_f64(&data));
            assert_eq!(got.to_bits(), baseline.to_bits(), "{t} threads differ");
        }
    }

    #[test]
    fn min_max() {
        let data: Vec<u64> = (0..50_000).map(crate::hash::splitmix64).collect();
        assert_eq!(det_min(&data), data.iter().copied().min());
        assert_eq!(det_max(&data), data.iter().copied().max());
    }
}
