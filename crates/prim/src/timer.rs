//! Wall-clock timing and sample statistics for the benchmark harness.
//!
//! The paper reports times "averaged over 100 trials" (Table II) and uses
//! geometric-mean speedups (Figure 2, Figures 4-5). These helpers provide
//! the corresponding plumbing.

use std::time::Instant;

/// A simple wall-clock timer.
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed milliseconds since `start`.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed seconds since `start`.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

/// Summary statistics over a set of timing samples (milliseconds or any
/// other positive measure).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub stddev: f64,
}

impl SampleStats {
    /// Compute statistics from raw samples. Empty input yields all-zero
    /// statistics rather than NaN so tables stay printable.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return SampleStats {
                n: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        SampleStats {
            n,
            mean,
            min,
            max,
            stddev: var.sqrt(),
        }
    }
}

/// Time `f` over `trials` runs (after `warmup` untimed runs); returns
/// per-trial milliseconds.
pub fn time_trials<R>(warmup: usize, trials: usize, mut f: impl FnMut() -> R) -> Vec<f64> {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    (0..trials)
        .map(|_| {
            let t = Timer::start();
            std::hint::black_box(f());
            t.elapsed_ms()
        })
        .collect()
}

/// Geometric mean of strictly positive values (the paper's preferred
/// aggregate for speedups). Returns 0 for empty input.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = SampleStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.stddev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_finite() {
        let s = SampleStats::from_samples(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.n, 0);
    }

    #[test]
    fn stats_single_sample() {
        let s = SampleStats::from_samples(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn geomean_known() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn timer_monotone() {
        let t = Timer::start();
        let a = t.elapsed_s();
        let b = t.elapsed_s();
        assert!(b >= a);
    }

    #[test]
    fn trials_count() {
        let samples = time_trials(1, 5, || 1 + 1);
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(|&ms| ms >= 0.0));
    }
}
