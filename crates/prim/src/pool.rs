//! The persistent worker pool behind the `par` execution layer, plus
//! thread-count capping for the strong-scaling experiments.
//!
//! ## Pool lifecycle
//!
//! * **Lazy init** — no thread is created until the first parallel region
//!   actually dispatches. The pool then spawns exactly as many workers as
//!   that region's team needs (team size minus the calling thread) and
//!   grows monotonically on demand, up to [`MAX_TEAM`]` - 1` workers.
//! * **Parking** — between regions every worker blocks on a condvar
//!   (parked by the OS, zero CPU). A leader publishes its region as an
//!   *entry* (job pointer + open team slots) under the pool mutex and
//!   notifies; each woken worker that finds an entry with an open slot
//!   checks in, drains blocks from that region's shared atomic counter,
//!   checks out, and parks again. Several entries coexist, so concurrent
//!   leaders each staff a **sub-team** from the workers the others have
//!   not claimed. Per-region cost is a couple of mutex acquisitions and a
//!   few condvar signals — no thread creation, no thread teardown — which
//!   is what makes rapid back-to-back tiny regions (Gauss-Seidel sweeps,
//!   CG vector ops, AMG cycles) cheap.
//! * **Cap semantics** — [`with_pool`]`(n)` does *not* control how many
//!   threads exist; it caps how many parked workers *participate* in the
//!   regions the closure runs (the calling thread counts toward `n`).
//!   Workers beyond the cap simply stay parked. The cap is thread-local,
//!   so concurrent sweeps at different sizes don't interfere.
//! * **Shutdown** — there is none: workers are detached and park forever.
//!   The Rust runtime terminates the process when `main` returns, and a
//!   condvar-parked thread costs only its stack until then. This mirrors
//!   the OpenMP runtime the paper's thread sweeps assume (a warm team
//!   living for the life of the process).
//!
//! ## Determinism contract
//!
//! The pool never influences *what* is computed, only *who* computes it:
//! regions decompose into the same fixed blocks regardless of the team
//! size (see [`crate::par`]), and workers claim whole blocks from one
//! atomic counter. Results are therefore bitwise-identical at every pool
//! size and on both backends — the property `tests/cross_backend.rs` and
//! `tests/pool_stress.rs` pin down.
//!
//! ## Concurrency semantics
//!
//! * Nested regions (a `par` call from inside a worker or leader draining
//!   a region) run serially on the calling thread — same results, no
//!   oversubscription, no deadlock.
//! * If several OS threads open regions at the same time, each leader gets
//!   its own **sub-team**: the pool staffs every concurrent region from the
//!   workers that are not already claimed by another region, growing the
//!   pool on demand (up to [`MAX_TEAM`]` - 1` workers total). Only when no
//!   worker can be freed or spawned does a leader drain its region inline
//!   on its own thread — counted by [`contended_regions`]. By the
//!   determinism contract the results are unchanged either way; only the
//!   schedule differs.
//! * A panic in any block is caught, the remaining blocks still execute
//!   (matching the previous `std::thread::scope` semantics), and the
//!   first panic payload is re-raised on the thread that opened the
//!   region. Workers survive panics and return to the parked state.

use std::cell::Cell;

thread_local! {
    /// 0 = no override (use all logical CPUs).
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

/// Hard ceiling on a region's team size (leader + parked workers).
/// `with_pool` caps above this are clamped so a typo cannot fork-bomb the
/// process with parked threads.
pub const MAX_TEAM: usize = 256;

/// Number of logical CPUs the parallel backend uses by default.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Team size the next `par` region opened on this thread will request: the
/// `with_pool` cap if one is installed, else [`max_threads`]. Always 1 on
/// the serial backend (`parallel` feature disabled).
pub fn current_threads() -> usize {
    if cfg!(not(feature = "parallel")) {
        return 1;
    }
    let cap = THREAD_CAP.with(|c| c.get());
    if cap == 0 {
        max_threads()
    } else {
        cap.min(MAX_TEAM)
    }
}

/// Number of persistent workers the process-wide pool has spawned so far.
/// Zero until the first parallel region dispatches (lazy init), and always
/// zero on the serial backend. Grows monotonically, never shrinks.
pub fn spawned_workers() -> usize {
    #[cfg(feature = "parallel")]
    {
        team::spawned_workers()
    }
    #[cfg(not(feature = "parallel"))]
    {
        0
    }
}

/// Number of regions (since process start) that wanted helpers but drained
/// entirely inline because every pool worker was claimed by other regions
/// and no new worker could be spawned. With sub-team dispatch this stays at
/// zero under ordinary concurrent load — it climbs only when the
/// [`MAX_TEAM`] ceiling (or OS thread exhaustion) forces the old
/// winner-takes-all fallback. Always zero on the serial backend.
pub fn contended_regions() -> u64 {
    #[cfg(feature = "parallel")]
    {
        team::contended_regions()
    }
    #[cfg(not(feature = "parallel"))]
    {
        0
    }
}

/// Execute `body(b)` for every `b in 0..nblocks`, each exactly once, on a
/// sub-team of at most `team` participants: the calling thread plus up to
/// `team - 1` parked workers claimed from the persistent pool.
///
/// Unlike [`with_pool`] (which caps every region a closure opens), this
/// runs *one* region on an explicitly sized slice of the pool, and it
/// composes with other leaders: concurrent `run_region_on` calls from
/// different OS threads each staff their own sub-team from the workers the
/// others have not claimed. This is the single entry point into sub-team
/// dispatch — every `par` region arrives here (with the [`with_pool`] cap
/// as its `team`), which is how the `mis2-svc` scheduler's K
/// `with_pool(threads / K)`-capped jobs run side by side. Call it directly
/// when you manage individual regions yourself.
///
/// Degrades to a plain serial loop when `team <= 1`, when called from
/// inside another parallel region (no oversubscription, no deadlock), or
/// on the serial backend — with bitwise-identical results in every case.
pub fn run_region_on(team: usize, nblocks: usize, body: &(dyn Fn(usize) + Sync)) {
    if nblocks == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    {
        let team = team.clamp(1, MAX_TEAM).min(nblocks);
        if team >= 2 && !team::in_region() {
            team::run_region(nblocks, team, body);
            return;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = team;
    for b in 0..nblocks {
        body(b);
    }
}

/// Run `f` with the `par` execution layer capped to at most `num_threads`
/// participants per region (the calling thread plus `num_threads - 1`
/// parked workers).
///
/// The cap bounds *participation*, not thread creation: the persistent
/// pool keeps every worker it has ever spawned, and workers beyond the cap
/// stay parked for the duration of `f`. All `par` parallelism inside `f`
/// (including calls in other crates of this workspace) honors the cap,
/// and — by the determinism contract of [`crate::par`] — produces results
/// identical to every other pool size. On the serial backend the cap is
/// irrelevant and `f` simply runs.
pub fn with_pool<R: Send>(num_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let prev = THREAD_CAP.with(|c| c.replace(num_threads.clamp(1, MAX_TEAM)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

#[cfg(feature = "parallel")]
pub(crate) use team::in_region;

/// The persistent team: parked OS workers woken per region through an
/// epoch/condvar handshake. Compiled only with the `parallel` feature —
/// the serial backend never creates a thread.
#[cfg(feature = "parallel")]
mod team {
    use std::cell::Cell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};

    thread_local! {
        /// Set while this thread is draining a region, so nested `par`
        /// calls degrade to serial instead of oversubscribing (or
        /// deadlocking on the single team).
        static IN_REGION: Cell<bool> = const { Cell::new(false) };
    }

    pub(crate) fn in_region() -> bool {
        IN_REGION.with(|c| c.get())
    }

    /// RAII for the nesting flag: regions must clear it even when a block
    /// panics on the draining thread.
    struct RegionFlag;
    impl RegionFlag {
        fn set() -> RegionFlag {
            IN_REGION.with(|c| c.set(true));
            RegionFlag
        }
    }
    impl Drop for RegionFlag {
        fn drop(&mut self) {
            IN_REGION.with(|c| c.set(false));
        }
    }

    /// One parallel region. Lives on the leader's stack; workers only
    /// dereference it between check-in and check-out, and the leader does
    /// not return (or unwind) until every check-in has checked out.
    struct Job {
        /// Lifetime-erased pointer to the region body. Valid for the
        /// duration of the region by the check-in/check-out protocol.
        body: *const (dyn Fn(usize) + Sync),
        /// Next unclaimed block.
        next: AtomicUsize,
        nblocks: usize,
        /// First panic payload from any block, re-raised by the leader.
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }

    /// Raw job pointer made `Send` so it can sit in the shared pool state.
    /// Soundness rests on the region protocol, not on this wrapper.
    #[derive(Clone, Copy)]
    struct JobPtr(*const Job);
    unsafe impl Send for JobPtr {}

    /// One concurrently running region's claim on the pool: how many team
    /// slots are still open (`to_join`) and how many workers are currently
    /// inside the region (`active`). Several entries coexist — that is what
    /// lets concurrent leaders split the pool into sub-teams instead of
    /// serializing on a single job slot.
    struct Entry {
        /// Unique (monotone) id; the leader retires its entry by id.
        id: u64,
        job: JobPtr,
        /// Open team slots a parked worker may still claim.
        to_join: usize,
        /// Workers checked in (claiming or running blocks).
        active: usize,
    }

    struct State {
        /// Claims of all currently running regions (usually 0 or 1 long;
        /// one per concurrent leader under scheduler load).
        entries: Vec<Entry>,
        /// Id source for entries.
        next_id: u64,
        /// Sum of `to_join` over `entries`: slots promised but unclaimed.
        pending: usize,
        /// Workers currently checked in to any entry.
        busy: usize,
        /// Parked worker threads spawned so far (monotone).
        spawned: usize,
        /// Regions that wanted helpers but got none (see
        /// [`super::contended_regions`]).
        contended: u64,
    }

    impl State {
        /// Workers that exist and are neither running a region nor already
        /// promised to one — the staffing budget for a new sub-team.
        fn free_workers(&self) -> usize {
            self.spawned - self.busy - self.pending
        }
    }

    struct Shared {
        state: Mutex<State>,
        /// Workers park here between regions.
        work: Condvar,
        /// Leaders wait here for their entry's checked-in workers to
        /// check out.
        done: Condvar,
    }

    fn shared() -> &'static Shared {
        static POOL: OnceLock<Shared> = OnceLock::new();
        POOL.get_or_init(|| Shared {
            state: Mutex::new(State {
                entries: Vec::new(),
                next_id: 0,
                pending: 0,
                busy: 0,
                spawned: 0,
                contended: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        })
    }

    pub(crate) fn spawned_workers() -> usize {
        shared().state.lock().unwrap().spawned
    }

    pub(crate) fn contended_regions() -> u64 {
        shared().state.lock().unwrap().contended
    }

    /// Claim blocks from the shared counter until none remain. A panic in
    /// a block is recorded (first wins) and draining continues — the same
    /// observable behavior the old `std::thread::scope` backend had, where
    /// sibling workers kept running and the panic surfaced at join.
    fn drain(job: &Job) {
        // SAFETY: the leader keeps `job.body` alive until every checked-in
        // worker (and itself) has finished draining.
        let body = unsafe { &*job.body };
        loop {
            let b = job.next.fetch_add(1, Ordering::Relaxed);
            if b >= job.nblocks {
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(b))) {
                let mut slot = job.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    /// Body of every persistent worker: park on the condvar, check in to
    /// any region that still has an open team slot, drain, check out,
    /// repark. With several entries live at once a worker simply serves
    /// whichever region it finds first — the sub-teams of concurrent
    /// leaders are staffed from one shared set of parked workers.
    fn worker_loop() {
        let pool = shared();
        let mut st = pool.state.lock().unwrap();
        loop {
            let Some(idx) = st.entries.iter().position(|e| e.to_join > 0) else {
                st = pool.work.wait(st).unwrap();
                continue;
            };
            // Open slot found: check in.
            let id = st.entries[idx].id;
            let job = st.entries[idx].job;
            st.entries[idx].to_join -= 1;
            st.entries[idx].active += 1;
            st.pending -= 1;
            st.busy += 1;
            drop(st);
            {
                let _flag = RegionFlag::set();
                // SAFETY: checked in above — the leader cannot retire the
                // job until our check-out below.
                drain(unsafe { &*job.0 });
            }
            st = pool.state.lock().unwrap();
            st.busy -= 1;
            // The entry is guaranteed present: the leader cannot remove it
            // while we are checked in.
            let i = st.entries.iter().position(|e| e.id == id).unwrap();
            st.entries[i].active -= 1;
            if st.entries[i].to_join > 0 {
                // drain() only returns once every block is claimed, so
                // close the door: a sibling joining now could only make a
                // no-op pass over the exhausted counter.
                st.pending -= st.entries[i].to_join;
                st.entries[i].to_join = 0;
            }
            if st.entries[i].active == 0 {
                pool.done.notify_all();
            }
        }
    }

    /// Publish `job` with up to `helpers` team slots, staffed from workers
    /// not claimed by other regions and lazily spawning new ones (up to
    /// the global [`super::MAX_TEAM`]` - 1` ceiling). Returns the entry id
    /// and the number of slots opened, or `None` when every worker is
    /// taken and none can be spawned — the caller then drains alone (the
    /// contended fallback, counted).
    fn dispatch(pool: &'static Shared, job: &Job, helpers: usize) -> Option<(u64, usize)> {
        let mut st = pool.state.lock().unwrap();
        while st.free_workers() < helpers && st.spawned < super::MAX_TEAM - 1 {
            let spawned = std::thread::Builder::new()
                .name(format!("mis2-par-{}", st.spawned))
                .spawn(worker_loop);
            match spawned {
                Ok(_) => st.spawned += 1,
                // Resource exhaustion: run with the team we have.
                Err(_) => break,
            }
        }
        let slots = helpers.min(st.free_workers());
        if slots == 0 {
            st.contended += 1;
            return None;
        }
        st.next_id += 1;
        let id = st.next_id;
        st.entries.push(Entry {
            id,
            job: JobPtr(job),
            to_join: slots,
            active: 0,
        });
        st.pending += slots;
        Some((id, slots))
    }

    /// Retire entry `id`: close the door to late joiners, then wait until
    /// every checked-in worker has checked out. Only after this may the
    /// `Job` (on the leader's stack) be dropped.
    fn retire(pool: &'static Shared, id: u64) {
        let mut st = pool.state.lock().unwrap();
        if let Some(i) = st.entries.iter().position(|e| e.id == id) {
            st.pending -= st.entries[i].to_join;
            st.entries[i].to_join = 0;
        }
        while st
            .entries
            .iter()
            .find(|e| e.id == id)
            .is_some_and(|e| e.active > 0)
        {
            st = pool.done.wait(st).unwrap();
        }
        st.entries.retain(|e| e.id != id);
    }

    /// Execute `body(b)` for every `b in 0..nblocks`, each exactly once,
    /// on a sub-team of at most `team` threads (the caller plus parked
    /// workers). Called by the `par` backend for every parallel region.
    pub(crate) fn run_region(nblocks: usize, team: usize, body: &(dyn Fn(usize) + Sync)) {
        debug_assert!(team >= 2 && nblocks > 0 && !in_region());
        let job = Job {
            // SAFETY: lifetime erasure only — the pointer never outlives
            // this call (see `retire`).
            body: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(body)
            },
            next: AtomicUsize::new(0),
            nblocks,
            panic: Mutex::new(None),
        };
        let pool = shared();
        let helpers = team.min(super::MAX_TEAM) - 1;
        let ticket = dispatch(pool, &job, helpers);
        // Wake only as many workers as can join: a small-cap region on a
        // pool that has grown large must not broadcast-wake (and re-park)
        // every worker. A notification landing on no waiter is simply
        // lost, which is fine — busy workers re-scan the entry list when
        // they finish, and the leader drains every block itself
        // regardless, so a missed wake can only cost parallelism, never
        // progress.
        if let Some((_, slots)) = ticket {
            for _ in 0..slots {
                pool.work.notify_one();
            }
        }
        {
            // The leader always participates; with the pool fully claimed
            // elsewhere it simply drains every block itself — identical
            // results.
            let _flag = RegionFlag::set();
            drain(&job);
        }
        if let Some((id, _)) = ticket {
            retire(pool, id);
        }
        let payload = job.panic.lock().unwrap().take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_is_respected() {
        let n = with_pool(3, current_threads);
        if cfg!(feature = "parallel") {
            assert_eq!(n, 3);
        } else {
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn cap_is_restored_after_with_pool() {
        let ambient = current_threads();
        with_pool(2, || {
            with_pool(5, || {
                if cfg!(feature = "parallel") {
                    assert_eq!(current_threads(), 5);
                }
            });
            if cfg!(feature = "parallel") {
                assert_eq!(current_threads(), 2);
            }
        });
        assert_eq!(current_threads(), ambient);
    }

    #[test]
    fn oversized_cap_is_clamped() {
        let n = with_pool(1_000_000, current_threads);
        if cfg!(feature = "parallel") {
            assert_eq!(n, MAX_TEAM);
        } else {
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn single_thread_pool_works() {
        let sum = with_pool(1, || {
            crate::par::map_reduce(
                &(0..1000u64).collect::<Vec<_>>(),
                |&x| x,
                0u64,
                |a, b| a + b,
            )
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn max_threads_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn run_region_on_visits_every_block_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for team in [1usize, 2, 4] {
            for nblocks in [0usize, 1, 7, 64] {
                let hits: Vec<AtomicUsize> = (0..nblocks).map(|_| AtomicUsize::new(0)).collect();
                run_region_on(team, nblocks, &|b| {
                    hits[b].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "team {team}, nblocks {nblocks}"
                );
            }
        }
    }

    #[test]
    fn concurrent_sub_teams_all_complete() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Several leaders running regions at once on explicit sub-teams:
        // every block of every region must still run exactly once, and —
        // with the pool free to grow — nobody should be forced into the
        // contended inline-drain fallback.
        let before = contended_regions();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let hits: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
                        run_region_on(3, 32, &|b| {
                            hits[b].fetch_add(1, Ordering::Relaxed);
                        });
                        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
                    }
                });
            }
        });
        assert_eq!(
            contended_regions(),
            before,
            "sub-team dispatch must staff concurrent leaders without inline drains"
        );
    }

    #[test]
    fn workers_are_lazy_and_bounded() {
        // Other tests in this binary may already have dispatched regions,
        // so only monotone properties can be asserted.
        let before = spawned_workers();
        assert!(before < MAX_TEAM);
        let n = 100_000usize;
        let got = with_pool(3, || {
            crate::par::map_range(0..n, |i| crate::hash::splitmix64(i as u64))
        });
        assert_eq!(got.len(), n);
        let after = spawned_workers();
        assert!(after >= before, "pool must never shrink");
        if cfg!(feature = "parallel") {
            assert!(after >= 1, "a region at cap 3 must have spawned a worker");
        } else {
            assert_eq!(after, 0, "serial backend must never spawn");
        }
        assert!(after < MAX_TEAM);
    }
}
