//! Thread-pool helpers.
//!
//! The strong-scaling experiments (Figures 4 and 5 of the paper) sweep the
//! number of OpenMP threads; here the analogue is running the algorithm
//! inside rayon pools of varying size. `with_pool` builds a dedicated pool,
//! installs the closure, and tears the pool down, so sweeps are isolated
//! from the global pool.

/// Number of logical CPUs rayon would use by default.
pub fn max_threads() -> usize {
    rayon::current_num_threads().max(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
}

/// Run `f` on a dedicated rayon pool with exactly `num_threads` workers.
///
/// All rayon parallelism inside `f` (including nested `par_iter`s in other
/// crates of this workspace) executes on that pool.
pub fn with_pool<R: Send>(num_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(num_threads.max(1))
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_size_is_respected() {
        let n = with_pool(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn single_thread_pool_works() {
        let sum: u64 = with_pool(1, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn max_threads_positive() {
        assert!(max_threads() >= 1);
    }
}
