//! Thread-pool sizing.
//!
//! The strong-scaling experiments (Figures 4 and 5 of the paper) sweep the
//! number of OpenMP threads; here the analogue is running the algorithm
//! with the [`crate::par`] execution layer capped to a worker count.
//! `with_pool` installs the cap for the duration of a closure, so sweeps
//! are isolated from each other and from the ambient default.
//!
//! The cap is per-thread state: it applies to every `par` operation the
//! closure performs on the calling thread (nested parallel regions inside
//! worker threads run serially regardless, see [`crate::par`]).

use std::cell::Cell;

thread_local! {
    /// 0 = no override (use all logical CPUs).
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

/// Number of logical CPUs the parallel backend uses by default.
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count the next `par` operation on this thread will use: the
/// `with_pool` cap if one is installed, else [`max_threads`]. Always 1 on
/// the serial backend (`parallel` feature disabled).
pub fn current_threads() -> usize {
    if cfg!(not(feature = "parallel")) {
        return 1;
    }
    let cap = THREAD_CAP.with(|c| c.get());
    if cap == 0 {
        max_threads()
    } else {
        cap
    }
}

/// Run `f` with the `par` execution layer capped to exactly `num_threads`
/// workers.
///
/// All `par` parallelism inside `f` (including calls in other crates of
/// this workspace) executes on at most that many threads, and — by the
/// determinism contract of [`crate::par`] — produces results identical to
/// every other pool size. On the serial backend the cap is irrelevant and
/// `f` simply runs.
pub fn with_pool<R: Send>(num_threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let prev = THREAD_CAP.with(|c| c.replace(num_threads.max(1)));
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_size_is_respected() {
        let n = with_pool(3, current_threads);
        if cfg!(feature = "parallel") {
            assert_eq!(n, 3);
        } else {
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn cap_is_restored_after_with_pool() {
        let ambient = current_threads();
        with_pool(2, || {
            with_pool(5, || {
                if cfg!(feature = "parallel") {
                    assert_eq!(current_threads(), 5);
                }
            });
            if cfg!(feature = "parallel") {
                assert_eq!(current_threads(), 2);
            }
        });
        assert_eq!(current_threads(), ambient);
    }

    #[test]
    fn single_thread_pool_works() {
        let sum = with_pool(1, || {
            crate::par::map_reduce(
                &(0..1000u64).collect::<Vec<_>>(),
                |&x| x,
                0u64,
                |a, b| a + b,
            )
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn max_threads_positive() {
        assert!(max_threads() >= 1);
    }
}
