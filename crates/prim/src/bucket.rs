//! Deterministic bucketing (counting sort by key).
//!
//! Several consumers group items by a small integer key — color classes
//! for multicolor Gauss-Seidel sweeps, cluster membership lists for
//! Algorithm 4, aggregate member lists for coarsening. This is the shared
//! stable counting sort: items keep their relative order within a bucket,
//! so every grouping built on it is deterministic.
//!
//! [`partition_by`] is the parallel variant used by the MIS-2 engine's
//! degree-bucketed dispatch: an order-preserving multi-way split of a
//! worklist into execution classes, built from the same
//! flags → blocked counts → exclusive scan → scatter machinery as
//! [`crate::compact`].

use crate::par;
use crate::scan;

/// Below this length a sequential partition is faster than dispatching.
const SEQ_CUTOFF: usize = 1 << 14;
/// Fixed block size for the parallel counting passes (thread-count
/// independent; the output is decomposition-invariant anyway because the
/// scatter offsets come from an exclusive scan).
const BLOCK: usize = par::DET_BLOCK;

/// Raw-pointer wrapper so disjoint parallel writes into the per-class
/// output buffers pass `Send`.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Order-preserving multi-way partition: split `items` into `num_classes`
/// lists by `class_of` (which must return a value `< num_classes`),
/// preserving relative order within each class. `class_of` runs exactly
/// once per element.
///
/// Deterministic on both backends and at every pool size: per-block
/// per-class counts are scanned into scatter offsets, so the output is
/// identical to the sequential stable partition.
///
/// ```
/// let parts = mis2_prim::bucket::partition_by(&[5u32, 1, 7, 2, 9], 2, |&x| (x >= 5) as usize);
/// assert_eq!(parts, vec![vec![1, 2], vec![5, 7, 9]]);
/// ```
pub fn partition_by<T, F>(items: &[T], num_classes: usize, class_of: F) -> Vec<Vec<T>>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    assert!(num_classes > 0, "partition_by needs at least one class");
    if items.len() < SEQ_CUTOFF {
        let mut out: Vec<Vec<T>> = (0..num_classes).map(|_| Vec::new()).collect();
        for x in items {
            let k = class_of(x);
            debug_assert!(k < num_classes, "class {k} out of range");
            out[k].push(*x);
        }
        return out;
    }
    // Pass 1: materialize the class of every element (exactly-once contract,
    // mirroring compact.rs) plus per-block per-class counts.
    let keys: Vec<u32> = par::map(items, |x| {
        let k = class_of(x);
        debug_assert!(k < num_classes, "class {k} out of range");
        k as u32
    });
    let block_counts: Vec<Vec<usize>> = par::map_chunks(&keys, BLOCK, |c| {
        let mut counts = vec![0usize; num_classes];
        for &k in c {
            counts[k as usize] += 1;
        }
        counts
    });
    // Per-class exclusive scan over blocks -> scatter offsets and totals.
    let nblocks = block_counts.len();
    let mut totals = vec![0usize; num_classes];
    let mut offsets = vec![0usize; nblocks * num_classes]; // [b * classes + k]
    for k in 0..num_classes {
        let col: Vec<usize> = block_counts.iter().map(|c| c[k]).collect();
        let (off, total) = scan::exclusive_scan(&col);
        for (b, &o) in off.iter().enumerate() {
            offsets[b * num_classes + k] = o;
        }
        totals[k] = total;
    }
    // Pass 2: scatter each block's elements into its class ranges.
    let mut out: Vec<Vec<T>> = totals.iter().map(|&t| Vec::with_capacity(t)).collect();
    let ptrs: Vec<SendPtr<T>> = out.iter_mut().map(|v| SendPtr(v.as_mut_ptr())).collect();
    par::for_chunks(&keys, BLOCK, |b, chunk| {
        let base = b * BLOCK;
        let mut cursor: Vec<usize> = offsets[b * num_classes..(b + 1) * num_classes].to_vec();
        for (i, &k) in chunk.iter().enumerate() {
            let k = k as usize;
            // SAFETY: block b writes the disjoint range
            // [offsets[b][k], offsets[b][k] + block_counts[b][k]) of class
            // k's buffer, inside its reserved capacity.
            unsafe { ptrs[k].get().add(cursor[k]).write(items[base + i]) };
            cursor[k] += 1;
        }
    });
    for (v, &t) in out.iter_mut().zip(&totals) {
        // SAFETY: exactly `t` slots of each class buffer were initialized.
        unsafe { v.set_len(t) };
    }
    out
}

/// Group `0..keys.len()` by `keys[i]` (each `< num_buckets`).
///
/// Returns `(offsets, items)` where `items[offsets[b]..offsets[b+1]]` are
/// the indices with key `b`, in ascending index order.
///
/// ```
/// let (off, items) = mis2_prim::bucket::bucket_by_key(3, &[2, 0, 1, 0]);
/// assert_eq!(off, vec![0, 2, 3, 4]);
/// assert_eq!(items, vec![1, 3, 2, 0]);
/// ```
pub fn bucket_by_key(num_buckets: usize, keys: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; num_buckets + 1];
    for &k in keys {
        debug_assert!((k as usize) < num_buckets, "key {k} out of range");
        counts[k as usize] += 1;
    }
    crate::scan::exclusive_scan_in_place(&mut counts);
    let offsets = counts;
    let mut cursor = offsets.clone();
    let mut items = vec![0u32; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        items[cursor[k as usize]] = i as u32;
        cursor[k as usize] += 1;
    }
    (offsets, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_preserves_order() {
        let keys = [1u32, 0, 1, 2, 0, 1];
        let (off, items) = bucket_by_key(3, &keys);
        assert_eq!(off, vec![0, 2, 5, 6]);
        assert_eq!(&items[0..2], &[1, 4]); // key 0, ascending
        assert_eq!(&items[2..5], &[0, 2, 5]); // key 1
        assert_eq!(&items[5..6], &[3]); // key 2
    }

    #[test]
    fn empty_input() {
        let (off, items) = bucket_by_key(4, &[]);
        assert_eq!(off, vec![0; 5]);
        assert!(items.is_empty());
    }

    #[test]
    fn empty_buckets_allowed() {
        let (off, items) = bucket_by_key(5, &[4, 4]);
        assert_eq!(off, vec![0, 0, 0, 0, 0, 2]);
        assert_eq!(items, vec![0, 1]);
    }

    #[test]
    fn single_bucket() {
        let keys = vec![0u32; 100];
        let (off, items) = bucket_by_key(1, &keys);
        assert_eq!(off, vec![0, 100]);
        assert_eq!(items, (0..100).collect::<Vec<u32>>());
    }

    fn seq_partition<T: Copy>(items: &[T], classes: usize, f: impl Fn(&T) -> usize) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..classes).map(|_| Vec::new()).collect();
        for x in items {
            out[f(x)].push(*x);
        }
        out
    }

    #[test]
    fn partition_small_matches_sequential() {
        let items: Vec<u64> = (0..1000).map(crate::hash::splitmix64).collect();
        let got = partition_by(&items, 4, |&x| (x % 4) as usize);
        assert_eq!(got, seq_partition(&items, 4, |&x| (x % 4) as usize));
    }

    #[test]
    fn partition_large_matches_sequential() {
        // Above SEQ_CUTOFF: exercises the blocked-count + scan + scatter path.
        let items: Vec<u64> = (0..200_000)
            .map(|i| crate::hash::splitmix64(i * 13))
            .collect();
        let f = |x: &u64| (*x % 3) as usize;
        let got = partition_by(&items, 3, f);
        assert_eq!(got, seq_partition(&items, 3, f));
    }

    #[test]
    fn partition_empty_and_skewed_classes() {
        let got = partition_by::<u32, _>(&[], 3, |_| 0);
        assert_eq!(got, vec![Vec::<u32>::new(); 3]);
        // All elements land in one class; the others stay empty.
        let items: Vec<u32> = (0..100_000).collect();
        let got = partition_by(&items, 5, |_| 2);
        assert!(got[0].is_empty() && got[1].is_empty() && got[3].is_empty() && got[4].is_empty());
        assert_eq!(got[2], items);
    }

    #[test]
    fn partition_deterministic_across_pool_sizes() {
        let items: Vec<u64> = (0..150_000)
            .map(|i| crate::hash::xorshift64_star(i + 1))
            .collect();
        let f = |x: &u64| (*x % 7 < 2) as usize + (*x % 31 == 0) as usize;
        let baseline = crate::pool::with_pool(1, || partition_by(&items, 3, f));
        for t in [2, 5, 8] {
            let got = crate::pool::with_pool(t, || partition_by(&items, 3, f));
            assert_eq!(got, baseline, "partition differs at {t} threads");
        }
    }

    #[test]
    fn partition_classifier_runs_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for n in [500usize, 100_000] {
            let items: Vec<u32> = (0..n as u32).collect();
            let calls = AtomicUsize::new(0);
            let got = partition_by(&items, 2, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                (x % 2) as usize
            });
            assert_eq!(calls.load(Ordering::Relaxed), n, "n = {n}");
            assert_eq!(got[0].len() + got[1].len(), n);
        }
    }
}
