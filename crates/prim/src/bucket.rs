//! Deterministic bucketing (counting sort by key).
//!
//! Several consumers group items by a small integer key — color classes
//! for multicolor Gauss-Seidel sweeps, cluster membership lists for
//! Algorithm 4, aggregate member lists for coarsening. This is the shared
//! stable counting sort: items keep their relative order within a bucket,
//! so every grouping built on it is deterministic.

/// Group `0..keys.len()` by `keys[i]` (each `< num_buckets`).
///
/// Returns `(offsets, items)` where `items[offsets[b]..offsets[b+1]]` are
/// the indices with key `b`, in ascending index order.
///
/// ```
/// let (off, items) = mis2_prim::bucket::bucket_by_key(3, &[2, 0, 1, 0]);
/// assert_eq!(off, vec![0, 2, 3, 4]);
/// assert_eq!(items, vec![1, 3, 2, 0]);
/// ```
pub fn bucket_by_key(num_buckets: usize, keys: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut counts = vec![0usize; num_buckets + 1];
    for &k in keys {
        debug_assert!((k as usize) < num_buckets, "key {k} out of range");
        counts[k as usize] += 1;
    }
    crate::scan::exclusive_scan_in_place(&mut counts);
    let offsets = counts;
    let mut cursor = offsets.clone();
    let mut items = vec![0u32; keys.len()];
    for (i, &k) in keys.iter().enumerate() {
        items[cursor[k as usize]] = i as u32;
        cursor[k as usize] += 1;
    }
    (offsets, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_preserves_order() {
        let keys = [1u32, 0, 1, 2, 0, 1];
        let (off, items) = bucket_by_key(3, &keys);
        assert_eq!(off, vec![0, 2, 5, 6]);
        assert_eq!(&items[0..2], &[1, 4]); // key 0, ascending
        assert_eq!(&items[2..5], &[0, 2, 5]); // key 1
        assert_eq!(&items[5..6], &[3]); // key 2
    }

    #[test]
    fn empty_input() {
        let (off, items) = bucket_by_key(4, &[]);
        assert_eq!(off, vec![0; 5]);
        assert!(items.is_empty());
    }

    #[test]
    fn empty_buckets_allowed() {
        let (off, items) = bucket_by_key(5, &[4, 4]);
        assert_eq!(off, vec![0, 0, 0, 0, 0, 2]);
        assert_eq!(items, vec![0, 1]);
    }

    #[test]
    fn single_bucket() {
        let keys = vec![0u32; 100];
        let (off, items) = bucket_by_key(1, &keys);
        assert_eq!(off, vec![0, 100]);
        assert_eq!(items, (0..100).collect::<Vec<u32>>());
    }
}
