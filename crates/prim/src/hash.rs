//! Marsaglia xorshift hash functions.
//!
//! The paper (Section V-A) derives a fresh pseudo-random priority for every
//! vertex in every iteration as
//!
//! ```text
//! h(iter, v) = f(f(iter) XOR f(v))
//! ```
//!
//! where `f` is either 64-bit **xorshift** or 64-bit **xorshift\***
//! (xorshift followed by a multiplicative/linear-congruential step), both due
//! to Marsaglia ("Xorshift RNGs", JSS 2003). Table I of the paper shows the
//! surprising result that plain xorshift is *worse than fixed priorities*
//! (its output is correlated across iterations, so dependency chains are not
//! broken), while xorshift\* converges in fewer iterations than either.
//!
//! These functions are pure: determinism of the whole MIS-2 algorithm rests
//! on priorities depending only on `(iter, v)`.

/// 64-bit xorshift (Marsaglia's `xorshift64` with triplet (13, 7, 17)).
///
/// Note `xorshift64(0) == 0`: zero is a fixed point of every xorshift.
/// Algorithm 1 tolerates this because packed tuples offset the vertex id by
/// one, so a zero priority can never collide with the `IN` sentinel.
#[inline]
pub fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// 64-bit xorshift\* : xorshift with triplet (12, 25, 27) followed by a
/// multiplication by the odd constant `0x2545F4914F6CDD1D`.
///
/// This is the hash used by the Kokkos Kernels implementation and by all
/// experiments in the paper after Section V-A.
#[inline]
pub fn xorshift64_star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// splitmix64: a high-quality 64-bit mixer, used for seeding workload
/// generators (never inside Algorithm 1 itself, which sticks to the paper's
/// xorshift family).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The paper's two-argument hash `h(a, b) = f(f(a) XOR f(b))` for a given
/// single-argument hash `f`.
#[inline]
pub fn hash2(f: fn(u64) -> u64, a: u64, b: u64) -> u64 {
    f(f(a) ^ f(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift64_zero_fixed_point() {
        assert_eq!(xorshift64(0), 0);
        assert_eq!(xorshift64_star(0), 0);
    }

    #[test]
    fn xorshift64_nonzero_changes() {
        for x in 1..1000u64 {
            assert_ne!(xorshift64(x), x, "xorshift should move {x}");
        }
    }

    #[test]
    fn xorshift64_star_known_values_stable() {
        // Pin outputs so accidental edits to the shift triplet or the
        // multiplier are caught (the exact constants are what the paper's
        // Table I iteration counts depend on). Reference values computed
        // step-by-step from Marsaglia's definition.
        let reference = |mut x: u64| {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for x in [1u64, 2, 0xDEAD_BEEF, u64::MAX, 42] {
            assert_eq!(xorshift64_star(x), reference(x));
        }
        // One fully-literal pin: x = 1 passes through the shifts unchanged
        // except x ^= x << 25, giving 0x2000001 ^ (0x2000001 >> 27) = 0x2000001,
        // then the multiply.
        assert_eq!(
            xorshift64_star(1),
            0x0200_0001u64.wrapping_mul(0x2545_F491_4F6C_DD1D)
        );
    }

    #[test]
    fn hash2_is_symmetric_in_xor_sense() {
        // f(a) ^ f(b) is symmetric, so h(a,b) == h(b,a).
        for a in 0..50u64 {
            for b in 0..50u64 {
                assert_eq!(hash2(xorshift64_star, a, b), hash2(xorshift64_star, b, a));
            }
        }
    }

    #[test]
    fn hash2_varies_with_iteration() {
        // Different iterations must yield different priorities for the same
        // vertex in the overwhelming majority of cases — this is what breaks
        // dependency chains (Section V-A).
        let v = 12345u64;
        let mut seen = std::collections::HashSet::new();
        for iter in 0..1000u64 {
            seen.insert(hash2(xorshift64_star, iter, v));
        }
        assert!(seen.len() > 990, "only {} distinct hashes", seen.len());
    }

    #[test]
    fn splitmix64_bijective_sample() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(splitmix64(x)));
        }
    }

    #[test]
    fn xorshift_star_spreads_low_bits() {
        // Consecutive inputs should not produce correlated high bits;
        // check the top byte takes many values over a small input range.
        let mut tops = std::collections::HashSet::new();
        for x in 1..256u64 {
            tops.insert(xorshift64_star(x) >> 56);
        }
        assert!(tops.len() > 100, "top byte only took {} values", tops.len());
    }
}
