//! Portable parallel execution layer — the workspace's single substrate for
//! data parallelism.
//!
//! The paper's central claim is *portability*: one expression of Algorithm 1
//! running unchanged on serial and parallel substrates (Kokkos backends in
//! the original; here, cargo features). Every hot loop in the workspace —
//! the Algorithm 1 phases in `mis2-core`, aggregation in `mis2-coarsen`,
//! the colorings in `mis2-color`, the multicolor Gauss-Seidel sweeps in
//! `mis2-solver` — calls through this module instead of a concrete
//! threading library, so swapping the backend never touches algorithm code.
//!
//! Two backends, selected at compile time by the `parallel` cargo feature:
//!
//! * **serial** (`--no-default-features`): every operation is a plain loop.
//!   No threads are ever created and no synchronization is performed.
//! * **threads** (default): operations split their index space into blocks
//!   drained by the **persistent worker pool** in [`crate::pool`] — parked
//!   OS threads woken per region through an epoch/condvar handshake, each
//!   claiming whole blocks from an atomic counter. No thread is spawned or
//!   torn down per region, so even the rapid back-to-back tiny regions of
//!   iterative solvers pay only a wake/park handshake. The team size
//!   honors [`crate::pool::with_pool`], which caps how many parked workers
//!   *participate* (not how many exist).
//!
//! ## Determinism contract
//!
//! Both backends produce **bitwise-identical results** for every operation
//! in this module, at every thread count:
//!
//! * maps and for-eachs write disjoint slots, so scheduling cannot reorder
//!   anything observable;
//! * reductions ([`map_reduce`], [`chunked_reduce`]) decompose the input
//!   into **fixed-size blocks independent of the thread count**, compute
//!   per-block partials in index order, and fold the partials sequentially
//!   in block order — the exact decomposition the serial backend uses, so
//!   even non-associative `f64` reductions match bit-for-bit;
//! * [`find_map_range`] always returns the *globally first* match.
//!
//! Nested parallel regions (a `par` call made from inside a worker) run
//! serially on the calling worker — same results, no oversubscription, no
//! deadlock on the single persistent team. A panic inside a region is
//! re-raised on the thread that opened it after the remaining blocks have
//! drained, and the pool's workers survive to serve later regions.

use std::ops::Range;

/// Fixed block size shared by every deterministic reduction in the
/// workspace (scans, compaction counts, f64 sums). Chosen once — never per
/// thread count — so partial results are bitwise-stable across pool sizes
/// and across the serial/threads backends.
pub const DET_BLOCK: usize = 1 << 13;

/// Below this many elements a parallel dispatch costs more than it saves.
const PAR_CUTOFF: usize = 2048;
/// Minimum elements per block for adaptive (order-insensitive) operations.
const MIN_GRAIN: usize = 256;

/// Index types the range-based operations accept (`u32` vertex ids, `usize`
/// row indices, `u64` counters).
pub trait ParIndex: Copy + Send + Sync {
    /// Convert from a `usize` offset.
    fn from_usize(i: usize) -> Self;
    /// Convert to a `usize` offset.
    fn to_usize(self) -> usize;
}

macro_rules! impl_par_index {
    ($($t:ty),*) => {$(
        impl ParIndex for $t {
            #[inline]
            fn from_usize(i: usize) -> Self {
                i as $t
            }
            #[inline]
            fn to_usize(self) -> usize {
                self as usize
            }
        }
    )*};
}
impl_par_index!(u32, u64, usize);

/// Raw-pointer wrapper so disjoint parallel writes into one buffer are
/// `Send + Sync`. The accessor keeps closures capturing the wrapper, not
/// the raw pointer field.
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Backends. `run_blocks(nblocks, body)` executes `body(b)` for every
// `b in 0..nblocks`, each exactly once; that is the entire backend surface.
// ---------------------------------------------------------------------------

#[cfg(feature = "parallel")]
mod backend {
    pub(super) fn is_nested() -> bool {
        crate::pool::in_region()
    }

    pub(super) fn run_blocks(nblocks: usize, body: &(dyn Fn(usize) + Sync)) {
        // run_region_on handles the whole fallback ladder (empty region,
        // team of one, nested call -> serial loop) so there is exactly one
        // entry point into the pool's sub-team dispatch.
        crate::pool::run_region_on(crate::pool::current_threads(), nblocks, body);
    }
}

#[cfg(not(feature = "parallel"))]
mod backend {
    pub(super) fn is_nested() -> bool {
        false
    }

    pub(super) fn run_blocks(nblocks: usize, body: &(dyn Fn(usize) + Sync)) {
        for b in 0..nblocks {
            body(b);
        }
    }
}

/// Whether the current thread is already inside a parallel region (nested
/// `par` calls run serially).
pub fn in_parallel_region() -> bool {
    backend::is_nested()
}

/// Adaptive block size for order-insensitive operations: enough blocks to
/// load-balance across the pool, but never tiny.
fn adaptive_block(n: usize) -> usize {
    let threads = crate::pool::current_threads().max(1);
    n.div_ceil(threads * 4).max(MIN_GRAIN)
}

#[inline]
fn run_ranges(n: usize, block: usize, body: impl Fn(usize, usize, usize) + Sync) {
    let block = block.max(1);
    let nblocks = n.div_ceil(block);
    backend::run_blocks(nblocks, &|b| {
        let lo = b * block;
        let hi = (lo + block).min(n);
        body(b, lo, hi);
    });
}

// ---------------------------------------------------------------------------
// Parallel for
// ---------------------------------------------------------------------------

/// Parallel for over an index range: `f(i)` for every `i in range`, each
/// exactly once.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let acc = AtomicU64::new(0);
/// mis2_prim::par::for_range(0u32..100, |i| {
///     acc.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(acc.into_inner(), 4950);
/// ```
pub fn for_range<I: ParIndex>(range: Range<I>, f: impl Fn(I) + Sync) {
    let start = range.start.to_usize();
    let n = range.end.to_usize().saturating_sub(start);
    if n < PAR_CUTOFF || backend::is_nested() {
        for i in 0..n {
            f(I::from_usize(start + i));
        }
        return;
    }
    run_ranges(n, adaptive_block(n), |_, lo, hi| {
        for i in lo..hi {
            f(I::from_usize(start + i));
        }
    });
}

/// Parallel for over a slice.
pub fn for_each<T: Sync>(items: &[T], f: impl Fn(&T) + Sync) {
    for_range(0..items.len(), |i| f(&items[i]));
}

/// Parallel for over a slice of *expensive* items: parallelizes whenever
/// more than `grain` items exist, with `grain` items per block.
///
/// [`for_each`] assumes items are cheap and serializes below a few
/// thousand elements; use this when each element is itself a large unit of
/// work (a cluster row-range in the multicolor Gauss-Seidel sweeps, a
/// matrix row block), passing the number of items worth one task — often
/// just 1.
pub fn for_each_grain<T: Sync>(items: &[T], grain: usize, f: impl Fn(&T) + Sync) {
    let n = items.len();
    if n <= grain.max(1) || backend::is_nested() {
        for x in items {
            f(x);
        }
        return;
    }
    run_ranges(n, grain, |_, lo, hi| {
        for x in &items[lo..hi] {
            f(x);
        }
    });
}

/// Parallel for over a slice with the element index.
pub fn for_each_indexed<T: Sync>(items: &[T], f: impl Fn(usize, &T) + Sync) {
    for_range(0..items.len(), |i| f(i, &items[i]));
}

/// Parallel for over a mutable slice (each element visited exactly once).
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync) {
    for_each_mut_indexed(items, |_, x| f(x));
}

/// Parallel for over a mutable slice with the element index.
pub fn for_each_mut_indexed<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    let n = items.len();
    if n < PAR_CUTOFF || backend::is_nested() {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
        return;
    }
    let ptr = SendPtr(items.as_mut_ptr());
    run_ranges(n, adaptive_block(n), |_, lo, hi| {
        for i in lo..hi {
            // SAFETY: blocks partition 0..n, so each index is visited by
            // exactly one worker; the SendPtr borrows `items` mutably.
            f(i, unsafe { &mut *ptr.get().add(i) });
        }
    });
}

// ---------------------------------------------------------------------------
// Parallel map
// ---------------------------------------------------------------------------

/// Parallel map over an index range into a fresh vector:
/// `out[i] = f(range.start + i)`.
///
/// ```
/// let sq = mis2_prim::par::map_range(0usize..5, |i| i * i);
/// assert_eq!(sq, vec![0, 1, 4, 9, 16]);
/// ```
pub fn map_range<I: ParIndex, U: Send>(range: Range<I>, f: impl Fn(I) -> U + Sync) -> Vec<U> {
    let start = range.start.to_usize();
    let n = range.end.to_usize().saturating_sub(start);
    if n < PAR_CUTOFF || backend::is_nested() {
        return (0..n).map(|i| f(I::from_usize(start + i))).collect();
    }
    let mut out: Vec<U> = Vec::with_capacity(n);
    let ptr = SendPtr(out.as_mut_ptr());
    run_ranges(n, adaptive_block(n), |_, lo, hi| {
        for i in lo..hi {
            // SAFETY: disjoint indices within capacity; every slot in 0..n
            // is written exactly once before set_len.
            unsafe { ptr.get().add(i).write(f(I::from_usize(start + i))) };
        }
    });
    // SAFETY: all n slots initialized above.
    unsafe { out.set_len(n) };
    out
}

/// Parallel map over a slice into a fresh vector.
pub fn map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    map_range(0..items.len(), |i| f(&items[i]))
}

/// Parallel map over a slice with the element index.
pub fn map_indexed<T: Sync, U: Send>(items: &[T], f: impl Fn(usize, &T) -> U + Sync) -> Vec<U> {
    map_range(0..items.len(), |i| f(i, &items[i]))
}

// ---------------------------------------------------------------------------
// Chunked operations (explicit, fixed block size — deterministic building
// blocks for scans, compaction and reductions)
// ---------------------------------------------------------------------------

/// Parallel for over fixed-size chunks of a slice; `f(b, chunk)` receives
/// the chunk index. The last chunk may be short.
pub fn for_chunks<T: Sync>(items: &[T], chunk: usize, f: impl Fn(usize, &[T]) + Sync) {
    run_ranges(items.len(), chunk, |b, lo, hi| f(b, &items[lo..hi]));
}

/// Parallel for over fixed-size mutable chunks of a slice.
pub fn for_chunks_mut<T: Send>(items: &mut [T], chunk: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    let n = items.len();
    let ptr = SendPtr(items.as_mut_ptr());
    run_ranges(n, chunk, |b, lo, hi| {
        // SAFETY: chunks [lo, hi) partition the slice; each is handed to
        // exactly one worker.
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(lo), hi - lo) };
        f(b, slice);
    });
}

/// Parallel map over fixed-size chunks: `out[b] = f(chunk_b)`. With a fixed
/// `chunk` the output is identical for every thread count and backend.
pub fn map_chunks<T: Sync, U: Send>(
    items: &[T],
    chunk: usize,
    f: impl Fn(&[T]) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let nblocks = n.div_ceil(chunk.max(1));
    map_range(0..nblocks, |b| {
        let lo = b * chunk;
        let hi = (lo + chunk).min(n);
        f(&items[lo..hi])
    })
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Deterministic parallel reduction: per-chunk partials (each computed
/// serially in index order) folded sequentially in chunk order. Because the
/// decomposition is a fixed `chunk` size, the result is bitwise-identical
/// for any thread count and backend — even for non-associative `f64` ops.
pub fn chunked_reduce<T: Sync, U: Send>(
    items: &[T],
    chunk: usize,
    map_chunk: impl Fn(&[T]) -> U + Sync,
    identity: U,
    combine: impl Fn(U, U) -> U,
) -> U {
    let n = items.len();
    let chunk = chunk.max(1);
    if n == 0 {
        return identity;
    }
    // One block, a nested context, or a single worker: still fold in the
    // same per-chunk structure so results match the parallel path exactly.
    if n <= chunk || backend::is_nested() || crate::pool::current_threads() <= 1 {
        return items
            .chunks(chunk)
            .fold(identity, |acc, c| combine(acc, map_chunk(c)));
    }
    let partials = map_chunks(items, chunk, map_chunk);
    partials.into_iter().fold(identity, combine)
}

/// Deterministic map + reduce over a slice using the workspace-wide
/// [`DET_BLOCK`] decomposition.
pub fn map_reduce<T: Sync, U: Send + Sync + Clone>(
    items: &[T],
    map: impl Fn(&T) -> U + Sync,
    identity: U,
    combine: impl Fn(U, U) -> U + Sync,
) -> U {
    chunked_reduce(
        items,
        DET_BLOCK,
        |c| c.iter().map(&map).fold(identity.clone(), &combine),
        identity.clone(),
        &combine,
    )
}

/// Deterministic map + reduce over an index range: fixed [`DET_BLOCK`]
/// sub-ranges folded serially in index order, partials folded in block
/// order — bitwise-identical for any thread count and backend.
pub fn map_reduce_range<I: ParIndex, U: Send + Sync + Clone>(
    range: Range<I>,
    map: impl Fn(I) -> U + Sync,
    identity: U,
    combine: impl Fn(U, U) -> U + Sync,
) -> U {
    let start = range.start.to_usize();
    let n = range.end.to_usize().saturating_sub(start);
    if n == 0 {
        return identity;
    }
    let nblocks = n.div_ceil(DET_BLOCK);
    let block_partial = |b: usize| {
        let lo = start + b * DET_BLOCK;
        let hi = (lo + DET_BLOCK).min(start + n);
        (lo..hi)
            .map(|i| map(I::from_usize(i)))
            .fold(identity.clone(), &combine)
    };
    if nblocks == 1 || backend::is_nested() || crate::pool::current_threads() <= 1 {
        return (0..nblocks).fold(identity.clone(), |acc, b| combine(acc, block_partial(b)));
    }
    let partials = map_range(0..nblocks, block_partial);
    partials.into_iter().fold(identity, combine)
}

/// Number of elements satisfying `pred` (deterministic, parallel).
pub fn count<T: Sync>(items: &[T], pred: impl Fn(&T) -> bool + Sync) -> usize {
    chunked_reduce(
        items,
        DET_BLOCK,
        |c| c.iter().filter(|x| pred(x)).count(),
        0usize,
        |a, b| a + b,
    )
}

// ---------------------------------------------------------------------------
// Searches
// ---------------------------------------------------------------------------

/// Parallel first-match search: returns `f(i)` for the smallest `i` with
/// `f(i).is_some()`, or `None`. Deterministic on both backends: the
/// *globally first* match is returned, never an arbitrary one.
pub fn find_map_range<I: ParIndex, U: Send>(
    range: Range<I>,
    f: impl Fn(I) -> Option<U> + Sync,
) -> Option<U> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let start = range.start.to_usize();
    let n = range.end.to_usize().saturating_sub(start);
    if n < PAR_CUTOFF || backend::is_nested() || crate::pool::current_threads() <= 1 {
        return (0..n).find_map(|i| f(I::from_usize(start + i)));
    }
    let block = adaptive_block(n);
    // Lowest block index that produced a match so far; blocks above it can
    // be skipped entirely (their match could never win).
    let best_block = AtomicUsize::new(usize::MAX);
    let best: Mutex<Option<(usize, U)>> = Mutex::new(None);
    run_ranges(n, block, |b, lo, hi| {
        if b >= best_block.load(Ordering::Relaxed) {
            return;
        }
        for i in lo..hi {
            if let Some(u) = f(I::from_usize(start + i)) {
                let mut guard = best.lock().unwrap();
                if b < best_block.load(Ordering::Relaxed) {
                    best_block.store(b, Ordering::Relaxed);
                    *guard = Some((b, u));
                }
                return;
            }
        }
    });
    best.into_inner().unwrap().map(|(_, u)| u)
}

/// Parallel universal quantifier over an index range.
pub fn all_range<I: ParIndex>(range: Range<I>, pred: impl Fn(I) -> bool + Sync) -> bool {
    find_map_range(range, |i| (!pred(i)).then_some(())).is_none()
}

/// Parallel existential quantifier over an index range.
pub fn any_range<I: ParIndex>(range: Range<I>, pred: impl Fn(I) -> bool + Sync) -> bool {
    find_map_range(range, |i| pred(i).then_some(())).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_range_visits_every_index_once() {
        for n in [0usize, 1, 100, PAR_CUTOFF + 1234] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            for_range(0..n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n = {n}"
            );
        }
    }

    #[test]
    fn for_range_u32_offsets() {
        let n = 10_000u32;
        let acc = AtomicUsize::new(0);
        for_range(100u32..n, |i| {
            acc.fetch_add(i as usize, Ordering::Relaxed);
        });
        let want: usize = (100..n as usize).sum();
        assert_eq!(acc.into_inner(), want);
    }

    #[test]
    fn map_range_matches_sequential() {
        let n = PAR_CUTOFF * 3 + 17;
        let got = map_range(0..n, |i| crate::hash::splitmix64(i as u64));
        let want: Vec<u64> = (0..n).map(|i| crate::hash::splitmix64(i as u64)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_over_slice() {
        let items: Vec<u32> = (0..50_000).collect();
        let got = map(&items, |&x| x * 2);
        assert!(got.iter().enumerate().all(|(i, &v)| v == 2 * i as u32));
    }

    #[test]
    fn map_indexed_sees_right_elements() {
        let items: Vec<u32> = (0..30_000).rev().collect();
        let got = map_indexed(&items, |i, &x| i as u32 + x);
        assert!(got.iter().all(|&v| v == items.len() as u32 - 1));
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let mut items: Vec<u64> = (0..40_000).collect();
        for_each_mut_indexed(&mut items, |i, x| *x += i as u64);
        assert!(items.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn count_matches_sequential() {
        let items: Vec<u64> = (0..123_457).map(crate::hash::splitmix64).collect();
        let got = count(&items, |&x| x % 5 == 0);
        let want = items.iter().filter(|&&x| x % 5 == 0).count();
        assert_eq!(got, want);
    }

    #[test]
    fn chunked_reduce_f64_bitwise_matches_serial_fold() {
        let data: Vec<f64> = (0..100_000)
            .map(|i| (crate::hash::splitmix64(i) as f64) / 1e15)
            .collect();
        let got = chunked_reduce(
            &data,
            DET_BLOCK,
            |c| c.iter().sum::<f64>(),
            0.0,
            |a, b| a + b,
        );
        let want = data
            .chunks(DET_BLOCK)
            .fold(0.0f64, |acc, c| acc + c.iter().sum::<f64>());
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn map_reduce_max() {
        let items: Vec<u64> = (0..77_777)
            .map(|i| crate::hash::xorshift64_star(i + 1))
            .collect();
        let got = map_reduce(&items, |&x| x, 0u64, |a, b| a.max(b));
        assert_eq!(got, *items.iter().max().unwrap());
    }

    #[test]
    fn find_map_returns_globally_first_match() {
        let n = 500_000usize;
        // Matches at several positions; the first is what must come back.
        let positions = [123_456usize, 200_000, 499_999];
        let got = find_map_range(0..n, |i| positions.contains(&i).then_some(i));
        assert_eq!(got, Some(123_456));
        let none = find_map_range(0..n, |_| Option::<usize>::None);
        assert_eq!(none, None);
    }

    #[test]
    fn all_and_any() {
        let n = 100_000usize;
        assert!(all_range(0..n, |_| true));
        assert!(!all_range(0..n, |i| i != 99_999));
        assert!(any_range(0..n, |i| i == 99_999));
        assert!(!any_range(0..n, |_| false));
    }

    #[test]
    fn chunks_partition_exactly() {
        let items: Vec<u32> = (0..100_001).collect();
        let sums = map_chunks(&items, 1 << 10, |c| {
            c.iter().map(|&x| x as u64).sum::<u64>()
        });
        assert_eq!(sums.len(), items.len().div_ceil(1 << 10));
        let total: u64 = sums.iter().sum();
        assert_eq!(total, 100_000u64 * 100_001 / 2);
    }

    #[test]
    fn for_chunks_mut_sees_disjoint_chunks() {
        let mut items = vec![0u32; 50_000];
        for_chunks_mut(&mut items, 777, |b, chunk| {
            for x in chunk.iter_mut() {
                *x = b as u32;
            }
        });
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, (i / 777) as u32);
        }
    }

    #[test]
    fn nested_calls_run_serially_and_correctly() {
        let n = 20_000usize;
        let outer: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for_range(0..n, |i| {
            // Nested par call from inside a region: must still visit
            // everything exactly once.
            let s = count(&[1u8, 2, 3, 4, 5], |&x| x % 2 == 1);
            outer[i].fetch_add(s, Ordering::Relaxed);
        });
        assert!(outer.iter().all(|h| h.load(Ordering::Relaxed) == 3));
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let n = 300_000usize;
        let baseline = crate::pool::with_pool(1, || {
            map_range(0..n, |i| crate::hash::splitmix64(i as u64 * 31))
        });
        for t in [2, 3, 8] {
            let got = crate::pool::with_pool(t, || {
                map_range(0..n, |i| crate::hash::splitmix64(i as u64 * 31))
            });
            assert_eq!(got, baseline, "map differs at {t} threads");
        }
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let base_sum = crate::pool::with_pool(1, || {
            chunked_reduce(
                &data,
                DET_BLOCK,
                |c| c.iter().sum::<f64>(),
                0.0,
                |a, b| a + b,
            )
        });
        for t in [2, 5] {
            let got = crate::pool::with_pool(t, || {
                chunked_reduce(
                    &data,
                    DET_BLOCK,
                    |c| c.iter().sum::<f64>(),
                    0.0,
                    |a, b| a + b,
                )
            });
            assert_eq!(
                got.to_bits(),
                base_sum.to_bits(),
                "sum differs at {t} threads"
            );
        }
    }
}
