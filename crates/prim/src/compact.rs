//! Order-preserving parallel stream compaction.
//!
//! Algorithm 1 maintains two worklists and filters them every iteration
//! (lines 33-34 of the paper's listing): `worklist1` keeps the undecided
//! vertices and `worklist2` keeps the vertices whose column status is not
//! yet permanently `OUT`. The paper performs this with a parallel prefix sum
//! ("scan"); these helpers are the reusable Rust equivalent.
//!
//! **Contract:** the predicate/mapper is invoked **exactly once per
//! element** (in unspecified order, possibly concurrently). Callers like
//! the speculative colorings pass predicates with side effects and
//! non-repeatable (racy atomic) reads, so the implementation materializes
//! the per-element decision in a single pass and compacts from the
//! materialized flags — never by re-evaluating the closure. (An earlier
//! version re-evaluated the predicate in the write pass; combined with a
//! racy predicate that could leave uninitialized slots in the output.)

use crate::par;

/// Fixed block size (thread-count independent for determinism).
const BLOCK: usize = par::DET_BLOCK;
/// Below this length a sequential filter is faster.
const SEQ_CUTOFF: usize = 1 << 14;

/// Raw-pointer wrapper so disjoint parallel writes into one buffer pass Send.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so 2021-edition closures
    /// capture the `Sync` wrapper, not the raw pointer field.
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Keep the elements of `input` satisfying `pred`, preserving order.
/// `pred` runs exactly once per element.
///
/// ```
/// let evens = mis2_prim::compact::par_filter(&[1u32, 2, 3, 4], |&x| x % 2 == 0);
/// assert_eq!(evens, vec![2, 4]);
/// ```
pub fn par_filter<T, F>(input: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if input.len() < SEQ_CUTOFF {
        return input.iter().filter(|x| pred(x)).copied().collect();
    }
    let keep: Vec<bool> = par::map(input, |x| pred(x));
    compact_by_flags(input, &keep)
}

/// Indices `i` with `pred(&input[i])`, in increasing order. `pred` runs
/// exactly once per element.
pub fn par_filter_indices<T, F>(input: &[T], pred: F) -> Vec<u32>
where
    T: Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if input.len() < SEQ_CUTOFF {
        return input
            .iter()
            .enumerate()
            .filter(|(_, x)| pred(x))
            .map(|(i, _)| i as u32)
            .collect();
    }
    let keep: Vec<bool> = par::map(input, |x| pred(x));
    let counts: Vec<usize> = par::map_chunks(&keep, BLOCK, |c| c.iter().filter(|&&k| k).count());
    let (offsets, total) = crate::scan::exclusive_scan(&counts);
    let mut out: Vec<u32> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    par::for_chunks(&keep, BLOCK, |b, chunk| {
        let mut w = offsets[b];
        let base = b * BLOCK;
        for (i, &k) in chunk.iter().enumerate() {
            if k {
                // SAFETY: each block writes the disjoint range
                // [offsets[b], offsets[b] + counts[b]) inside capacity.
                unsafe { ptr.get().add(w).write((base + i) as u32) };
                w += 1;
            }
        }
    });
    // SAFETY: exactly `total` slots were initialized above.
    unsafe { out.set_len(total) };
    out
}

/// Parallel filter-map, preserving input order. `f` runs exactly once per
/// element.
pub fn par_map_filter<T, U, F>(input: &[T], f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Send + Sync,
{
    if input.len() < SEQ_CUTOFF {
        return input.iter().filter_map(&f).collect();
    }
    let vals: Vec<Option<U>> = par::map(input, |x| f(x));
    let counts: Vec<usize> =
        par::map_chunks(&vals, BLOCK, |c| c.iter().filter(|v| v.is_some()).count());
    let (offsets, total) = crate::scan::exclusive_scan(&counts);
    let mut out: Vec<U> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    par::for_chunks(&vals, BLOCK, |b, chunk| {
        for (w, u) in (offsets[b]..).zip(chunk.iter().flatten()) {
            // SAFETY: disjoint ranges per block, within capacity.
            unsafe { ptr.get().add(w).write(*u) };
        }
    });
    // SAFETY: exactly `total` slots were initialized above.
    unsafe { out.set_len(total) };
    out
}

/// Compact `input` keeping positions where `keep` is true (both length n).
fn compact_by_flags<T: Copy + Send + Sync>(input: &[T], keep: &[bool]) -> Vec<T> {
    debug_assert_eq!(input.len(), keep.len());
    let counts: Vec<usize> = par::map_chunks(keep, BLOCK, |c| c.iter().filter(|&&k| k).count());
    let (offsets, total) = crate::scan::exclusive_scan(&counts);
    let mut out: Vec<T> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    par::for_chunks(keep, BLOCK, |b, kc| {
        let lo = b * BLOCK;
        let ic = &input[lo..lo + kc.len()];
        let mut w = offsets[b];
        for (x, &k) in ic.iter().zip(kc) {
            if k {
                // SAFETY: disjoint ranges per block, within capacity.
                unsafe { ptr.get().add(w).write(*x) };
                w += 1;
            }
        }
    });
    // SAFETY: exactly `total` slots were initialized above.
    unsafe { out.set_len(total) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input() {
        let out = par_filter::<u32, _>(&[], |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn keeps_all() {
        let input: Vec<u32> = (0..100_000).collect();
        assert_eq!(par_filter(&input, |_| true), input);
    }

    #[test]
    fn drops_all() {
        let input: Vec<u32> = (0..100_000).collect();
        assert!(par_filter(&input, |_| false).is_empty());
    }

    #[test]
    fn matches_sequential_filter() {
        let input: Vec<u64> = (0..200_000).map(crate::hash::splitmix64).collect();
        let got = par_filter(&input, |&x| x % 3 == 0);
        let want: Vec<u64> = input.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn indices_match_sequential() {
        let input: Vec<u64> = (0..150_000)
            .map(|i| crate::hash::xorshift64_star(i + 1))
            .collect();
        let got = par_filter_indices(&input, |&x| x % 7 < 3);
        let want: Vec<u32> = input
            .iter()
            .enumerate()
            .filter(|(_, &x)| x % 7 < 3)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_filter_matches_sequential() {
        let input: Vec<u32> = (0..100_000).collect();
        let got = par_map_filter(&input, |&x| (x % 5 == 0).then_some(x * 2));
        let want: Vec<u32> = input
            .iter()
            .filter(|&&x| x % 5 == 0)
            .map(|&x| x * 2)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let input: Vec<u64> = (0..300_000)
            .map(|i| crate::hash::splitmix64(i * 17))
            .collect();
        let baseline = crate::pool::with_pool(1, || par_filter(&input, |&x| x & 1 == 0));
        for t in [2, 4, 7] {
            let got = crate::pool::with_pool(t, || par_filter(&input, |&x| x & 1 == 0));
            assert_eq!(got, baseline, "compaction differs at {t} threads");
        }
    }

    #[test]
    fn predicate_runs_exactly_once_per_element() {
        // Regression test for the speculative-coloring corruption: a
        // side-effecting predicate must be evaluated exactly once per
        // element, on both the sequential and the parallel path.
        for n in [1000usize, 200_000] {
            let input: Vec<u32> = (0..n as u32).collect();
            let calls = AtomicUsize::new(0);
            let out = par_filter(&input, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x % 2 == 0
            });
            assert_eq!(calls.load(Ordering::Relaxed), n, "n = {n}");
            assert_eq!(out.len(), n.div_ceil(2));
        }
    }

    #[test]
    fn non_repeatable_predicate_still_yields_valid_output() {
        // A predicate whose answer would *change* between evaluations (it
        // flips a cell per call) must still produce output drawn only from
        // the input, never uninitialized memory.
        let n = 200_000;
        let input: Vec<u32> = (0..n as u32).collect();
        let state: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let out = par_filter(&input, |&x| {
            let prev = state[x as usize].fetch_add(1, Ordering::Relaxed);
            prev == 0 && x % 3 == 0
        });
        let want: Vec<u32> = (0..n as u32).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn mapper_runs_exactly_once_per_element() {
        let n = 150_000;
        let input: Vec<u32> = (0..n as u32).collect();
        let calls = AtomicUsize::new(0);
        let out = par_map_filter(&input, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            (x % 4 == 0).then_some(x)
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n / 4);
    }

    #[test]
    fn indices_predicate_runs_once() {
        let n = 150_000;
        let input: Vec<u32> = (0..n as u32).collect();
        let calls = AtomicUsize::new(0);
        let out = par_filter_indices(&input, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x % 10 == 0
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n / 10);
    }
}
