//! # mis2-prim — parallel primitives substrate
//!
//! Low-level building blocks shared by every other crate in the workspace:
//!
//! * [`par`] — the portable execution layer: parallel for/map/reduce with a
//!   serial backend and a threaded backend selected by the `parallel` cargo
//!   feature, bitwise-identical results on both. Every algorithm crate
//!   expresses its parallelism through this module — the Rust analogue of
//!   the paper's Kokkos execution-space portability.
//! * [`hash`] — the Marsaglia xorshift family of hash functions used by the
//!   paper's Algorithm 1 to derive fresh pseudo-random priorities each
//!   iteration (Section V-A of the paper), plus splitmix64 for seeding.
//! * [`scan`] — deterministic parallel prefix sums ("scan"). The paper uses
//!   Kokkos' `parallel_scan` to compact worklists (Section V-B); this module
//!   is the Rust equivalent with identical output for any thread count.
//! * [`compact`] — order-preserving parallel stream compaction (filter)
//!   built on the scan, used to maintain the two worklists of Algorithm 1.
//! * [`bucket`] — stable counting sort by small integer key (color sets,
//!   cluster membership, aggregate members) and the order-preserving
//!   parallel multi-way partition behind the MIS-2 engine's degree-bucketed
//!   dispatch.
//! * [`reduce`] — deterministic parallel reductions (sums, min/max) whose
//!   results do not depend on the number of worker threads.
//! * [`pool`] — the lazily initialized persistent worker pool behind the
//!   threaded backend (parked OS threads woken per region), plus helpers
//!   to run closures with the team capped to a fixed size (for the
//!   strong-scaling experiments of Figures 4 and 5).
//! * [`timer`] — wall-clock timing and sample statistics used by the
//!   benchmark harness.
//!
//! Everything in this crate is deterministic: given the same inputs, the
//! same outputs are produced regardless of thread count or scheduling.

pub mod bucket;
pub mod compact;
pub mod hash;
pub mod par;
pub mod pool;
pub mod ptr;
pub mod reduce;
pub mod scan;
pub mod timer;

pub use bucket::{bucket_by_key, partition_by};
pub use compact::{par_filter, par_filter_indices, par_map_filter};
pub use hash::{hash2, splitmix64, xorshift64, xorshift64_star};
pub use pool::{
    contended_regions, max_threads, run_region_on, spawned_workers, with_pool, MAX_TEAM,
};
pub use ptr::SharedMut;
pub use reduce::{det_max, det_min, det_sum_f64, det_sum_usize};
pub use scan::{exclusive_scan, exclusive_scan_in_place, inclusive_scan};
pub use timer::{geometric_mean, SampleStats, Timer};
