//! Shared mutable slice for disjoint parallel scatter writes.
//!
//! Algorithm 1's phases are parallel maps that write each vertex's slot
//! exactly once (`T[v]` in Refresh Row / Decide, `M[v]` in Refresh Column)
//! while iterating over a *worklist* of vertex ids, so the write indices are
//! disjoint but not expressible as a mutable iteration over the array. This
//! wrapper makes the (safe-in-aggregate) pattern explicit and keeps every
//! `unsafe` block small and auditable.

use std::marker::PhantomData;

/// A `Send + Sync` view over a mutable slice allowing indexed writes from
/// multiple threads. Callers must guarantee no two threads write the same
/// index during one parallel region (reads of slots written in the same
/// region are likewise forbidden).
pub struct SharedMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedMut<'_, T> {}

impl<'a, T> SharedMut<'a, T> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` during the same parallel
    /// region. `index` must be `< len()` (checked with a debug assertion).
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Read the value at `index`.
    ///
    /// # Safety
    /// No other thread may write `index` during the same parallel region.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        unsafe { self.ptr.add(index).read() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn disjoint_parallel_writes() {
        let mut data = vec![0u64; 10_000];
        let idx: Vec<usize> = (0..10_000).step_by(3).collect();
        {
            let w = SharedMut::new(&mut data);
            par::for_each(&idx, |&i| unsafe { w.write(i, i as u64 * 2) });
        }
        for i in 0..10_000 {
            let want = if i % 3 == 0 { i as u64 * 2 } else { 0 };
            assert_eq!(data[i], want, "slot {i}");
        }
    }

    #[test]
    fn read_back_previous_region() {
        let mut data: Vec<u32> = (0..100).collect();
        let w = SharedMut::new(&mut data);
        let sum: u32 = par::map_range(0..100usize, |i| unsafe { w.read(i) })
            .into_iter()
            .sum();
        assert_eq!(sum, 4950);
        assert_eq!(w.len(), 100);
        assert!(!w.is_empty());
    }
}
