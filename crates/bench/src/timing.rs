//! Timing utilities for the harness: repeated-trial measurement and a
//! preconditioner wrapper that accumulates apply time (for the Table VI
//! "Apply" columns).

use mis2_solver::Preconditioner;
use std::sync::atomic::{AtomicU64, Ordering};

/// Median-of-trials milliseconds for `f` (after one warmup run).
pub fn time_ms<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples = mis2_prim::timer::time_trials(1, trials.max(1), &mut f);
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Mean-of-trials milliseconds (the paper's Table II averages 100 trials).
pub fn mean_ms<R>(trials: usize, mut f: impl FnMut() -> R) -> f64 {
    let samples = mis2_prim::timer::time_trials(1, trials.max(1), &mut f);
    mis2_prim::timer::SampleStats::from_samples(&samples).mean
}

/// Wraps a preconditioner and accumulates total apply wall time.
pub struct TimedPrecond<'a> {
    inner: &'a dyn Preconditioner,
    nanos: AtomicU64,
    applies: AtomicU64,
}

impl<'a> TimedPrecond<'a> {
    pub fn new(inner: &'a dyn Preconditioner) -> Self {
        TimedPrecond {
            inner,
            nanos: AtomicU64::new(0),
            applies: AtomicU64::new(0),
        }
    }

    /// Total seconds spent inside `apply`.
    pub fn apply_seconds(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Number of applications.
    pub fn applies(&self) -> u64 {
        self.applies.load(Ordering::Relaxed)
    }
}

impl Preconditioner for TimedPrecond<'_> {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let t = std::time::Instant::now();
        self.inner.apply(r, z);
        self.nanos
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.applies.fetch_add(1, Ordering::Relaxed);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_solver::Identity;

    #[test]
    fn timed_precond_counts() {
        let tp = TimedPrecond::new(&Identity);
        let r = vec![1.0; 100];
        let mut z = vec![0.0; 100];
        tp.apply(&r, &mut z);
        tp.apply(&r, &mut z);
        assert_eq!(tp.applies(), 2);
        assert!(tp.apply_seconds() >= 0.0);
        assert_eq!(z, r);
    }

    #[test]
    fn median_timing_positive() {
        let ms = time_ms(3, || (0..10_000u64).sum::<u64>());
        assert!(ms >= 0.0);
    }
}
