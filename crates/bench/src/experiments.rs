//! One function per table/figure of the paper's evaluation (Section VI).
//!
//! Every function returns a [`Table`] whose rows mirror the paper's
//! artifact; EXPERIMENTS.md records a paper-vs-measured comparison for each.

use crate::tables::{fmt_ms, fmt_x, Table};
use crate::timing::{mean_ms, time_ms, TimedPrecond};
use crate::RunOpts;
use mis2_coarsen::AggScheme;
use mis2_core::{bell_mis2, mis2, mis2_with_config, Mis2Config, PriorityScheme};
use mis2_graph::{gen, suite, CsrGraph, Scale};
use mis2_prim::pool::with_pool;
use mis2_prim::timer::geometric_mean;
use mis2_solver::{gmres, pcg, AmgConfig, AmgHierarchy, ClusterMcSgs, PointMcSgs, SolveOpts};

/// Build all suite graphs once (names in Table II order).
fn suite_graphs(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    suite::build_all(scale)
}

// ---------------------------------------------------------------------------
// Table I — MIS-2 iteration counts for three priority schemes
// ---------------------------------------------------------------------------

/// Table I: iteration counts for Fixed / Xor / Xor\* priorities.
pub fn table1(opts: &RunOpts) -> Table {
    let mut t = Table::new(
        "Table I — MIS-2 iteration counts for three random priority methods",
        &["Matrix", "Fixed", "Xor Hash", "Xor* Hash"],
    );
    for (name, g) in suite_graphs(opts.scale) {
        let iters = |p: PriorityScheme| {
            mis2_with_config(
                &g,
                &Mis2Config {
                    priorities: p,
                    ..Default::default()
                },
            )
            .iterations
            .to_string()
        };
        t.row(vec![
            name.to_string(),
            iters(PriorityScheme::Fixed),
            iters(PriorityScheme::XorHash),
            iters(PriorityScheme::XorStar),
        ]);
    }
    t.note("Paper (V100, full-size graphs): Fixed 11-14, Xor 9-39, Xor* 8-12 iterations.");
    t.note("Expected shape: Xor* <= Fixed << Xor on most matrices.");
    t
}

// ---------------------------------------------------------------------------
// Table II — summary statistics and mean MIS-2 times
// ---------------------------------------------------------------------------

/// Table II: suite statistics and mean Algorithm 1 times per thread count.
pub fn table2(opts: &RunOpts) -> Table {
    let threads = opts.thread_counts();
    let mut headers: Vec<String> = vec![
        "Matrix".into(),
        "|V| (x1e6)".into(),
        "|E| (x1e6)".into(),
        "Avg deg".into(),
        "Max deg".into(),
    ];
    for &n in &threads {
        headers.push(format!("{n}T (ms)"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Table II — suite statistics and mean MIS-2 run times",
        &hdr_refs,
    );
    for (name, g) in suite_graphs(opts.scale) {
        let s = g.stats();
        let mut row = vec![
            name.to_string(),
            format!("{:.3}", s.num_vertices as f64 / 1e6),
            format!("{:.3}", s.num_directed_edges as f64 / 1e6),
            format!("{:.2}", s.avg_degree),
            s.max_degree.to_string(),
        ];
        for &n in &threads {
            let ms = with_pool(n, || mean_ms(opts.trials, || mis2(&g)));
            row.push(fmt_ms(ms));
        }
        t.row(row);
    }
    t.note(format!(
        "Mean of {} trials. Paper architectures (V100/MI100/Skylake-48T/TX2-56T) are \
         replaced by host-CPU thread profiles; see DESIGN.md §5.",
        opts.trials
    ));
    t
}

// ---------------------------------------------------------------------------
// Table III — structured-problem scaling
// ---------------------------------------------------------------------------

/// Table III: MIS-2 size and iteration count for varying structured sizes.
pub fn table3(opts: &RunOpts) -> Table {
    let d = |x: usize| if opts.scale == Scale::Tiny { x / 2 } else { x };
    let elasticity = [(30, 30, 30), (60, 30, 30), (60, 60, 30), (60, 60, 60)];
    let laplace = [(50, 50, 50), (100, 50, 50), (100, 100, 50), (100, 100, 100)];
    let mut t = Table::new(
        "Table III — MIS-2 size and iteration count, structured problems",
        &["Problem", "|V|", "|MIS-2|", "MIS-2 frac", "Iters"],
    );
    for (nx, ny, nz) in elasticity {
        let g = gen::elasticity3d(d(nx), d(ny), d(nz), 3);
        let r = mis2(&g);
        t.row(vec![
            format!("Elasticity {}x{}x{}", d(nx), d(ny), d(nz)),
            g.num_vertices().to_string(),
            r.size().to_string(),
            format!("{:.2}%", 100.0 * r.size() as f64 / g.num_vertices() as f64),
            r.iterations.to_string(),
        ]);
    }
    for (nx, ny, nz) in laplace {
        let g = gen::laplace3d(d(nx), d(ny), d(nz));
        let r = mis2(&g);
        t.row(vec![
            format!("Laplace {}x{}x{}", d(nx), d(ny), d(nz)),
            g.num_vertices().to_string(),
            r.size().to_string(),
            format!("{:.2}%", 100.0 * r.size() as f64 / g.num_vertices() as f64),
            r.iterations.to_string(),
        ]);
    }
    t.note("Paper: ~0.7% of vertices for Elasticity (deg 81), ~9% for Laplace (deg 7);");
    t.note("iterations grow by 1-2 when the grid grows 4-8x (expected O(log V)).");
    t
}

// ---------------------------------------------------------------------------
// Figure 2 — cumulative speedup of the four optimizations
// ---------------------------------------------------------------------------

/// Figure 2: the optimization ladder, cumulative speedups over the Bell
/// baseline.
pub fn fig2(opts: &RunOpts) -> Table {
    let ladder = Mis2Config::ladder();
    let mut headers: Vec<String> = vec!["Matrix".into(), "Bell base (ms)".into()];
    for (label, _) in ladder.iter().skip(1) {
        headers.push(label.to_string());
    }
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 2 — cumulative speedups from the four optimizations",
        &hdr_refs,
    );
    let mut per_step_speedups: Vec<Vec<f64>> = vec![Vec::new(); ladder.len() - 1];
    for (name, g) in suite_graphs(opts.scale) {
        let base_ms = time_ms(opts.trials, || bell_mis2(&g, 0));
        let mut row = vec![name.to_string(), fmt_ms(base_ms)];
        for (k, (_, cfg)) in ladder.iter().skip(1).enumerate() {
            let ms = time_ms(opts.trials, || mis2_with_config(&g, cfg));
            let speedup = base_ms / ms.max(1e-9);
            per_step_speedups[k].push(speedup);
            row.push(fmt_x(speedup));
        }
        t.row(row);
    }
    let mut geo = vec!["geomean".to_string(), String::new()];
    for s in per_step_speedups.iter().skip(1) {
        geo.push(fmt_x(geometric_mean(s)));
    }
    geo.insert(2, fmt_x(geometric_mean(&per_step_speedups[0])));
    geo.truncate(headers.len());
    t.row(geo);
    t.note("Each column adds one optimization; values are speedup vs our Bell (CUSP) baseline.");
    t.note(
        "Paper (V100): priorities 1.28x, worklists 2.55x, packing 1.72x, SIMD 1.37x, total ~8.97x.",
    );
    t.note("On CPU the SIMD column ~1x for |E|/|V| < 16 (heuristic disables it), matching the paper's note.");
    t
}

// ---------------------------------------------------------------------------
// Figure 3 — bandwidth efficiency profiles
// ---------------------------------------------------------------------------

/// Figure 3: bandwidth-normalized efficiency across thread-count
/// "device profiles".
pub fn fig3(opts: &RunOpts) -> Table {
    let threads = opts.thread_counts();
    let bws: Vec<crate::bandwidth::Bandwidth> = threads
        .iter()
        .map(|&n| crate::bandwidth::measure_default(n))
        .collect();
    let mut headers = vec!["Matrix".to_string()];
    for bw in &bws {
        headers.push(format!("{}T eff", bw.threads));
    }
    headers.push("best profile".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 3 — bandwidth efficiency profile (MIS-2 instances/s per GB/s)",
        &hdr_refs,
    );
    for (name, g) in suite_graphs(opts.scale) {
        let mut effs = Vec::new();
        for (k, &n) in threads.iter().enumerate() {
            let ms = with_pool(n, || time_ms(opts.trials, || mis2(&g)));
            let instances_per_s = 1000.0 / ms.max(1e-9);
            effs.push(instances_per_s / bws[k].gbps);
        }
        let best = effs.iter().cloned().fold(f64::MIN, f64::max);
        let best_idx = effs.iter().position(|&e| e == best).unwrap();
        let mut row = vec![name.to_string()];
        for &e in &effs {
            row.push(format!("{:.3}", e));
        }
        row.push(format!("{}T", threads[best_idx]));
        t.row(row);
    }
    for bw in &bws {
        t.note(format!(
            "measured triad bandwidth at {} threads: {:.1} GB/s",
            bw.threads, bw.gbps
        ));
    }
    t.note("Paper normalizes by datasheet bandwidth across 4 architectures; we measure triad per profile (DESIGN.md §5).");
    t
}

// ---------------------------------------------------------------------------
// Figures 4/5 — strong scaling
// ---------------------------------------------------------------------------

/// Figures 4 and 5: strong thread-scaling of MIS-2.
pub fn fig4(opts: &RunOpts) -> Table {
    let threads = opts.thread_counts();
    let mut headers = vec!["Matrix".to_string()];
    for &n in &threads {
        headers.push(format!("{n}T (ms)"));
    }
    headers.push("speedup".into());
    headers.push("efficiency".into());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figures 4/5 — strong scaling efficiency of MIS-2",
        &hdr_refs,
    );
    let mut speedups = Vec::new();
    for (name, g) in suite_graphs(opts.scale) {
        let times: Vec<f64> = threads
            .iter()
            .map(|&n| with_pool(n, || time_ms(opts.trials, || mis2(&g))))
            .collect();
        let t1 = times[0];
        let tn = *times.last().unwrap();
        let nmax = *threads.last().unwrap() as f64;
        let sp = t1 / tn.max(1e-9);
        speedups.push(sp);
        let mut row = vec![name.to_string()];
        for &ms in &times {
            row.push(fmt_ms(ms));
        }
        row.push(fmt_x(sp));
        row.push(format!("{:.2}", sp / nmax));
        t.row(row);
    }
    t.note(format!(
        "geomean speedup at max threads: {}",
        fmt_x(geometric_mean(&speedups))
    ));
    t.note(
        "Paper: 26.9x at 48 threads (Intel), 43.9x at 56 threads (ARM); this host has fewer cores.",
    );
    t
}

// ---------------------------------------------------------------------------
// Figure 6 — MIS-2 vs CUSP
// ---------------------------------------------------------------------------

/// Figure 6: Algorithm 1 vs the Bell/CUSP baseline.
pub fn fig6(opts: &RunOpts) -> Table {
    let mut t = Table::new(
        "Figure 6 — MIS-2: Kokkos-Kernels algorithm vs CUSP (Bell) baseline",
        &["Matrix", "KK (ms)", "CUSP (ms)", "speedup"],
    );
    let mut speedups = Vec::new();
    for (name, g) in suite_graphs(opts.scale) {
        let kk = time_ms(opts.trials, || mis2(&g));
        let cusp = time_ms(opts.trials, || bell_mis2(&g, 1));
        let sp = cusp / kk.max(1e-9);
        speedups.push(sp);
        t.row(vec![name.to_string(), fmt_ms(kk), fmt_ms(cusp), fmt_x(sp)]);
    }
    t.note(format!(
        "geomean speedup: {}",
        fmt_x(geometric_mean(&speedups))
    ));
    t.note("Paper: 5-7x vs CUSP on V100. CUSP here = our faithful Rust port of Bell's MIS-k.");
    t
}

// ---------------------------------------------------------------------------
// Figure 7 — coarsening vs ViennaCL
// ---------------------------------------------------------------------------

/// Figure 7: MIS-2 + Algorithm 2 coarsening vs the ViennaCL-equivalent
/// (Bell MIS-2 + the same coarsening).
pub fn fig7(opts: &RunOpts) -> Table {
    let mut t = Table::new(
        "Figure 7 — MIS-2 based coarsening vs ViennaCL (Bell) baseline",
        &["Matrix", "KK coarsen (ms)", "ViennaCL (ms)", "speedup"],
    );
    let mut speedups = Vec::new();
    for (name, g) in suite_graphs(opts.scale) {
        let kk = time_ms(opts.trials, || {
            let m = mis2(&g);
            mis2_coarsen::mis2_basic_from(&g, &m)
        });
        let vcl = time_ms(opts.trials, || {
            let m = bell_mis2(&g, 2);
            mis2_coarsen::mis2_basic_from(&g, &m)
        });
        let sp = vcl / kk.max(1e-9);
        speedups.push(sp);
        t.row(vec![name.to_string(), fmt_ms(kk), fmt_ms(vcl), fmt_x(sp)]);
    }
    t.note(format!(
        "geomean speedup: {}",
        fmt_x(geometric_mean(&speedups))
    ));
    t.note("Paper: 3-8x vs ViennaCL (CUDA and OpenCL backends) on V100.");
    t
}

// ---------------------------------------------------------------------------
// Table IV — MIS-2 quality comparison
// ---------------------------------------------------------------------------

/// Table IV: |MIS-2| produced by the three implementations.
pub fn table4(opts: &RunOpts) -> Table {
    let mut t = Table::new(
        "Table IV — quality of MIS-2: set sizes (higher is better)",
        &["Matrix", "KK", "CUSP", "ViennaCL", "max spread"],
    );
    for (name, g) in suite_graphs(opts.scale) {
        let kk = mis2(&g).size();
        let cusp = bell_mis2(&g, 1).size();
        let vcl = bell_mis2(&g, 2).size();
        let max = kk.max(cusp).max(vcl) as f64;
        let min = kk.min(cusp).min(vcl) as f64;
        t.row(vec![
            name.to_string(),
            kk.to_string(),
            cusp.to_string(),
            vcl.to_string(),
            format!("{:.2}%", 100.0 * (max - min) / max.max(1.0)),
        ]);
    }
    t.note("All three should agree within ~1-2% (paper Table IV). CUSP/ViennaCL = Bell ports with independent random streams.");
    t
}

// ---------------------------------------------------------------------------
// Table V — multigrid aggregation comparison
// ---------------------------------------------------------------------------

/// Table V: SA-AMG preconditioned CG on Laplace3D with the five
/// aggregation schemes.
pub fn table5(opts: &RunOpts) -> Table {
    let d = match opts.scale {
        Scale::Tiny => 25,
        Scale::Small => 50,
        Scale::Paper => 100,
    };
    let a = mis2_sparse::gen::laplace3d_matrix(d, d, d);
    let b = vec![1.0; a.nrows()];
    let solve_opts = SolveOpts {
        tol: 1e-12,
        max_iters: 1000,
    };
    let mut t = Table::new(
        format!("Table V — MueLu-style SA-AMG on {d}^3 Laplace3D (CG, tol 1e-12, 2 Jacobi sweeps)"),
        &[
            "Scheme",
            "Iters",
            "Agg (s)",
            "Setup (s)",
            "Solve (s)",
            "Det.",
        ],
    );
    for scheme in AggScheme::all() {
        let amg = AmgHierarchy::build(
            &a,
            &AmgConfig {
                scheme,
                min_coarse_size: 200,
                ..Default::default()
            },
        );
        let timer = mis2_prim::timer::Timer::start();
        let (_, res) = pcg(&a, &b, &amg, &solve_opts);
        let solve_s = timer.elapsed_s();
        t.row(vec![
            scheme.label().to_string(),
            res.iterations.to_string(),
            format!("{:.4}", amg.stats.aggregation_seconds),
            format!("{:.4}", amg.stats.setup_seconds),
            format!("{:.4}", solve_s),
            if scheme.paper_deterministic() {
                "yes".into()
            } else {
                "no*".into()
            },
        ]);
    }
    t.note("Paper (V100, 100^3): Serial Agg 25 iters / MIS2 Basic 49 / MIS2 Agg 22; MIS2 Agg fastest deterministic setup.");
    t.note("* Det. column reports the paper's classification of the reference implementations; our reimplementations are all deterministic (see EXPERIMENTS.md).");
    t
}

// ---------------------------------------------------------------------------
// Table VI — point vs cluster multicolor Gauss-Seidel
// ---------------------------------------------------------------------------

/// The five Table VI systems (synthetic stand-ins per DESIGN.md §5).
pub fn table6_systems(scale: Scale) -> Vec<(&'static str, mis2_sparse::CsrMatrix)> {
    let d3 = |x: usize| scale.dim3(x);
    let bodyy5 = {
        // bodyy5: ~18.6k vertices, avg degree ~5.8 2D FE mesh.
        let side = match scale {
            Scale::Tiny => 68,
            Scale::Small => 96,
            Scale::Paper => 136,
        };
        let g = suite::grid2d_sprinkled(side, side, 13, 0);
        mis2_sparse::gen::spd_from_graph(&g, 0xB0D5)
    };
    let ela = mis2_sparse::gen::elasticity3d_matrix(d3(60), d3(60), d3(60));
    let geo = mis2_sparse::gen::spd_from_graph(&suite::build("Geo_1438", scale), 0x6E0);
    let lap = {
        let d = d3(100);
        mis2_sparse::gen::laplace3d_matrix(d, d, d)
    };
    let serena = mis2_sparse::gen::spd_from_graph(&suite::build("Serena", scale), 0x5E7E);
    vec![
        ("bodyy5", bodyy5),
        ("Elasticity3D_60", ela),
        ("Geo_1438", geo),
        ("Laplace3D_100", lap),
        ("Serena", serena),
    ]
}

/// Table VI: point vs cluster multicolor SGS as GMRES preconditioners.
pub fn table6(opts: &RunOpts) -> Table {
    let solve_opts = SolveOpts {
        tol: 1e-8,
        max_iters: 800,
    };
    let mut t = Table::new(
        "Table VI — point vs cluster multicolor SGS preconditioning GMRES (tol 1e-8, cap 800)",
        &[
            "System",
            "P.Setup (s)",
            "C.Setup (s)",
            "P.Apply (s)",
            "C.Apply (s)",
            "P.Iters",
            "C.Iters",
        ],
    );
    for (name, a) in table6_systems(opts.scale) {
        let b = vec![1.0; a.nrows()];
        let point = PointMcSgs::new(&a, 0);
        let cluster = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0);
        let tp = TimedPrecond::new(&point);
        let (_, rp) = gmres(&a, &b, &tp, 50, &solve_opts);
        let tc = TimedPrecond::new(&cluster);
        let (_, rc) = gmres(&a, &b, &tc, 50, &solve_opts);
        t.row(vec![
            name.to_string(),
            format!("{:.4}", point.setup_seconds),
            format!("{:.4}", cluster.setup_seconds),
            format!("{:.4}", tp.apply_seconds()),
            format!("{:.4}", tc.apply_seconds()),
            format!(
                "{} ({})",
                rp.iterations,
                if rp.converged { "conv" } else { "cap" }
            ),
            format!(
                "{} ({})",
                rc.iterations,
                if rc.converged { "conv" } else { "cap" }
            ),
        ]);
    }
    t.note("Paper (V100): cluster wins setup and apply on all five systems; iterations ~5% lower (geomean).");
    t.note("Systems are synthetic stand-ins with matched size/degree (DESIGN.md §5).");
    t
}

/// Run every experiment.
pub fn all(opts: &RunOpts) -> Vec<Table> {
    vec![
        table1(opts),
        table2(opts),
        table3(opts),
        fig2(opts),
        fig3(opts),
        fig4(opts),
        fig6(opts),
        fig7(opts),
        table4(opts),
        table5(opts),
        table6(opts),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOpts {
        RunOpts {
            scale: Scale::Tiny,
            trials: 1,
            threads: crate::ThreadSweep::Default,
        }
    }

    #[test]
    fn table1_shape() {
        let t = table1(&tiny_opts());
        assert_eq!(t.rows.len(), 17);
        assert_eq!(t.headers.len(), 4);
        // All iteration counts positive.
        for row in &t.rows {
            for c in &row[1..] {
                assert!(c.parse::<usize>().unwrap() > 0);
            }
        }
    }

    #[test]
    fn table3_sizes_proportional() {
        let t = table3(&tiny_opts());
        assert_eq!(t.rows.len(), 8);
        // |MIS-2| fraction should be larger for Laplace (low degree) than
        // Elasticity (high degree) — the paper's 9% vs 0.7% effect.
        let ela_frac: f64 = t.rows[0][3].trim_end_matches('%').parse().unwrap();
        let lap_frac: f64 = t.rows[4][3].trim_end_matches('%').parse().unwrap();
        assert!(
            lap_frac > 3.0 * ela_frac,
            "laplace {lap_frac}% vs elasticity {ela_frac}%"
        );
    }

    #[test]
    fn table4_quality_close() {
        let t = table4(&tiny_opts());
        for row in &t.rows {
            let spread: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(spread < 12.0, "{}: spread {spread}% too wide", row[0]);
        }
    }

    #[test]
    fn render_does_not_panic() {
        let t = table1(&tiny_opts());
        let s = t.render();
        assert!(s.contains("Table I"));
    }
}
