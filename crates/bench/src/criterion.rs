//! Minimal, dependency-free drop-in for the subset of the `criterion` API
//! the benches use (`Criterion`, benchmark groups, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`).
//!
//! The container this workspace builds in has no network access, so the
//! real criterion crate cannot be vendored; the benches only need
//! wall-clock means over a fixed sample count, which this module measures
//! with [`std::time::Instant`] and reports on stdout in a
//! `group/bench: mean ± stddev (n samples)` format. Swapping back to real
//! criterion later is a one-line import change per bench.

use std::time::{Duration, Instant};

/// Re-export so `use mis2_bench::criterion::black_box` works like the real
/// crate.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, e.g.
/// `BenchmarkId::new("laplace3d_30", threads)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

/// Measurement driver handed to the closure of `iter`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Run `routine` repeatedly: warm up for the configured time, then
    /// collect up to `sample_size` timed samples (stopping early once the
    /// measurement budget is exhausted).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64());
            if measure_start.elapsed() > self.measurement && self.samples.len() >= 2 {
                break;
            }
        }
    }
}

/// A named collection of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<P>(
        &mut self,
        id: BenchmarkId,
        input: &P,
        mut f: impl FnMut(&mut Bencher, &P),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing happens per bench; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (API-compatible subset of
/// `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(3),
            sample_size: 10,
            samples: Vec::new(),
        };
        f(&mut b);
        report("", name, &b.samples);
        self
    }
}

fn report(group: &str, name: &str, samples: &[f64]) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    println!(
        "{label:<48} {:>12} ± {:<10} ({} samples)",
        format_time(mean),
        format_time(sd),
        samples.len()
    );
}

fn format_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Collect benchmark functions into a runner, like the real
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::criterion::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point expanding to `fn main`, like the real `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Make `use mis2_bench::criterion::{criterion_group, criterion_main}` work
// exactly like importing from the real criterion crate.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("laplace", 8);
        assert_eq!(id.name, "laplace/8");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.002), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 us");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}
