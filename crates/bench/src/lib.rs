//! # mis2-bench — reproduction harness for every table and figure
//!
//! One function per artifact of the paper's evaluation (Section VI):
//!
//! | paper artifact | function | `repro` subcommand |
//! |---|---|---|
//! | Table I (priority schemes) | [`experiments::table1`] | `table1` |
//! | Table II (suite stats + times) | [`experiments::table2`] | `table2` |
//! | Table III (structured scaling) | [`experiments::table3`] | `table3` |
//! | Figure 2 (optimization ladder) | [`experiments::fig2`] | `fig2` |
//! | Figure 3 (bandwidth efficiency) | [`experiments::fig3`] | `fig3` |
//! | Figures 4/5 (strong scaling) | [`experiments::fig4`] | `fig4` |
//! | Figure 6 (vs CUSP) | [`experiments::fig6`] | `fig6` |
//! | Figure 7 (coarsening vs ViennaCL) | [`experiments::fig7`] | `fig7` |
//! | Table IV (MIS-2 quality) | [`experiments::table4`] | `table4` |
//! | Table V (MueLu aggregation) | [`experiments::table5`] | `table5` |
//! | Table VI (point vs cluster SGS) | [`experiments::table6`] | `table6` |
//!
//! Hardware substitutions (single host CPU instead of V100/MI100/Skylake/
//! TX2) are documented in DESIGN.md §5; the harness sweeps worker-pool sizes
//! where the paper sweeps architectures or OpenMP threads.

pub mod bandwidth;
pub mod criterion;
pub mod experiments;
pub mod tables;
pub mod timing;

pub use tables::Table;

/// Options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Problem scale (tiny / small / paper).
    pub scale: mis2_graph::Scale,
    /// Timing trials per measurement (the paper uses 100 for Table II).
    pub trials: usize,
    /// Thread counts to sweep (defaults to [1, ..., num_cpus]).
    pub threads: ThreadSweep,
}

/// Which thread counts to run.
#[derive(Debug, Clone, Copy)]
pub enum ThreadSweep {
    /// 1..=available cores (powers of two plus the max).
    Auto,
    /// Only the default pool.
    Default,
}

impl RunOpts {
    /// Thread counts for scaling sweeps.
    pub fn thread_counts(&self) -> Vec<usize> {
        match self.threads {
            ThreadSweep::Default => vec![mis2_prim::pool::max_threads()],
            ThreadSweep::Auto => {
                let max = mis2_prim::pool::max_threads();
                let mut v = vec![1usize];
                let mut t = 2;
                while t < max {
                    v.push(t);
                    t *= 2;
                }
                if max > 1 {
                    v.push(max);
                }
                v.dedup();
                v
            }
        }
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            scale: mis2_graph::Scale::Tiny,
            trials: 3,
            threads: ThreadSweep::Auto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_start_at_one() {
        let opts = RunOpts::default();
        let t = opts.thread_counts();
        assert_eq!(t[0], 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn default_sweep_single_entry() {
        let opts = RunOpts {
            threads: ThreadSweep::Default,
            ..Default::default()
        };
        assert_eq!(opts.thread_counts().len(), 1);
    }
}
