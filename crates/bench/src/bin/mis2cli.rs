//! `mis2cli` — run the library's algorithms on a Matrix Market file or a
//! named suite workload.
//!
//! ```text
//! mis2cli <command> (--mtx FILE | --workload NAME [--scale S]) [--seed N]
//!         [--threads N] [options]
//!
//! commands:
//!   stats       graph summary statistics
//!   mis2        Algorithm 1 (deterministic MIS-2)
//!   misk --k K  generalized distance-k MIS
//!   aggregate   Algorithm 3 (MIS-2 aggregation)
//!   coarsen     recursive multilevel coarsening summary
//!   color       deterministic distance-1 coloring
//!   colord2     deterministic distance-2 coloring
//!   partition --parts P   multilevel graph partitioning
//! ```

use mis2_coarsen as coarsen;
use mis2_core as core_;
use mis2_graph::{io, suite, CsrGraph, Scale};

struct Args {
    command: String,
    mtx: Option<String>,
    workload: Option<String>,
    scale: Scale,
    seed: u64,
    k: usize,
    parts: usize,
    threads: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mis2cli <stats|mis2|misk|aggregate|coarsen|color|colord2|partition>\n\
         \x20       (--mtx FILE | --workload NAME [--scale tiny|small|paper])\n\
         \x20       [--seed N] [--k K] [--parts P] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
    }
    let mut a = Args {
        command: argv[0].clone(),
        mtx: None,
        workload: None,
        scale: Scale::Small,
        seed: 0,
        k: 3,
        parts: 4,
        threads: None,
    };
    let mut i = 1;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--mtx" => a.mtx = Some(take(&mut i)),
            "--workload" => a.workload = Some(take(&mut i)),
            "--scale" => a.scale = Scale::parse(&take(&mut i)).unwrap_or_else(|| usage()),
            "--seed" => a.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--k" => a.k = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--parts" => a.parts = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => a.threads = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
        i += 1;
    }
    if a.threads == Some(0) {
        eprintln!("error: --threads must be at least 1 (the calling thread counts)");
        std::process::exit(2);
    }
    a
}

fn load_graph(a: &Args) -> CsrGraph {
    match (&a.mtx, &a.workload) {
        (Some(path), _) => match io::read_graph_file(path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                std::process::exit(1);
            }
        },
        (None, Some(name)) => match suite::try_build(name, a.scale) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
        (None, None) => {
            eprintln!("no input: pass --mtx FILE or --workload NAME");
            eprintln!(
                "workloads: {}",
                suite::all_workloads()
                    .iter()
                    .map(|w| w.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    match args.threads {
        // Cap every parallel region of the run (determinism contract:
        // results are identical at any cap).
        Some(t) => mis2_prim::pool::with_pool(t, || run(&args)),
        None => run(&args),
    }
}

fn run(args: &Args) {
    let g = load_graph(args);
    println!("graph: {}", g.stats());
    let t = std::time::Instant::now();
    match args.command.as_str() {
        "stats" => {
            let hist = mis2_graph::ops::degree_histogram(&g);
            let (ncomp, _) = mis2_graph::ops::connected_components(&g);
            println!("connected components: {ncomp}");
            let show = hist.iter().enumerate().filter(|(_, &c)| c > 0).take(12);
            for (d, c) in show {
                println!("  degree {d:>4}: {c} vertices");
            }
        }
        "mis2" => {
            let r = core_::mis2_with_config(
                &g,
                &core_::Mis2Config {
                    seed: args.seed,
                    ..Default::default()
                },
            );
            core_::verify_mis2(&g, &r.is_in).expect("internal error: invalid MIS-2");
            println!(
                "|MIS-2| = {} ({:.3}% of V), {} iterations, verified",
                r.size(),
                100.0 * r.size() as f64 / g.num_vertices() as f64,
                r.iterations
            );
        }
        "misk" => {
            let r = core_::mis_k(&g, args.k, args.seed);
            println!(
                "|MIS-{}| = {} in {} iterations",
                args.k,
                r.size(),
                r.iterations
            );
        }
        "aggregate" => {
            let agg = coarsen::mis2_aggregation(&g);
            agg.validate(&g)
                .expect("internal error: invalid aggregation");
            let sizes = agg.sizes();
            println!(
                "{} aggregates, mean size {:.2}, max size {}, verified",
                agg.num_aggregates,
                agg.mean_size(),
                sizes.iter().max().unwrap()
            );
        }
        "coarsen" => {
            let levels = coarsen::coarsen_recursive(&g, 100, 12);
            for (i, lvl) in levels.iter().enumerate() {
                println!("  level {i}: {}", lvl.graph.stats());
            }
        }
        "color" => {
            let c = mis2_color::color_d1(&g, args.seed);
            mis2_color::verify_coloring_d1(&g, &c.colors).expect("invalid coloring");
            println!("{} colors in {} rounds, verified", c.num_colors, c.rounds);
        }
        "colord2" => {
            let c = mis2_color::color_d2(&g, args.seed);
            mis2_color::verify_coloring_d2(&g, &c.colors).expect("invalid coloring");
            println!(
                "{} distance-2 colors in {} rounds, verified",
                c.num_colors, c.rounds
            );
        }
        "partition" => {
            let parts = args.parts.next_power_of_two();
            let p = coarsen::partition(&g, parts, &coarsen::PartitionConfig::default());
            let q = coarsen::quality(&g, &p);
            println!(
                "{} parts: edge cut {}, imbalance {:.3}, part weights {:?}",
                parts, q.edge_cut, q.imbalance, q.part_weights
            );
        }
        _ => usage(),
    }
    println!("elapsed: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
}
