//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <artifact> [--scale tiny|small|paper] [--trials N] [--out FILE]
//!
//! artifacts: table1 table2 table3 table4 table5 table6
//!            fig2 fig3 fig4 fig6 fig7 all
//! ```
//!
//! `--scale small` (default) runs at ~1/8 of the paper's sizes; `paper`
//! uses the full 10^6-vertex graphs; `tiny` is a fast smoke scale.

use mis2_bench::experiments;
use mis2_bench::{RunOpts, Table, ThreadSweep};
use mis2_graph::Scale;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: repro <artifact> [--scale tiny|small|paper] [--trials N] [--out FILE]\n\
         artifacts: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4 fig6 fig7 all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let artifact = args[0].clone();
    let mut scale = Scale::Small;
    let mut trials = 5usize;
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--trials" => {
                i += 1;
                trials = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let opts = RunOpts {
        scale,
        trials,
        threads: ThreadSweep::Auto,
    };

    eprintln!(
        "# repro {artifact} --scale {scale:?} --trials {trials} ({} threads available)",
        mis2_prim::pool::max_threads()
    );
    let t0 = std::time::Instant::now();
    let tables: Vec<Table> = match artifact.as_str() {
        "table1" => vec![experiments::table1(&opts)],
        "table2" => vec![experiments::table2(&opts)],
        "table3" => vec![experiments::table3(&opts)],
        "table4" => vec![experiments::table4(&opts)],
        "table5" => vec![experiments::table5(&opts)],
        "table6" => vec![experiments::table6(&opts)],
        "fig2" => vec![experiments::fig2(&opts)],
        "fig3" => vec![experiments::fig3(&opts)],
        "fig4" | "fig5" => vec![experiments::fig4(&opts)],
        "fig6" => vec![experiments::fig6(&opts)],
        "fig7" => vec![experiments::fig7(&opts)],
        "all" => experiments::all(&opts),
        _ => usage(),
    };
    let mut rendered = String::new();
    for t in &tables {
        rendered.push_str(&t.render());
        rendered.push('\n');
    }
    print!("{rendered}");
    eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("cannot create --out file");
        f.write_all(rendered.as_bytes()).expect("write failed");
        eprintln!("# wrote {path}");
    }
}
