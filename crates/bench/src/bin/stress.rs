// Stress reproducer for the repro-all crash: hammer the NB D2C pipeline
// (speculative D2 coloring + aggregation) on AMG-style coarse graphs.
use mis2_coarsen::AggScheme;

fn main() {
    let a = mis2_sparse::gen::laplace3d_matrix(50, 50, 50);
    eprintln!("building level-1 coarse operator...");
    let g0 = a.to_graph();
    let agg0 = mis2_coarsen::mis2_aggregation(&g0);
    let p = mis2_coarsen::tentative_prolongator(&agg0, true);
    let p = mis2_coarsen::smoothed_prolongator(&a, &p, Some(2.0 / 3.0));
    let ac = mis2_sparse::galerkin_product(&a, &p);
    let g1 = ac.to_graph();
    eprintln!("coarse graph: {}", g1.stats());
    g1.validate_symmetric().expect("coarse graph asymmetric!");
    for iter in 0..200 {
        let agg = AggScheme::NbD2C.aggregate(&g1, iter);
        agg.validate(&g1).expect("invalid aggregation");
        if iter % 20 == 0 {
            eprintln!("iter {iter}: {} aggregates ok", agg.num_aggregates);
        }
    }
    eprintln!("PASS");
}
