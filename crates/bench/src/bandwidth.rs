//! STREAM-style memory bandwidth measurement.
//!
//! Figure 3 of the paper normalizes MIS-2 throughput by each device's
//! theoretical memory bandwidth (1200 GB/s MI100, 900 GB/s V100, 238 GB/s
//! Skylake, 317 GB/s TX2) to show bandwidth-limited efficiency. With a
//! single host we *measure* the achievable triad bandwidth per thread-count
//! profile and normalize by that, which is the same methodology with
//! measured rather than datasheet numbers.

use mis2_prim::par;

/// Measured triad bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct Bandwidth {
    /// Threads used.
    pub threads: usize,
    /// GB/s achieved by `a[i] = b[i] + s * c[i]`.
    pub gbps: f64,
}

/// Measure triad bandwidth with `threads` workers over arrays of
/// `elements` f64 each (3 arrays; choose `elements` so the working set
/// exceeds LLC).
pub fn measure_triad(threads: usize, elements: usize, repeats: usize) -> Bandwidth {
    mis2_prim::pool::with_pool(threads, || {
        let b: Vec<f64> = (0..elements).map(|i| i as f64 * 0.5).collect();
        let c: Vec<f64> = (0..elements).map(|i| (i % 97) as f64).collect();
        let mut a = vec![0.0f64; elements];
        // Warmup.
        par::for_each_mut_indexed(&mut a, |i, a| *a = b[i] + 3.0 * c[i]);
        let t = mis2_prim::timer::Timer::start();
        for _ in 0..repeats {
            par::for_each_mut_indexed(&mut a, |i, a| *a = b[i] + 3.0 * c[i]);
        }
        let secs = t.elapsed_s();
        std::hint::black_box(&a);
        // Triad moves 3 arrays (2 reads + 1 write) per pass.
        let bytes = 3.0 * elements as f64 * 8.0 * repeats as f64;
        Bandwidth {
            threads,
            gbps: bytes / secs / 1e9,
        }
    })
}

/// Default measurement: 32 MiB working set per array, 8 repeats.
pub fn measure_default(threads: usize) -> Bandwidth {
    measure_triad(threads, 4 << 20, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_positive_and_sane() {
        let bw = measure_triad(1, 1 << 20, 2);
        assert!(bw.gbps > 0.1, "{} GB/s", bw.gbps);
        assert!(bw.gbps < 10_000.0, "{} GB/s", bw.gbps);
        assert_eq!(bw.threads, 1);
    }
}
