//! Plain-text table rendering for the `repro` harness (aligned columns,
//! GitHub-markdown compatible).

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title printed above the table (e.g. "Table I — iteration counts").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (substitutions, units, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned markdown.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:width$} |", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("> {n}\n"));
            }
        }
        out
    }
}

/// Format a float with sensible significant digits for a timing table.
pub fn fmt_ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a speedup ratio.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 22    |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_wrong_width() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_ms(123.456), "123");
        assert_eq!(fmt_ms(12.34), "12.3");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_x(2.5), "2.50x");
    }
}
