//! Kernel-level A/B of the adaptive MIS-2 engine against the frozen seed
//! engine ([`mis2_core::reference`]) — the pre-PR implementation kept
//! verbatim for exactly this comparison.
//!
//! Three graph classes × pool sizes {1, 4, 8}:
//!
//! * `laplace3d` — bounded-degree mesh. The adaptive layer must be free
//!   here (single flat class, no partition): acceptance is **≤ 3%**
//!   regression.
//! * `erdos_renyi` — concentrated degrees near the small/medium border;
//!   same ≤ 3% bound.
//! * `rmat` — power-law. The seed engine serializes whole scheduler
//!   blocks behind hub rows (its per-vertex `SIMD_MIN_DEGREE` branch runs
//!   a *nested* reduction, which the execution layer runs serially on one
//!   worker); the bucketed dispatch runs hub rows team-wide at top level.
//!   Acceptance: **≥ 1.3×** end-to-end at 8 threads.
//!
//! Every timed pair also asserts the two engines' results are equal, so
//! the bench doubles as an equivalence smoke test — including under the
//! CI `taskset -c 0` leg, which pins to one CPU and proves the serial
//! tail path end to end.
//!
//! Output: per-cell ns/round and speedup on stdout, and the full matrix
//! as `BENCH_kernel.json` (override the path with `BENCH_KERNEL_JSON=`)
//! for the CI artifact upload. `--quick` (or `MIS2_KERNEL_QUICK=1`)
//! shrinks the graphs and repetitions for smoke runs.

use mis2_core::{mis2_with_config, reference, Mis2Config, Mis2Result};
use mis2_graph::{gen, CsrGraph};
use mis2_prim::pool::with_pool;
use std::io::Write as _;
use std::time::Instant;

const POOLS: [usize; 3] = [1, 4, 8];

struct Cell {
    graph: &'static str,
    pool: usize,
    ref_ms: f64,
    engine_ms: f64,
    ns_per_round_ref: f64,
    ns_per_round_engine: f64,
    speedup: f64,
    iterations: usize,
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("MIS2_KERNEL_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false)
}

fn graphs(quick: bool) -> Vec<(&'static str, CsrGraph)> {
    if quick {
        vec![
            ("laplace3d", gen::laplace3d(20, 20, 20)),
            ("erdos_renyi", gen::erdos_renyi(20_000, 160_000, 11)),
            ("rmat", gen::rmat(14, 16, 0.65, 0.15, 0.15, 5)),
        ]
    } else {
        vec![
            ("laplace3d", gen::laplace3d(60, 60, 60)),
            ("erdos_renyi", gen::erdos_renyi(200_000, 1_600_000, 11)),
            ("rmat", gen::rmat(18, 16, 0.65, 0.15, 0.15, 5)),
        ]
    }
}

/// Best-of-`reps` wall time in seconds (minimum filters scheduler noise,
/// which only ever adds time).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn write_json(
    cells: &[Cell],
    quick: bool,
    rmat_p8: f64,
    mesh_worst_pct: f64,
) -> std::io::Result<String> {
    let path =
        std::env::var("BENCH_KERNEL_JSON").unwrap_or_else(|_| "BENCH_kernel.json".to_string());
    let mut out = String::from("{\n  \"bench\": \"mis2_kernel\",\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    out.push_str(&format!("  \"speedup_rmat_pool8\": {rmat_p8:.3},\n"));
    out.push_str(&format!(
        "  \"mesh_worst_regression_pct\": {mesh_worst_pct:.2},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"graph\": \"{}\", \"pool\": {}, \"ref_ms\": {:.3}, \"engine_ms\": {:.3}, \
             \"ns_per_round_ref\": {:.0}, \"ns_per_round_engine\": {:.0}, \
             \"speedup\": {:.3}, \"iterations\": {}}}{}\n",
            c.graph,
            c.pool,
            c.ref_ms,
            c.engine_ms,
            c.ns_per_round_ref,
            c.ns_per_round_engine,
            c.speedup,
            c.iterations,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::File::create(&path)?.write_all(out.as_bytes())?;
    Ok(path)
}

fn main() {
    let quick = quick_mode();
    let reps = if quick { 2 } else { 5 };
    let cfg = Mis2Config::default();
    let mut cells: Vec<Cell> = Vec::new();

    for (name, g) in graphs(quick) {
        for pool in POOLS {
            // Warm the pool and the page cache once per cell.
            let want: Mis2Result = with_pool(pool, || reference::mis2_with_config(&g, &cfg));
            let (ref_s, want2) = best_of(reps, || {
                with_pool(pool, || reference::mis2_with_config(&g, &cfg))
            });
            assert_eq!(want, want2, "seed engine nondeterministic on {name}");
            let (eng_s, got) = best_of(reps, || with_pool(pool, || mis2_with_config(&g, &cfg)));
            // Equivalence gate: a fast wrong kernel is worthless. Under the
            // CI 1-CPU taskset leg this asserts the serial tail path too.
            assert_eq!(
                got, want,
                "adaptive engine diverges on {name} at pool {pool}"
            );

            let rounds = want.iterations.max(1) as f64;
            let cell = Cell {
                graph: name,
                pool,
                ref_ms: ref_s * 1e3,
                engine_ms: eng_s * 1e3,
                ns_per_round_ref: ref_s * 1e9 / rounds,
                ns_per_round_engine: eng_s * 1e9 / rounds,
                speedup: ref_s / eng_s,
                iterations: want.iterations,
            };
            println!(
                "mis2_kernel/{name}/p{pool}: seed {:.3} ms, adaptive {:.3} ms, \
                 {:.0} -> {:.0} ns/round, speedup {:.2}x ({} rounds)",
                cell.ref_ms,
                cell.engine_ms,
                cell.ns_per_round_ref,
                cell.ns_per_round_engine,
                cell.speedup,
                cell.iterations
            );
            cells.push(cell);
        }
    }

    let get = |graph: &str, pool: usize| {
        cells
            .iter()
            .find(|c| c.graph == graph && c.pool == pool)
            .map(|c| c.speedup)
            .unwrap()
    };
    let rmat_p8 = get("rmat", 8);
    // Worst regression across every mesh/uniform cell (all pools):
    // positive = slower than the seed engine.
    let mesh_worst_pct = cells
        .iter()
        .filter(|c| c.graph != "rmat")
        .map(|c| (1.0 / c.speedup - 1.0) * 100.0)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "mis2_kernel/acceptance: rmat pool-8 speedup {rmat_p8:.2}x (target >= 1.3x), \
         mesh/uniform worst regression {mesh_worst_pct:+.2}% (target <= 3%)"
    );
    if host_cpus() < 2 {
        // The pool-8 cells measure thread-pool overhead, not parallelism,
        // when the host has one hardware thread; the speedup target
        // presumes >= 8 cores. The p1 cells (serial fused-pass wins) are
        // the meaningful comparison on such hosts.
        println!(
            "mis2_kernel/note: host has 1 CPU — multi-thread cells cannot show parallel \
             speedup; see the pool-1 cells for the fused-pass win"
        );
    }

    match write_json(&cells, quick, rmat_p8, mesh_worst_pct) {
        Ok(path) => println!("mis2_kernel/json: wrote {path}"),
        Err(e) => eprintln!("mis2_kernel/json: write failed: {e}"),
    }
}
