//! Figure 2 microbenchmark: the optimization ladder on two structured
//! problems (Bell baseline + the four cumulative optimizations).

use mis2_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis2_core::{bell_mis2, mis2_with_config, Mis2Config};
use mis2_graph::gen;

fn bench_ladder(c: &mut Criterion) {
    let graphs = vec![
        ("laplace3d_25", gen::laplace3d(25, 25, 25)),
        ("elasticity3d_10", gen::elasticity3d(10, 10, 10, 3)),
    ];
    let mut group = c.benchmark_group("fig2_opt_ladder");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("bell_baseline", name), g, |b, g| {
            b.iter(|| bell_mis2(g, 0))
        });
        for (label, cfg) in Mis2Config::ladder() {
            group.bench_with_input(BenchmarkId::new(label, name), g, |b, g| {
                b.iter(|| mis2_with_config(g, &cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
