//! Bounded vs unbounded registry throughput on the two workload shapes
//! that matter for a memory budget:
//!
//! * **hit-heavy** — repeated requests over a small working set that fits
//!   the budget. This is the service's common shape; the bounded registry
//!   must stay within ~10% of unbounded, because after warmup both serve
//!   pure cache hits and the budget machinery is just one accounting pass
//!   per lookup.
//! * **churn-heavy** — a cycle over more graphs than the budget holds, so
//!   the bounded registry evicts and recomputes every round while the
//!   unbounded one (the memory-is-free upper bound) serves hits. The gap
//!   is the *price of bounded memory* on an adversarial access pattern —
//!   the trade the `--mem-budget` flag buys: a server that survives
//!   many-tenant traffic instead of growing until the OOM killer wins.
//!
//! Both registries produce bitwise-identical artifacts throughout (the
//! determinism contract); only latency and counters differ.

use mis2_bench::criterion::{criterion_group, criterion_main, Criterion};
use mis2_graph::Scale;
use mis2_svc::registry::Registry;
use mis2_svc::{GraphRef, OpKey};

/// Small working set for the hit-heavy shape.
const HOT: [&str; 2] = ["ecology2", "parabolic_fem"];

/// Wider set for the churn-heavy shape (more than the budget holds).
const CHURN: [&str; 6] = [
    "ecology2",
    "parabolic_fem",
    "thermal2",
    "tmt_sym",
    "apache2",
    "StocF-1465",
];

/// Total cached bytes after computing MIS-2 for every name.
fn working_set_bytes(names: &[&str]) -> usize {
    let reg = Registry::new(Scale::Tiny);
    sweep(&reg, names);
    reg.stats().bytes
}

/// One pass: MIS-2 artifact for every name, hot or cold.
fn sweep(reg: &Registry, names: &[&str]) {
    for name in names {
        reg.artifact(&GraphRef::Suite((*name).into()), &OpKey::Mis2)
            .expect("suite workload must build");
    }
}

fn bench_registry_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_bound");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Hit-heavy: budget comfortably holds the hot set (2x headroom), so
    // after the first sweep every request is a hit in both registries.
    let hot_budget = working_set_bytes(&HOT) * 2;
    let unbounded = Registry::new(Scale::Tiny);
    let bounded = Registry::with_budget(Scale::Tiny, hot_budget);
    sweep(&unbounded, &HOT); // warm both caches outside the timing loop
    sweep(&bounded, &HOT);
    group.bench_function("hit_heavy/unbounded", |b| {
        b.iter(|| sweep(&unbounded, &HOT))
    });
    group.bench_function("hit_heavy/bounded", |b| b.iter(|| sweep(&bounded, &HOT)));

    // Churn-heavy: budget holds about a third of the cycled working set,
    // so the bounded registry evicts and recomputes continuously while
    // the unbounded one serves hits after its first lap.
    let churn_budget = working_set_bytes(&CHURN) / 3;
    let unbounded = Registry::new(Scale::Tiny);
    let bounded = Registry::with_budget(Scale::Tiny, churn_budget);
    sweep(&unbounded, &CHURN);
    sweep(&bounded, &CHURN);
    group.bench_function("churn_heavy/unbounded", |b| {
        b.iter(|| sweep(&unbounded, &CHURN))
    });
    group.bench_function("churn_heavy/bounded", |b| {
        b.iter(|| sweep(&bounded, &CHURN))
    });

    group.finish();
    let s = bounded.stats();
    assert!(s.evictions > 0, "churn-heavy bounded run must evict: {s:?}");
    println!(
        "# churn-heavy bounded registry: budget={} bytes, evictions={}, \
         graph_builds={}, misses={}",
        churn_budget, s.evictions, s.graph_builds, s.misses
    );
}

criterion_group!(benches, bench_registry_bound);
criterion_main!(benches);
