//! Figures 4/5 microbenchmark: MIS-2 across worker-pool sizes.

use mis2_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis2_core::mis2;
use mis2_graph::gen;
use mis2_prim::pool::{max_threads, with_pool};

fn bench_scaling(c: &mut Criterion) {
    let g = gen::laplace3d(30, 30, 30);
    let mut group = c.benchmark_group("fig4_strong_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let mut threads = vec![1usize];
    if max_threads() > 1 {
        threads.push(max_threads());
    }
    for &n in &threads {
        group.bench_with_input(BenchmarkId::new("laplace3d_30", n), &n, |b, &n| {
            b.iter(|| with_pool(n, || mis2(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
