//! Table VI microbenchmark: point vs cluster multicolor SGS apply and
//! setup.

use mis2_bench::criterion::{criterion_group, criterion_main, Criterion};
use mis2_coarsen::AggScheme;
use mis2_solver::{ClusterMcSgs, PointMcSgs, Preconditioner};

fn bench_gs(c: &mut Criterion) {
    let a = mis2_sparse::gen::laplace3d_matrix(20, 20, 20);
    let n = a.nrows();
    let r = vec![1.0; n];
    let mut group = c.benchmark_group("table6_sgs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("point_setup", |b| b.iter(|| PointMcSgs::new(&a, 0)));
    group.bench_function("cluster_setup", |b| {
        b.iter(|| ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0))
    });
    let point = PointMcSgs::new(&a, 0);
    let cluster = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0);
    let mut z = vec![0.0; n];
    group.bench_function("point_apply", |b| b.iter(|| point.apply(&r, &mut z)));
    group.bench_function("cluster_apply", |b| b.iter(|| cluster.apply(&r, &mut z)));
    group.finish();
}

criterion_group!(benches, bench_gs);
criterion_main!(benches);
