//! Wire-protocol throughput ladder: blocking v1 lines, pipelined v2
//! tagged text frames, and binary v3 frames with interned response bytes,
//! all against the *same* server process.
//!
//! The workload is deliberately the smallest the service can answer — a
//! `MIS2` request whose artifact is already cached — so the measurement
//! isolates protocol round-trip cost: syscalls, scheduler hand-off, and
//! the one-in-flight stall of v1. A blocking client pays a full
//! write→schedule→compute→read round trip per request; an N-deep window
//! amortizes that across N in-flight requests (cf. Redis pipelining), so
//! requests/sec should rise steeply with window depth until the server's
//! reader saturates. v3 then removes the remaining per-request work on
//! the server: a cache hit is answered inline from the reader thread with
//! interned bytes (no scheduler hop, no serialization, no text parse of
//! the response tag), and the writer coalesces bursts into vectored
//! writes.
//!
//! Acceptance shape (asserted by eye in CI logs, measured in the e2e
//! suite): the 64-deep v2 window sustains at least 3x the requests/sec of
//! blocking v1, and the 64-deep v3 window at least 3x v2's. The run
//! prints explicit ratio lines after the criterion output to make those
//! checks one `grep` away, and writes the full protocol × window matrix
//! as `BENCH_svc.json` (override the path with `BENCH_SVC_JSON=`) for the
//! CI artifact upload. Schema 2 adds client-observed p50/p95/p99 per
//! cell and the metrics-recording overhead (`svc_pipeline/metrics:` line,
//! target ≤ 2% on the cache-hit v3-w64 hot path). Schema 3 labels every
//! cell with the server's I/O backend and adds an epoll-vs-threads A/B
//! at v3-w64 (`svc_pipeline/io_backend:` line, target >= 0.95x — the
//! readiness loop buys connection scale and must not cost the hot path
//! more than 5%; measured it is in fact ~1.35x *faster*, the per-conn
//! writer thread's channel hand-off being the cost it sheds).

use mis2_bench::criterion::{criterion_group, criterion_main, Criterion};
use mis2_svc::client::{Client, PipelinedClient, V3Client};
use mis2_svc::shard::{route, RouterConfig};
use mis2_svc::{server, ServerConfig, ServerHandle};
use std::io::Write as _;
use std::time::Instant;

/// Requests per measured batch — one window's worth at the deepest
/// setting, and the same count issued one-at-a-time over v1.
const BATCH: usize = 64;

/// The small-request workload: MIS-2 on a suite graph that the warm-up
/// interned and computed once, so every measured request is a cache hit.
/// af_shell7's tiny-scale MIS-2 set is small (~250 vertices), so the
/// per-request body render (fingerprint over the result) is sub-µs and
/// the measurement stays protocol-bound.
const REQUEST: &str = "MIS2 af_shell7";

fn batch_lines() -> Vec<&'static str> {
    vec![REQUEST; BATCH]
}

/// The sharded-leg workload: cache-hot `MIS2` over six differently-owned
/// suite graphs, so a multi-shard cluster actually spreads the batch
/// across its shards instead of funneling one key to one owner.
fn shard_batch_lines() -> Vec<String> {
    let graphs = [
        "ecology2",
        "parabolic_fem",
        "thermal2",
        "tmt_sym",
        "apache2",
        "StocF-1465",
    ];
    (0..BATCH)
        .map(|i| format!("MIS2 {}", graphs[i % graphs.len()]))
        .collect()
}

/// Spin up an `n`-shard cluster behind a router; returns the handles to
/// keep alive plus the router, whose address the client dials.
fn spawn_cluster(n: usize) -> (Vec<ServerHandle>, mis2_svc::shard::RouterHandle) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|_| {
            server::serve(ServerConfig {
                threads: 2,
                ..Default::default()
            })
            .unwrap()
        })
        .collect();
    let addrs: Vec<String> = shards.iter().map(|h| h.addr().to_string()).collect();
    let router = route(RouterConfig {
        shards: addrs,
        ..Default::default()
    })
    .unwrap();
    (shards, router)
}

/// Mean seconds per batch of `BATCH` requests over `rounds` rounds.
fn time_batches(rounds: usize, mut run: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..rounds {
        run();
    }
    start.elapsed().as_secs_f64() / rounds as f64
}

/// One measured cell of the protocol × window matrix, with
/// client-observed latency percentiles over every measured request.
struct Cell {
    proto: &'static str,
    window: usize,
    io_backend: &'static str,
    rps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Nearest-rank p50/p95/p99 in microseconds over raw nanosecond samples.
fn pcts(mut ns: Vec<u64>) -> (f64, f64, f64) {
    ns.sort_unstable();
    let p = |q| mis2_svc::metrics::percentile_ns(&ns, q) as f64 / 1_000.0;
    (p(0.50), p(0.95), p(0.99))
}

/// Hand-rolled JSON (the workspace is std-only): an array of
/// `{proto, window, io_backend, req_per_s, p50_us, p95_us, p99_us}`
/// objects plus the batch size, the acceptance ratios, and the
/// metrics-recording overhead. Schema 3 = schema 2 plus the per-cell
/// `io_backend` label and `ratio_v3_w64_epoll_over_threads`; every
/// schema-2 field is unchanged.
fn write_bench_json(
    cells: &[Cell],
    v2_over_v1: f64,
    v3_over_v2: f64,
    shard3_over_shard1: f64,
    metrics_overhead_pct: f64,
    epoll_over_threads: f64,
) -> std::io::Result<String> {
    let path = std::env::var("BENCH_SVC_JSON").unwrap_or_else(|_| "BENCH_svc.json".to_string());
    let mut out = String::from("{\n  \"bench\": \"svc_pipeline\",\n  \"schema\": 3,\n");
    out.push_str(&format!("  \"batch\": {BATCH},\n"));
    out.push_str(&format!(
        "  \"ratio_v2_w64_over_v1\": {v2_over_v1:.3},\n  \"ratio_v3_w64_over_v2_w64\": {v3_over_v2:.3},\n"
    ));
    out.push_str(&format!(
        "  \"ratio_v3_shard3_over_shard1\": {shard3_over_shard1:.3},\n"
    ));
    out.push_str(&format!(
        "  \"metrics_overhead_pct\": {metrics_overhead_pct:.2},\n"
    ));
    out.push_str(&format!(
        "  \"ratio_v3_w64_epoll_over_threads\": {epoll_over_threads:.3},\n"
    ));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"proto\": \"{}\", \"window\": {}, \"io_backend\": \"{}\", \
             \"req_per_s\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            c.proto,
            c.window,
            c.io_backend,
            c.rps,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::File::create(&path)?.write_all(out.as_bytes())?;
    Ok(path)
}

fn bench_svc_pipeline(c: &mut Criterion) {
    let handle = server::serve(ServerConfig {
        threads: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Warm-up: intern the graph, cache the artifact, and render the
    // response bytes once, so every measured request is a cache hit.
    let mut blocking = Client::connect(addr).unwrap();
    assert!(blocking.request(REQUEST).unwrap().starts_with("OK "));

    let lines = batch_lines();
    let mut group = c.benchmark_group("svc_pipeline");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("64_requests/blocking_v1", |b| {
        b.iter(|| {
            for line in &lines {
                blocking.request(line).unwrap();
            }
        })
    });

    for window in [1usize, 8, 64] {
        let mut pipelined = PipelinedClient::connect(addr, window).unwrap();
        assert_eq!(pipelined.window(), window);
        group.bench_function(format!("64_requests/pipelined_w{window}").as_str(), |b| {
            b.iter(|| pipelined.request_many(&lines).unwrap())
        });
    }

    for window in [1usize, 8, 64] {
        let mut v3 = V3Client::connect(addr, window).unwrap();
        assert_eq!(v3.window(), window);
        group.bench_function(format!("64_requests/v3_w{window}").as_str(), |b| {
            b.iter(|| v3.request_many(&lines).unwrap())
        });
    }
    group.finish();

    // Explicit acceptance ratios: requests/sec per protocol at the window
    // ladder, fresh connections, fixed round count. The same numbers feed
    // the BENCH_svc.json artifact.
    let rounds = 20;
    let mut cells: Vec<Cell> = Vec::new();
    // The ladder's server uses the platform-default backend; label every
    // cell with what actually ran (epoll on Linux, threads elsewhere).
    let main_backend = mis2_svc::IoBackend::default().effective().name();

    let mut v1 = Client::connect(addr).unwrap();
    let mut v1_lat: Vec<u64> = Vec::new();
    let v1_batch = time_batches(rounds, || {
        for line in &lines {
            let t = Instant::now();
            v1.request(line).unwrap();
            v1_lat.push(t.elapsed().as_nanos() as u64);
        }
    });
    let (p50_us, p95_us, p99_us) = pcts(v1_lat);
    cells.push(Cell {
        proto: "v1",
        window: 1,
        io_backend: main_backend,
        rps: BATCH as f64 / v1_batch,
        p50_us,
        p95_us,
        p99_us,
    });

    for window in [1usize, 8, 64] {
        let mut v2 = PipelinedClient::connect(addr, window).unwrap();
        let mut lat: Vec<u64> = Vec::new();
        let batch = time_batches(rounds, || {
            v2.request_many(&lines).unwrap();
            lat.extend_from_slice(v2.last_latencies_ns());
        });
        let (p50_us, p95_us, p99_us) = pcts(lat);
        cells.push(Cell {
            proto: "v2",
            window,
            io_backend: main_backend,
            rps: BATCH as f64 / batch,
            p50_us,
            p95_us,
            p99_us,
        });
    }

    for window in [1usize, 8, 64] {
        let mut v3 = V3Client::connect(addr, window).unwrap();
        let mut lat: Vec<u64> = Vec::new();
        let batch = time_batches(rounds, || {
            v3.request_many(&lines).unwrap();
            lat.extend_from_slice(v3.last_latencies_ns());
        });
        let (p50_us, p95_us, p99_us) = pcts(lat);
        cells.push(Cell {
            proto: "v3",
            window,
            io_backend: main_backend,
            rps: BATCH as f64 / batch,
            p50_us,
            p95_us,
            p99_us,
        });
    }

    // Sharded leg: the same 64-request cache-hot batch, spread over six
    // graphs, through a router fronting 1 and then 3 shard processes.
    // Aggregate req/s should scale with shard count on multi-core hosts;
    // on a single-CPU runner the cells are informational (recorded, not
    // asserted) — the batch still proves the routed path end to end.
    let shard_lines = shard_batch_lines();
    for nshards in [1usize, 3] {
        let (shards, router) = spawn_cluster(nshards);
        let mut client = V3Client::connect(router.addr(), 64).unwrap();
        // Warm every shard: first pass computes + interns per owner.
        let warm = client.request_many(&shard_lines).unwrap();
        assert!(warm.iter().all(|r| r.starts_with("OK ")));
        let mut lat: Vec<u64> = Vec::new();
        let batch = time_batches(rounds, || {
            client.request_many(&shard_lines).unwrap();
            lat.extend_from_slice(client.last_latencies_ns());
        });
        let (p50_us, p95_us, p99_us) = pcts(lat);
        cells.push(Cell {
            proto: if nshards == 1 {
                "v3_shard1"
            } else {
                "v3_shard3"
            },
            window: 64,
            io_backend: main_backend,
            rps: BATCH as f64 / batch,
            p50_us,
            p95_us,
            p99_us,
        });
        client.quit().unwrap();
        router.shutdown();
        for h in shards {
            h.shutdown();
        }
    }

    let rps = |proto: &str, window: usize| {
        cells
            .iter()
            .find(|c| c.proto == proto && c.window == window)
            .map(|c| c.rps)
            .unwrap()
    };
    let (v1_rps, v2_rps, v3_rps) = (rps("v1", 1), rps("v2", 64), rps("v3", 64));
    println!(
        "svc_pipeline/acceptance: blocking_v1 {:.0} req/s, pipelined_w64 {:.0} req/s, \
         ratio {:.2}x (target >= 3x)",
        v1_rps,
        v2_rps,
        v2_rps / v1_rps
    );
    println!(
        "svc_pipeline/acceptance: pipelined_w64 {:.0} req/s, v3_w64 {:.0} req/s, \
         ratio {:.2}x (target >= 3x)",
        v2_rps,
        v3_rps,
        v3_rps / v2_rps
    );

    let (s1, s3) = (rps("v3_shard1", 64), rps("v3_shard3", 64));
    println!(
        "svc_pipeline/shards: v3_shard1 {s1:.0} req/s, v3_shard3 {s3:.0} req/s, \
         scale {:.2}x (informational on single-CPU hosts)",
        s3 / s1
    );

    // Metrics-recording overhead: the identical cache-hot v3-w64 batch
    // against a second server whose recording is compiled in but turned
    // off (`metrics: false` — the reader then skips even the clock
    // reads). The two sides alternate batch-by-batch *within* each
    // round, so scheduler noise and machine drift — which live at
    // millisecond scale on a shared host — hit both sides equally in
    // expectation; a pass's ratio of summed times is then drift-free,
    // and the median over passes is the reported overhead.
    let off_handle = server::serve(ServerConfig {
        threads: 2,
        metrics: false,
        ..Default::default()
    })
    .unwrap();
    let mut warm_off = Client::connect(off_handle.addr()).unwrap();
    assert!(warm_off.request(REQUEST).unwrap().starts_with("OK "));
    let mut on = V3Client::connect(addr, 64).unwrap();
    let mut off = V3Client::connect(off_handle.addr(), 64).unwrap();
    on.request_many(&lines).unwrap();
    off.request_many(&lines).unwrap();
    let ab_rounds = 400;
    let (mut on_best, mut off_best) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::new();
    for _pass in 0..7 {
        let (mut t_on, mut t_off) = (0.0f64, 0.0f64);
        for _ in 0..ab_rounds {
            let t = Instant::now();
            on.request_many(&lines).unwrap();
            t_on += t.elapsed().as_secs_f64();
            let t = Instant::now();
            off.request_many(&lines).unwrap();
            t_off += t.elapsed().as_secs_f64();
        }
        on_best = on_best.min(t_on / ab_rounds as f64);
        off_best = off_best.min(t_off / ab_rounds as f64);
        ratios.push(t_on / t_off);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let metrics_overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    println!(
        "svc_pipeline/metrics: v3_w64 recording-on {:.0} req/s, recording-off {:.0} req/s, \
         overhead {metrics_overhead_pct:+.2}% (target <= 2%)",
        BATCH as f64 / on_best,
        BATCH as f64 / off_best,
    );
    off_handle.shutdown();

    // I/O-backend A/B: the identical cache-hot v3-w64 batch against an
    // explicit epoll server and an explicit thread-per-conn server,
    // alternating batch-by-batch within each pass (same drift-free
    // scheme as the metrics A/B). The readiness loop exists for
    // connection scale; this cell pins down what it costs (or saves) on
    // the single-connection hot path — acceptance is no more than a 5%
    // regression (ratio >= 0.95x). Measured it *wins* ~1.35x: the loop
    // stages completions straight into the vectored batch instead of
    // paying the per-conn writer thread's channel hand-off and wakeup.
    let epoll_handle = server::serve(ServerConfig {
        threads: 2,
        io_backend: mis2_svc::IoBackend::Epoll,
        ..Default::default()
    })
    .unwrap();
    let threads_handle = server::serve(ServerConfig {
        threads: 2,
        io_backend: mis2_svc::IoBackend::Threads,
        ..Default::default()
    })
    .unwrap();
    for h in [&epoll_handle, &threads_handle] {
        let mut warm = Client::connect(h.addr()).unwrap();
        assert!(warm.request(REQUEST).unwrap().starts_with("OK "));
    }
    let mut ev = V3Client::connect(epoll_handle.addr(), 64).unwrap();
    let mut th = V3Client::connect(threads_handle.addr(), 64).unwrap();
    ev.request_many(&lines).unwrap();
    th.request_many(&lines).unwrap();
    let (mut ev_best, mut th_best) = (f64::INFINITY, f64::INFINITY);
    let mut ev_lat: Vec<u64> = Vec::new();
    let mut th_lat: Vec<u64> = Vec::new();
    let mut ab_ratios = Vec::new();
    for _pass in 0..7 {
        let (mut t_ev, mut t_th) = (0.0f64, 0.0f64);
        for _ in 0..ab_rounds {
            let t = Instant::now();
            ev.request_many(&lines).unwrap();
            t_ev += t.elapsed().as_secs_f64();
            ev_lat.extend_from_slice(ev.last_latencies_ns());
            let t = Instant::now();
            th.request_many(&lines).unwrap();
            t_th += t.elapsed().as_secs_f64();
            th_lat.extend_from_slice(th.last_latencies_ns());
        }
        ev_best = ev_best.min(t_ev / ab_rounds as f64);
        th_best = th_best.min(t_th / ab_rounds as f64);
        // epoll req/s over threads req/s: >1 means the loop is faster.
        ab_ratios.push(t_th / t_ev);
    }
    ab_ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let epoll_over_threads = ab_ratios[ab_ratios.len() / 2];
    println!(
        "svc_pipeline/io_backend: v3_w64 epoll {:.0} req/s, threads {:.0} req/s, \
         ratio {epoll_over_threads:.3}x (target >= 0.95x)",
        BATCH as f64 / ev_best,
        BATCH as f64 / th_best,
    );
    let (p50_us, p95_us, p99_us) = pcts(ev_lat);
    cells.push(Cell {
        proto: "v3_ab",
        window: 64,
        // Off-Linux the epoll request degrades to threads; label what ran.
        io_backend: mis2_svc::IoBackend::Epoll.effective().name(),
        rps: BATCH as f64 / ev_best,
        p50_us,
        p95_us,
        p99_us,
    });
    let (p50_us, p95_us, p99_us) = pcts(th_lat);
    cells.push(Cell {
        proto: "v3_ab",
        window: 64,
        io_backend: "threads",
        rps: BATCH as f64 / th_best,
        p50_us,
        p95_us,
        p99_us,
    });
    epoll_handle.shutdown();
    threads_handle.shutdown();

    match write_bench_json(
        &cells,
        v2_rps / v1_rps,
        v3_rps / v2_rps,
        s3 / s1,
        metrics_overhead_pct,
        epoll_over_threads,
    ) {
        Ok(path) => println!("svc_pipeline/json: wrote {path}"),
        Err(e) => eprintln!("svc_pipeline/json: write failed: {e}"),
    }

    handle.shutdown();
}

criterion_group!(benches, bench_svc_pipeline);
criterion_main!(benches);
