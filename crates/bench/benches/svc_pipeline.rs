//! Wire-protocol throughput: the pipelined v2 client (tagged frames,
//! windowed, out-of-order completion) vs the blocking v1 client, against
//! the *same* server process.
//!
//! The workload is deliberately the smallest the service can answer — a
//! `MIS2` request whose artifact is already cached — so the measurement
//! isolates protocol round-trip cost: syscalls, scheduler hand-off, and
//! the one-in-flight stall of v1. A blocking client pays a full
//! write→schedule→compute→read round trip per request; an N-deep window
//! amortizes that across N in-flight requests (cf. Redis pipelining), so
//! requests/sec should rise steeply with window depth until the server's
//! reader or the single scheduler hand-off saturates.
//!
//! Acceptance shape (asserted by eye in CI logs, measured in the e2e
//! suite): the 64-deep window sustains at least 3x the requests/sec of
//! the blocking v1 client. The run prints an explicit ratio line after the
//! criterion output to make that check one `grep` away.

use mis2_bench::criterion::{criterion_group, criterion_main, Criterion};
use mis2_svc::client::{Client, PipelinedClient};
use mis2_svc::{server, ServerConfig};
use std::time::Instant;

/// Requests per measured batch — one v2 window's worth at the deepest
/// setting, and the same count issued one-at-a-time over v1.
const BATCH: usize = 64;

/// The small-request workload: MIS-2 on a suite graph that the warm-up
/// interned and computed once, so every measured request is a cache hit.
/// af_shell7's tiny-scale MIS-2 set is small (~250 vertices), so the
/// per-request body render (fingerprint over the result) is sub-µs and
/// the measurement stays protocol-bound.
const REQUEST: &str = "MIS2 af_shell7";

fn batch_lines() -> Vec<&'static str> {
    vec![REQUEST; BATCH]
}

/// Mean seconds per batch of `BATCH` requests over `rounds` rounds.
fn time_batches(rounds: usize, mut run: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..rounds {
        run();
    }
    start.elapsed().as_secs_f64() / rounds as f64
}

fn bench_svc_pipeline(c: &mut Criterion) {
    let handle = server::serve(ServerConfig {
        threads: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    // Warm-up: intern the graph and cache the artifact so the measured
    // requests never recompute anything.
    let mut blocking = Client::connect(addr).unwrap();
    assert!(blocking.request(REQUEST).unwrap().starts_with("OK "));

    let lines = batch_lines();
    let mut group = c.benchmark_group("svc_pipeline");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    group.bench_function("64_requests/blocking_v1", |b| {
        b.iter(|| {
            for line in &lines {
                blocking.request(line).unwrap();
            }
        })
    });

    for window in [1usize, 8, 64] {
        let mut pipelined = PipelinedClient::connect(addr, window).unwrap();
        assert_eq!(pipelined.window(), window);
        group.bench_function(format!("64_requests/pipelined_w{window}").as_str(), |b| {
            b.iter(|| pipelined.request_many(&lines).unwrap())
        });
    }
    group.finish();

    // Explicit acceptance ratio: 64-deep pipelined vs blocking v1
    // requests/sec on the same connection kinds as above, fresh
    // connections, fixed round count.
    let rounds = 20;
    let mut v1 = Client::connect(addr).unwrap();
    let v1_batch = time_batches(rounds, || {
        for line in &lines {
            v1.request(line).unwrap();
        }
    });
    let mut v2 = PipelinedClient::connect(addr, 64).unwrap();
    let v2_batch = time_batches(rounds, || {
        v2.request_many(&lines).unwrap();
    });
    let v1_rps = BATCH as f64 / v1_batch;
    let v2_rps = BATCH as f64 / v2_batch;
    println!(
        "svc_pipeline/acceptance: blocking_v1 {:.0} req/s, pipelined_w64 {:.0} req/s, \
         ratio {:.2}x (target >= 3x)",
        v1_rps,
        v2_rps,
        v2_rps / v1_rps
    );

    handle.shutdown();
}

criterion_group!(benches, bench_svc_pipeline);
criterion_main!(benches);
