//! Figure 7 / Table V microbenchmark: the aggregation schemes.

use mis2_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis2_coarsen::AggScheme;
use mis2_graph::gen;

fn bench_coarsening(c: &mut Criterion) {
    let g = gen::laplace3d(25, 25, 25);
    let mut group = c.benchmark_group("table5_aggregation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for scheme in AggScheme::all() {
        group.bench_with_input(
            BenchmarkId::new(scheme.label(), "laplace3d_25"),
            &g,
            |b, g| b.iter(|| scheme.aggregate(g, 0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coarsening);
criterion_main!(benches);
