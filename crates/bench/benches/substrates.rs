//! Substrate microbenchmarks: parallel scan, worklist compaction, SpMV,
//! SpGEMM — the kernels the paper's optimizations lean on.

use mis2_bench::criterion::{criterion_group, criterion_main, Criterion};
use mis2_prim::{compact, scan};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let data: Vec<usize> = (0..1_000_000).map(|i| i % 7).collect();
    group.bench_function("exclusive_scan_1M", |b| {
        b.iter(|| scan::exclusive_scan(&data))
    });

    let items: Vec<u32> = (0..1_000_000).collect();
    group.bench_function("par_filter_1M", |b| {
        b.iter(|| compact::par_filter(&items, |&x| x % 3 == 0))
    });

    let a = mis2_sparse::gen::laplace3d_matrix(40, 40, 40);
    let x = vec![1.0; a.nrows()];
    group.bench_function("spmv_laplace3d_40", |b| b.iter(|| a.spmv(&x)));

    let small = mis2_sparse::gen::laplace3d_matrix(12, 12, 12);
    group.bench_function("spgemm_a_squared", |b| {
        b.iter(|| mis2_sparse::spgemm(&small, &small))
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
