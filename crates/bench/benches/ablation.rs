//! Ablation microbenchmarks for the design choices DESIGN.md calls out:
//! SIMD chunk gating, packed vs unpacked tuples at different degree
//! regimes, AMG smoother choice, and strength-filtered vs raw aggregation.

use mis2_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis2_core::{mis2_with_config, Mis2Config, SimdMode};
use mis2_graph::gen;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Packed vs unpacked across degree regimes (low-degree 2D vs
    // high-degree elasticity): the packing win grows with traffic.
    let graphs = vec![
        ("low_degree", gen::laplace2d(120, 120)),
        ("high_degree", gen::elasticity3d(8, 8, 8, 3)),
    ];
    for (name, g) in &graphs {
        for (label, packed) in [("unpacked", false), ("packed", true)] {
            let cfg = Mis2Config {
                packed,
                simd: SimdMode::Off,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, name), g, |b, g| {
                b.iter(|| mis2_with_config(g, &cfg))
            });
        }
    }

    // SIMD gating: forced on vs auto vs off on a high-degree graph.
    let g = gen::elasticity3d(8, 8, 8, 3);
    for (label, simd) in [
        ("simd_off", SimdMode::Off),
        ("simd_auto", SimdMode::Auto),
        ("simd_on", SimdMode::On),
    ] {
        let cfg = Mis2Config {
            simd,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new(label, "elasticity"), &g, |b, g| {
            b.iter(|| mis2_with_config(g, &cfg))
        });
    }

    // AMG smoother choice.
    use mis2_solver::{pcg, AmgConfig, AmgHierarchy, SmootherKind, SolveOpts};
    let a = mis2_sparse::gen::laplace3d_matrix(14, 14, 14);
    let b_rhs = vec![1.0; a.nrows()];
    for (label, smoother) in [
        ("jacobi", SmootherKind::Jacobi),
        ("chebyshev", SmootherKind::Chebyshev),
    ] {
        group.bench_function(BenchmarkId::new("amg_smoother", label), |bch| {
            bch.iter(|| {
                let amg = AmgHierarchy::build(
                    &a,
                    &AmgConfig {
                        min_coarse_size: 100,
                        smoother,
                        ..Default::default()
                    },
                );
                pcg(
                    &a,
                    &b_rhs,
                    &amg,
                    &SolveOpts {
                        tol: 1e-10,
                        max_iters: 200,
                    },
                )
            })
        });
    }

    // Strength filtering cost on an anisotropic operator.
    let aniso = mis2_coarsen::anisotropic2d_matrix(60, 60, 0.01);
    group.bench_function("strength_filter_60x60", |b| {
        b.iter(|| mis2_coarsen::strength_graph(&aniso, 0.1))
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
