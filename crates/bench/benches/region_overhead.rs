//! Region-dispatch overhead: spawn-per-region vs the persistent parked
//! pool.
//!
//! Before the persistent pool, every parallel region paid
//! `std::thread::scope` — one OS thread creation and join per worker per
//! region. This bench reconstructs that backend locally and races it
//! against the pool-backed `par` layer on identical block decompositions,
//! across region sizes from "barely parallel" to large, plus a
//! solver-shaped workload of many consecutive small regions (the pattern
//! of Gauss-Seidel sweeps and CG vector updates where per-region overhead
//! dominates).

use mis2_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis2_prim::hash::splitmix64;
use mis2_prim::{par, pool};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Workers per region for both dispatch strategies.
const TEAM: usize = 4;

/// The block size the `par` layer would pick for `n` items on this team
/// (mirrors its adaptive decomposition so both strategies do identical
/// work per block).
fn block_for(n: usize) -> usize {
    n.div_ceil(TEAM * 4).max(256)
}

/// Per-block body shared by both strategies: hash-sum a block of indices
/// into its own output slot (disjoint writes, a few ns per element).
fn block_sum(lo: usize, hi: usize, slot: &AtomicU64) {
    let mut acc = 0u64;
    for i in lo..hi {
        acc = acc.wrapping_add(splitmix64(i as u64));
    }
    slot.store(acc, Ordering::Relaxed);
}

/// The pre-pool backend, reconstructed: spawn scoped threads for every
/// region, workers claiming the same fixed blocks from an atomic counter.
fn spawn_per_region(n: usize, out: &[AtomicU64]) {
    let block = block_for(n);
    let nblocks = n.div_ceil(block);
    let next = AtomicUsize::new(0);
    let drain = || loop {
        let b = next.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        block_sum(b * block, (b * block + block).min(n), &out[b]);
    };
    std::thread::scope(|s| {
        for _ in 1..TEAM.min(nblocks) {
            s.spawn(drain);
        }
        drain();
    });
}

/// The same region through the `par` layer: blocks drained by the warm
/// parked pool.
fn pooled_region(n: usize, out: &[AtomicU64]) {
    let block = block_for(n);
    par::for_chunks(&vec![(); n][..], block, |b, chunk| {
        let lo = b * block;
        block_sum(lo, lo + chunk.len(), &out[b]);
    });
}

fn bench_region_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_overhead");
    group.sample_size(40);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Single-region latency across region sizes. On small regions the
    // dispatch cost *is* the runtime, which is where the parked pool must
    // win; on large regions both converge to the memory-bound work.
    for &n in &[4_096usize, 32_768, 262_144, 1_048_576] {
        let out: Vec<AtomicU64> = (0..n.div_ceil(256)).map(|_| AtomicU64::new(0)).collect();
        group.bench_with_input(BenchmarkId::new("spawn_per_region", n), &n, |b, &n| {
            b.iter(|| spawn_per_region(n, &out))
        });
        group.bench_with_input(BenchmarkId::new("parked_pool", n), &n, |b, &n| {
            b.iter(|| pool::with_pool(TEAM, || pooled_region(n, &out)))
        });
    }

    // Solver-shaped workload: 100 consecutive small regions per iteration,
    // the shape of multicolor Gauss-Seidel sweeps and CG vector kernels.
    let n = 8_192usize;
    let out: Vec<AtomicU64> = (0..n.div_ceil(256)).map(|_| AtomicU64::new(0)).collect();
    group.bench_function("solver_sweep_100x8k/spawn_per_region", |b| {
        b.iter(|| {
            for _ in 0..100 {
                spawn_per_region(n, &out);
            }
        })
    });
    group.bench_function("solver_sweep_100x8k/parked_pool", |b| {
        b.iter(|| {
            pool::with_pool(TEAM, || {
                for _ in 0..100 {
                    pooled_region(n, &out);
                }
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_region_overhead);
criterion_main!(benches);
