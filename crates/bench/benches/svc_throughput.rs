//! Service throughput: the batching scheduler (few warm leaders, each on a
//! pool sub-team) vs the naive one-team-per-request strategy (an OS thread
//! per request, each opening full-width regions).
//!
//! The workload is 16 concurrent jobs — the shape of the e2e test and of a
//! bursty request mix (Blelloch et al.: MIS work per request is small) —
//! over four small graphs. Caching is deliberately bypassed (`ops::compute`
//! directly, no registry) so both strategies pay the full compute every
//! time: the comparison isolates the *scheduling* strategy, not the cache.
//!
//! Expected shape: the batched scheduler meets or beats the naive baseline
//! because K leaders × (threads/K)-wide sub-teams keep the machine busy
//! without oversubscription, while 16 simultaneous full-width leaders
//! fight for the same parked workers and, once the pool is exhausted,
//! fall back to inline drains.

use mis2_bench::criterion::{criterion_group, criterion_main, Criterion};
use mis2_graph::CsrGraph;
use mis2_prim::pool;
use mis2_svc::ops::{self, OpKey};
use mis2_svc::sched::{SchedConfig, Scheduler};
use mis2_svc::Method;
use std::sync::Arc;

/// Concurrent jobs per round — matches the e2e test's client count.
const JOBS: usize = 16;

/// The job mix: one op per job, round-robin over graphs and ops.
fn job_specs(graphs: &[Arc<CsrGraph>]) -> Vec<(Arc<CsrGraph>, OpKey)> {
    let ops = [
        OpKey::Mis2,
        OpKey::Coarsen { levels: 2 },
        OpKey::Solve { method: Method::Cg },
        OpKey::Mis2,
    ];
    (0..JOBS)
        .map(|i| {
            (
                Arc::clone(&graphs[i % graphs.len()]),
                ops[i / graphs.len() % ops.len()].clone(),
            )
        })
        .collect()
}

/// Naive strategy: one OS thread per request, every one opening regions at
/// the full machine width.
fn one_team_per_request(specs: &[(Arc<CsrGraph>, OpKey)]) {
    std::thread::scope(|s| {
        for (g, op) in specs {
            s.spawn(move || {
                let _ = ops::compute(g, op);
            });
        }
    });
}

/// Batched strategy: submit all requests to the scheduler's bounded queue;
/// its K workers run them on (threads/K)-wide sub-teams.
fn batched_scheduler(sched: &Scheduler, specs: &[(Arc<CsrGraph>, OpKey)]) {
    let handles: Vec<_> = specs
        .iter()
        .map(|(g, op)| {
            let (g, op) = (Arc::clone(g), op.clone());
            sched.submit(Box::new(move || {
                let _ = ops::compute(&g, &op);
                ops::Response::ok_text(String::new())
            }))
        })
        .collect();
    for h in handles {
        h.wait();
    }
}

fn bench_svc_throughput(c: &mut Criterion) {
    let graphs: Vec<Arc<CsrGraph>> = vec![
        Arc::new(mis2_graph::gen::laplace2d(64, 64)),
        Arc::new(mis2_graph::gen::laplace3d(12, 12, 12)),
        Arc::new(mis2_graph::gen::erdos_renyi(3000, 12_000, 5)),
        Arc::new(mis2_graph::gen::rmat(11, 8, 0.57, 0.19, 0.19, 7)),
    ];
    let specs = job_specs(&graphs);
    let threads = pool::max_threads();
    let sched = Scheduler::new(SchedConfig {
        threads,
        workers: 4.min(threads),
        queue_cap: JOBS,
    });

    let mut group = c.benchmark_group("svc_throughput");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("16_jobs/one_team_per_request", |b| {
        b.iter(|| one_team_per_request(&specs))
    });
    group.bench_function("16_jobs/batched_scheduler", |b| {
        b.iter(|| batched_scheduler(&sched, &specs))
    });

    group.finish();
    sched.shutdown();
}

criterion_group!(benches, bench_svc_throughput);
criterion_main!(benches);
