//! Figure 6 / Table IV microbenchmark: Algorithm 1 vs the Bell (CUSP /
//! ViennaCL) baseline.

use mis2_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis2_core::{bell_mis2, mis2};
use mis2_graph::{suite, Scale};

fn bench_vs_baseline(c: &mut Criterion) {
    let graphs = vec![
        ("Laplace3D_100", suite::build("Laplace3D_100", Scale::Tiny)),
        ("af_shell7", suite::build("af_shell7", Scale::Tiny)),
        ("ecology2", suite::build("ecology2", Scale::Tiny)),
    ];
    let mut group = c.benchmark_group("fig6_vs_cusp");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, g) in &graphs {
        group.bench_with_input(BenchmarkId::new("kk_mis2", name), g, |b, g| {
            b.iter(|| mis2(g))
        });
        group.bench_with_input(BenchmarkId::new("cusp_bell", name), g, |b, g| {
            b.iter(|| bell_mis2(g, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_baseline);
criterion_main!(benches);
