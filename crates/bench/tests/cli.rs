//! End-to-end tests of the `mis2cli` binary surface.

use std::process::Command;

fn mis2cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_mis2cli"))
        .args(args)
        .output()
        .expect("failed to launch mis2cli")
}

#[test]
fn unknown_workload_prints_usage_and_exits_nonzero() {
    let out = mis2cli(&["mis2", "--workload", "definitely_not_a_matrix"]);
    assert!(!out.status.success());
    assert_ne!(
        out.status.code(),
        Some(101),
        "an unknown workload must exit cleanly, not panic"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown suite workload: definitely_not_a_matrix"),
        "stderr was: {err}"
    );
    // The message must list the valid workloads so the user can recover.
    for name in ["af_shell7", "ecology2", "Laplace3D_100", "tmt_sym"] {
        assert!(err.contains(name), "stderr must list {name}; was: {err}");
    }
}

#[test]
fn no_input_exits_nonzero_with_workload_list() {
    let out = mis2cli(&["stats"]);
    assert!(!out.status.success());
    assert_ne!(out.status.code(), Some(101));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no input"), "stderr was: {err}");
    assert!(err.contains("ecology2"), "stderr was: {err}");
}

#[test]
fn known_workload_runs_successfully() {
    let out = mis2cli(&["mis2", "--workload", "ecology2", "--scale", "tiny"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|MIS-2|"), "stdout was: {stdout}");
    assert!(stdout.contains("verified"), "stdout was: {stdout}");
}

#[test]
fn threads_zero_is_rejected_with_exit_2() {
    let out = mis2cli(&[
        "mis2",
        "--workload",
        "ecology2",
        "--scale",
        "tiny",
        "--threads",
        "0",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--threads 0 must exit 2, not panic or run"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--threads"), "stderr was: {err}");
}

#[test]
fn threads_flag_caps_pool_and_preserves_results() {
    // The result line must be bitwise-identical at every cap — the CLI
    // surface of the workspace-wide determinism contract.
    let result_line = |threads: &str| {
        let out = mis2cli(&[
            "mis2",
            "--workload",
            "tmt_sym",
            "--scale",
            "tiny",
            "--threads",
            threads,
        ]);
        assert!(
            out.status.success(),
            "--threads {threads} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        stdout
            .lines()
            .find(|l| l.contains("|MIS-2|"))
            .unwrap_or_else(|| panic!("no result line in: {stdout}"))
            .to_string()
    };
    let one = result_line("1");
    for t in ["2", "8"] {
        assert_eq!(result_line(t), one, "MIS-2 result differs at --threads {t}");
    }
}
