//! Graph generators.
//!
//! The paper evaluates on two Galeri/Trilinos-generated structured problems
//! plus 15 SuiteSparse matrices:
//!
//! * `Laplace3D_100` — a 100^3 grid with a 7-point stencil ([`laplace3d`]);
//! * `Elasticity3D_60` — a 60^3 grid with a 27-point stencil and 3 degrees of
//!   freedom per grid point ([`elasticity3d`]).
//!
//! Those two are generated here *exactly* as in the paper. The SuiteSparse
//! matrices cannot be redistributed, so [`crate::suite`] composes the
//! generators in this module (structured stencils, jittered meshes, random
//! models) into stand-ins that match each matrix's published |V|, average
//! degree and maximum degree (Table II of the paper).
//!
//! All generators are deterministic functions of their parameters (random
//! models take an explicit seed and use splitmix64 streams, never global
//! RNG state).

use crate::csr::{CsrGraph, VertexId};
use mis2_prim::hash::splitmix64;
use mis2_prim::par;

/// 3D stencil offsets: the 6 face neighbors (7-point stencil minus center).
pub const OFFSETS_7PT: [(i32, i32, i32); 6] = [
    (-1, 0, 0),
    (1, 0, 0),
    (0, -1, 0),
    (0, 1, 0),
    (0, 0, -1),
    (0, 0, 1),
];

/// All 26 neighbors of the 27-point stencil (minus center).
pub fn offsets_27pt() -> Vec<(i32, i32, i32)> {
    let mut out = Vec::with_capacity(26);
    for dz in -1..=1 {
        for dy in -1..=1 {
            for dx in -1..=1 {
                if (dx, dy, dz) != (0, 0, 0) {
                    out.push((dx, dy, dz));
                }
            }
        }
    }
    out
}

/// Approximately the `k` offsets nearest the origin (excluding the origin),
/// ordered by squared distance then lexicographically, **always emitted in
/// `{o, -o}` pairs** so the resulting stencil graph is symmetric even when
/// `k` cuts through a distance shell. Odd `k` rounds up to the next even
/// count. Used by [`mesh3d`] to hit a target average degree.
pub fn offsets_nearest(k: usize) -> Vec<(i32, i32, i32)> {
    let r = 4i32; // radius 4 gives (9^3 - 1)/2 = 364 pairs, plenty
                  // Enumerate only the lexicographically-positive half space.
    let mut cand: Vec<(i32, (i32, i32, i32))> = Vec::new();
    for dz in -r..=r {
        for dy in -r..=r {
            for dx in -r..=r {
                let positive = dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0);
                if positive {
                    cand.push((dx * dx + dy * dy + dz * dz, (dx, dy, dz)));
                }
            }
        }
    }
    cand.sort_unstable();
    let pairs = k.div_ceil(2);
    assert!(pairs <= cand.len(), "offsets_nearest: k = {k} too large");
    let mut out = Vec::with_capacity(pairs * 2);
    for (_, (dx, dy, dz)) in cand.into_iter().take(pairs) {
        out.push((dx, dy, dz));
        out.push((-dx, -dy, -dz));
    }
    out
}

#[inline]
fn grid_id(nx: usize, ny: usize, x: usize, y: usize, z: usize) -> VertexId {
    (x + nx * (y + ny * z)) as VertexId
}

/// General 3D stencil graph on an open (non-periodic) `nx x ny x nz` grid.
///
/// The offset list must be symmetric (contain `-o` for each `o`) for the
/// result to be undirected; all built-in offset sets are.
pub fn stencil3d(nx: usize, ny: usize, nz: usize, offsets: &[(i32, i32, i32)]) -> CsrGraph {
    let n = nx * ny * nz;
    let mut rows: Vec<Vec<VertexId>> = par::map_range(0..n, |v| {
        let x = v % nx;
        let y = (v / nx) % ny;
        let z = v / (nx * ny);
        let mut nbrs = Vec::with_capacity(offsets.len());
        for &(dx, dy, dz) in offsets {
            let (xx, yy, zz) = (
                x as i64 + dx as i64,
                y as i64 + dy as i64,
                z as i64 + dz as i64,
            );
            if xx >= 0
                && (xx as usize) < nx
                && yy >= 0
                && (yy as usize) < ny
                && zz >= 0
                && (zz as usize) < nz
            {
                nbrs.push(grid_id(nx, ny, xx as usize, yy as usize, zz as usize));
            }
        }
        nbrs.sort_unstable();
        nbrs
    });
    CsrGraph::from_rows_unchecked(n, &mut rows)
}

/// 7-point Laplacian grid graph — the paper's `Laplace3D` (Galeri
/// `Laplace3D`). `laplace3d(100, 100, 100)` is the exact `Laplace3D_100`
/// problem from Tables II/III/V.
///
/// ```
/// let g = mis2_graph::gen::laplace3d(10, 10, 10);
/// assert_eq!(g.num_vertices(), 1000);
/// assert_eq!(g.max_degree(), 6);
/// ```
pub fn laplace3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    stencil3d(nx, ny, nz, &OFFSETS_7PT)
}

/// 5-point 2D Laplacian grid graph.
pub fn laplace2d(nx: usize, ny: usize) -> CsrGraph {
    stencil3d(nx, ny, 1, &[(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0)])
}

/// 27-point stencil with `dof` degrees of freedom per grid point — the
/// paper's `Elasticity3D` (Galeri `Elasticity3D`, dof = 3): every dof of a
/// node is connected to every dof of all 27-stencil neighbor nodes
/// (including the other dofs of its own node, excluding itself).
/// `elasticity3d(60, 60, 60, 3)` is the exact `Elasticity3D_60` problem
/// (|V| = 648 000, avg degree just under 81).
pub fn elasticity3d(nx: usize, ny: usize, nz: usize, dof: usize) -> CsrGraph {
    let nodes = nx * ny * nz;
    let n = nodes * dof;
    let offsets = offsets_27pt();
    let mut rows: Vec<Vec<VertexId>> = par::map_range(0..n, |v| {
        let node = v / dof;
        let my_dof = v % dof;
        let x = node % nx;
        let y = (node / nx) % ny;
        let z = node / (nx * ny);
        let mut nbrs = Vec::with_capacity(27 * dof);
        // Other dofs of my own node.
        for d in 0..dof {
            if d != my_dof {
                nbrs.push((node * dof + d) as VertexId);
            }
        }
        for &(dx, dy, dz) in &offsets {
            let (xx, yy, zz) = (
                x as i64 + dx as i64,
                y as i64 + dy as i64,
                z as i64 + dz as i64,
            );
            if xx >= 0
                && (xx as usize) < nx
                && yy >= 0
                && (yy as usize) < ny
                && zz >= 0
                && (zz as usize) < nz
            {
                let nb = grid_id(nx, ny, xx as usize, yy as usize, zz as usize) as usize;
                for d in 0..dof {
                    nbrs.push((nb * dof + d) as VertexId);
                }
            }
        }
        nbrs.sort_unstable();
        nbrs
    });
    CsrGraph::from_rows_unchecked(n, &mut rows)
}

/// Periodic (torus) 3D stencil graph: like [`stencil3d`] but offsets wrap
/// around, so every vertex has the full stencil degree — useful for
/// boundary-free algorithmic studies (iteration counts, scaling laws).
pub fn torus3d(nx: usize, ny: usize, nz: usize, offsets: &[(i32, i32, i32)]) -> CsrGraph {
    assert!(
        nx >= 3 && ny >= 3 && nz >= 1,
        "torus needs >= 3 cells per periodic dim"
    );
    let n = nx * ny * nz;
    let mut rows: Vec<Vec<VertexId>> = par::map_range(0..n, |v| {
        let x = v % nx;
        let y = (v / nx) % ny;
        let z = v / (nx * ny);
        let mut nbrs: Vec<VertexId> = offsets
            .iter()
            .map(|&(dx, dy, dz)| {
                let xx = (x as i64 + dx as i64).rem_euclid(nx as i64) as usize;
                let yy = (y as i64 + dy as i64).rem_euclid(ny as i64) as usize;
                let zz = (z as i64 + dz as i64).rem_euclid(nz as i64) as usize;
                grid_id(nx, ny, xx, yy, zz)
            })
            .filter(|&w| w as usize != v)
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        nbrs
    });
    CsrGraph::from_rows_unchecked(n, &mut rows)
}

/// Path graph `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(VertexId, VertexId)> = (0..n.saturating_sub(1))
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Cycle graph.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<(VertexId, VertexId)> = (0..n - 1)
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    edges.push(((n - 1) as VertexId, 0));
    CsrGraph::from_edges(n, &edges)
}

/// Star graph: vertex 0 connected to all others.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(VertexId, VertexId)> = (1..n).map(|i| (0, i as VertexId)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Complete graph K_n.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Erdős–Rényi G(n, m): `m` distinct undirected edges drawn uniformly
/// (deterministically from `seed`).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2 || m == 0);
    let max_m = n * (n - 1) / 2;
    let m = m.min(max_m);
    let mut edges = std::collections::HashSet::with_capacity(m * 2);
    let mut ctr = 0u64;
    while edges.len() < m {
        let h = splitmix64(seed ^ splitmix64(ctr));
        ctr += 1;
        let u = (h % n as u64) as VertexId;
        let v = ((h >> 32) % n as u64) as VertexId;
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        edges.insert(e);
    }
    let edges: Vec<_> = {
        let mut v: Vec<_> = edges.into_iter().collect();
        v.sort_unstable();
        v
    };
    CsrGraph::from_edges(n, &edges)
}

/// Approximately d-regular random graph: ring edges (guaranteeing
/// connectivity) plus `(d-2)/2` random chords per vertex.
pub fn random_regular_ish(n: usize, d: usize, seed: u64) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * d / 2 + n);
    for i in 0..n {
        edges.push((i as VertexId, ((i + 1) % n) as VertexId));
    }
    let chords_per_vertex = d.saturating_sub(2) / 2;
    for i in 0..n {
        for c in 0..chords_per_vertex {
            let h = splitmix64(seed ^ splitmix64((i * 31 + c) as u64));
            let j = (h % n as u64) as usize;
            if j != i {
                edges.push((i as VertexId, j as VertexId));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// RMAT power-law generator (Graph500-style): `2^scale` vertices,
/// `edge_factor * 2^scale` edge samples with partition probabilities
/// `(a, b, c, 1-a-b-c)`.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let m = edge_factor * n;
    let edges: Vec<(VertexId, VertexId)> = par::map_range(0..m as u64, |e| {
        let mut u = 0usize;
        let mut v = 0usize;
        for lvl in 0..scale {
            let h = splitmix64(seed ^ splitmix64(e * 64 + lvl as u64));
            let r = (h >> 11) as f64 / (1u64 << 53) as f64;
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        (u as VertexId, v as VertexId)
    });
    CsrGraph::from_edges(n, &edges)
}

/// Mesh-like graph: a 3D box with the `base_deg` nearest-offset stencil,
/// plus `extra_frac` of vertices receiving `extra_deg` additional random
/// short-range edges (window `window`), giving FE-mesh-style degree
/// variance. `hub_count` vertices additionally become local hubs of degree
/// roughly `hub_deg` (to match published max-degree values).
#[allow(clippy::too_many_arguments)]
pub fn mesh3d(
    n_target: usize,
    base_deg: usize,
    extra_frac: f64,
    extra_deg: usize,
    window: usize,
    hub_count: usize,
    hub_deg: usize,
    seed: u64,
) -> CsrGraph {
    let side = (n_target as f64).cbrt().round().max(2.0) as usize;
    let (nx, ny) = (side, side);
    let nz = n_target.div_ceil(nx * ny).max(1);
    let n = nx * ny * nz;
    let offsets = offsets_nearest(base_deg);
    let g = stencil3d(nx, ny, nz, &offsets);
    if extra_frac <= 0.0 && hub_count == 0 {
        return g;
    }
    // Random local extras.
    let mut extra_edges: Vec<(VertexId, VertexId)> = Vec::new();
    let n_extra_vertices = (n as f64 * extra_frac) as usize;
    for k in 0..n_extra_vertices {
        let h = splitmix64(seed ^ splitmix64(k as u64));
        let v = (h % n as u64) as usize;
        for j in 0..extra_deg {
            let h2 = splitmix64(h ^ splitmix64(j as u64 + 7));
            let delta = (h2 % (2 * window as u64 + 1)) as i64 - window as i64;
            let u = v as i64 + delta;
            if u >= 0 && (u as usize) < n && u as usize != v {
                extra_edges.push((v as VertexId, u as VertexId));
            }
        }
    }
    // Hubs.
    for k in 0..hub_count {
        let h = splitmix64(seed ^ splitmix64(0xDEAD ^ k as u64));
        let v = (h % n as u64) as usize;
        for j in 0..hub_deg {
            let h2 = splitmix64(h ^ splitmix64(j as u64));
            let delta = (h2 % (4 * window as u64 + 1)) as i64 - 2 * window as i64;
            let u = v as i64 + delta;
            if u >= 0 && (u as usize) < n && u as usize != v {
                extra_edges.push((v as VertexId, u as VertexId));
            }
        }
    }
    merge_edges(&g, &extra_edges)
}

/// Union of an existing graph and extra undirected edges.
pub fn merge_edges(g: &CsrGraph, extra: &[(VertexId, VertexId)]) -> CsrGraph {
    let n = g.num_vertices();
    // Bucket extra edges (both directions) per vertex.
    let mut extra_per: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &(u, v) in extra {
        if u != v {
            extra_per[u as usize].push(v);
            extra_per[v as usize].push(u);
        }
    }
    let mut rows: Vec<Vec<VertexId>> = par::map_range(0..n, |v| {
        let mut r: Vec<VertexId> = g.neighbors(v as VertexId).to_vec();
        r.extend_from_slice(&extra_per[v]);
        r.sort_unstable();
        r.dedup();
        r
    });
    CsrGraph::from_rows_unchecked(n, &mut rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace3d_shape() {
        let g = laplace3d(4, 4, 4);
        assert_eq!(g.num_vertices(), 64);
        // Interior vertex has degree 6, corner has 3.
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.min_degree(), 3);
        g.validate_symmetric().unwrap();
        // Corner (0,0,0) connects to (1,0,0), (0,1,0), (0,0,1) = ids 1, 4, 16.
        assert_eq!(g.neighbors(0), &[1, 4, 16]);
    }

    #[test]
    fn laplace3d_100_matches_paper_stats() {
        // Paper Table II: Laplace3D_100 has |V| = 1e6, |E| = 6.94e6 nonzeros,
        // avg degree 6.94, max degree 7 (the paper's counts include the
        // diagonal; without it max interior degree is 6... check: avg 6.94
        // means ~6.94 entries/row INCLUDING diagonal: 5.94 off-diag. Our
        // structural graph stores off-diagonal only: 100^3 grid 7pt has
        // 6*100^3 - 6*100^2 directed edges = 5.94e6.
        let g = laplace3d(100, 100, 100);
        assert_eq!(g.num_vertices(), 1_000_000);
        assert_eq!(g.num_directed_edges(), 6 * 1_000_000 - 6 * 10_000);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn laplace2d_shape() {
        let g = laplace2d(3, 3);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.max_degree(), 4); // center vertex
        assert_eq!(g.min_degree(), 2); // corners
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn elasticity3d_shape() {
        let g = elasticity3d(4, 4, 4, 3);
        assert_eq!(g.num_vertices(), 64 * 3);
        // Interior node: 27 nodes x 3 dofs - self = 80.
        assert_eq!(g.max_degree(), 80);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn elasticity_avg_degree_near_paper() {
        // Paper: Elasticity3D_60 avg degree 78.33 (incl. diagonal), max 81.
        // Structure-only: avg ~77.3, max 80 on a smaller grid already.
        // On a 10^3 grid only half the nodes are interior, pulling the mean
        // down; it converges towards ~78 as the grid grows.
        let g = elasticity3d(10, 10, 10, 3);
        assert!(g.avg_degree() > 55.0 && g.avg_degree() < 81.0);
        let g20 = elasticity3d(20, 20, 20, 3);
        assert!(g20.avg_degree() > g.avg_degree());
    }

    #[test]
    fn path_cycle_star_complete() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(star(5).degree(0), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(complete(5).min_degree(), 4);
    }

    #[test]
    fn erdos_renyi_edge_count_and_determinism() {
        let g1 = erdos_renyi(100, 300, 42);
        let g2 = erdos_renyi(100, 300, 42);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_edges(), 300);
        g1.validate_symmetric().unwrap();
        let g3 = erdos_renyi(100, 300, 43);
        assert_ne!(g1, g3, "different seeds should differ");
    }

    #[test]
    fn erdos_renyi_caps_at_complete() {
        let g = erdos_renyi(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn random_regular_ish_degree() {
        let g = random_regular_ish(1000, 8, 7);
        let avg = g.avg_degree();
        assert!(avg > 6.0 && avg < 9.0, "avg degree {avg} out of range");
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 8, 0.57, 0.19, 0.19, 3);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 1000);
        g.validate_symmetric().unwrap();
        // Power-law: max degree much larger than average.
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn offsets_nearest_ordering() {
        let o = offsets_nearest(6);
        // First six are the face neighbors (distance^2 = 1).
        for off in &o {
            let d2 = off.0 * off.0 + off.1 * off.1 + off.2 * off.2;
            assert_eq!(d2, 1, "offset {off:?} not a face neighbor");
        }
        let o26 = offsets_nearest(26);
        assert_eq!(o26.len(), 26);
    }

    #[test]
    fn mesh3d_hits_degree_targets() {
        let g = mesh3d(8000, 18, 0.1, 4, 50, 5, 30, 99);
        let avg = g.avg_degree();
        assert!(avg > 16.0 && avg < 22.0, "avg {avg}");
        assert!(g.max_degree() >= 30, "max {}", g.max_degree());
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn stencil_symmetric_offsets_required() {
        // A symmetric offset set produces a symmetric graph even with
        // boundary clipping.
        let g = stencil3d(5, 4, 3, &offsets_nearest(10));
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn torus_is_regular() {
        // Periodic wrap removes boundary effects: every vertex has the
        // full stencil degree.
        let g = torus3d(5, 5, 5, &OFFSETS_7PT);
        assert_eq!(g.min_degree(), 6);
        assert_eq!(g.max_degree(), 6);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn torus_2d_slab() {
        let g = torus3d(6, 6, 1, &[(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0)]);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        g.validate_symmetric().unwrap();
        // Wrap edge exists: (0,0) adjacent to (5,0) = id 5.
        assert!(g.has_edge(0, 5));
    }

    #[test]
    fn torus_small_dims_dedup() {
        // nx = 3: offsets -1 and +1 from the same vertex hit distinct
        // neighbors; degree stays 6 with no duplicates.
        let g = torus3d(3, 3, 3, &OFFSETS_7PT);
        g.validate_symmetric().unwrap();
        assert_eq!(g.max_degree(), 6);
    }
}
