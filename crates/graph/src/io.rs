//! Matrix Market I/O.
//!
//! The paper's 15 non-synthetic matrices come from the SuiteSparse
//! collection, which distributes Matrix Market (`.mtx`) files. This module
//! reads the `matrix coordinate` format (real / integer / pattern; general
//! or symmetric) into a [`CsrGraph`] so the benchmarks can run on the real
//! inputs when they are available locally; the synthetic suite
//! ([`crate::suite`]) stands in otherwise.
//!
//! Reading a graph symmetrizes the pattern and drops the diagonal, matching
//! how KokkosKernels consumes these matrices for MIS-2.

use crate::csr::{CsrGraph, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    Io(std::io::Error),
    /// Malformed header or unsupported format variant.
    Format(String),
    /// Entry line failed to parse.
    Parse {
        line: usize,
        msg: String,
    },
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Format(m) => write!(f, "format error: {m}"),
            MmError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

/// Parsed Matrix Market data, pre-CSR: dimensions and (row, col, value)
/// triplets with symmetric entries already expanded.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    pub nrows: usize,
    pub ncols: usize,
    pub entries: Vec<(u32, u32, f64)>,
}

/// Read a Matrix Market file from any reader.
pub fn read_coo<R: BufRead>(reader: R) -> Result<CooMatrix, MmError> {
    let mut lines = reader.lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) = lines
        .next()
        .ok_or_else(|| MmError::Format("empty file".into()))?;
    let header = header?;
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MmError::Format(format!("bad header: {header}")));
    }
    if toks[2] != "coordinate" {
        return Err(MmError::Format(format!("unsupported storage: {}", toks[2])));
    }
    let field = toks[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(MmError::Format(format!("unsupported field: {field}")));
    }
    let symmetry = toks[4].as_str();
    if !matches!(symmetry, "general" | "symmetric" | "skew-symmetric") {
        return Err(MmError::Format(format!("unsupported symmetry: {symmetry}")));
    }
    let pattern = field == "pattern";
    let symmetric = symmetry != "general";

    // Size line: first non-comment line.
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
    for (lineno, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        if dims.is_none() {
            let nr: usize = parse_tok(&mut it, lineno, "rows")?;
            let nc: usize = parse_tok(&mut it, lineno, "cols")?;
            let nnz: usize = parse_tok(&mut it, lineno, "nnz")?;
            entries.reserve(if symmetric { nnz * 2 } else { nnz });
            dims = Some((nr, nc, nnz));
            continue;
        }
        let (nr, nc, _) = dims.unwrap();
        let r: usize = parse_tok(&mut it, lineno, "row index")?;
        let c: usize = parse_tok(&mut it, lineno, "col index")?;
        if r == 0 || c == 0 || r > nr || c > nc {
            return Err(MmError::Parse {
                line: lineno + 1,
                msg: format!("index ({r},{c}) out of bounds ({nr}x{nc})"),
            });
        }
        let v: f64 = if pattern {
            1.0
        } else {
            parse_tok(&mut it, lineno, "value")?
        };
        let (r, c) = ((r - 1) as u32, (c - 1) as u32);
        entries.push((r, c, v));
        if symmetric && r != c {
            entries.push((c, r, if symmetry == "skew-symmetric" { -v } else { v }));
        }
    }
    let (nrows, ncols, _) = dims.ok_or_else(|| MmError::Format("missing size line".into()))?;
    Ok(CooMatrix {
        nrows,
        ncols,
        entries,
    })
}

fn parse_tok<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, MmError> {
    it.next()
        .ok_or_else(|| MmError::Parse {
            line: lineno + 1,
            msg: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| MmError::Parse {
            line: lineno + 1,
            msg: format!("bad {what}"),
        })
}

/// Read a Matrix Market file as an undirected structural graph: the pattern
/// is symmetrized and diagonal entries are dropped.
pub fn read_graph<R: BufRead>(reader: R) -> Result<CsrGraph, MmError> {
    let coo = read_coo(reader)?;
    if coo.nrows != coo.ncols {
        return Err(MmError::Format(format!(
            "graph requires a square matrix, got {}x{}",
            coo.nrows, coo.ncols
        )));
    }
    let edges: Vec<(VertexId, VertexId)> = coo
        .entries
        .iter()
        .filter(|(r, c, _)| r != c)
        .map(|&(r, c, _)| (r, c))
        .collect();
    Ok(CsrGraph::from_edges(coo.nrows, &edges))
}

/// Read a graph from a `.mtx` file on disk.
pub fn read_graph_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, MmError> {
    let f = std::fs::File::open(path)?;
    read_graph(BufReader::new(f))
}

/// Write a graph as a `pattern symmetric` Matrix Market file (lower
/// triangle only, 1-based indices).
pub fn write_graph<W: Write>(g: &CsrGraph, out: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(w, "% written by mis2-graph")?;
    let nnz_lower: usize = (0..g.num_vertices() as VertexId)
        .map(|v| g.neighbors(v).iter().filter(|&&u| u <= v).count())
        .sum();
    writeln!(w, "{} {} {}", g.num_vertices(), g.num_vertices(), nnz_lower)?;
    for v in 0..g.num_vertices() as VertexId {
        for &u in g.neighbors(v) {
            if u <= v {
                writeln!(w, "{} {}", v + 1, u + 1)?;
            }
        }
    }
    w.flush()
}

/// Write a graph to a `.mtx` file on disk.
pub fn write_graph_file<P: AsRef<Path>>(g: &CsrGraph, path: P) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_graph(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::io::Cursor;

    #[test]
    fn read_pattern_symmetric() {
        let mtx = "\
%%MatrixMarket matrix coordinate pattern symmetric
% a triangle
3 3 3
2 1
3 1
3 2
";
        let g = read_graph(Cursor::new(mtx)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(0, 2));
    }

    #[test]
    fn read_real_general_drops_diagonal() {
        let mtx = "\
%%MatrixMarket matrix coordinate real general
3 3 5
1 1 4.0
1 2 -1.0
2 1 -1.0
2 2 4.0
3 3 4.0
";
        let g = read_graph(Cursor::new(mtx)).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn read_coo_keeps_values() {
        let mtx = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 3
1 1 2.0
2 2 2.0
2 1 -1.0
";
        let coo = read_coo(Cursor::new(mtx)).unwrap();
        assert_eq!(coo.nrows, 2);
        // symmetric off-diagonal expands to both directions
        assert_eq!(coo.entries.len(), 4);
        assert!(coo.entries.contains(&(1, 0, -1.0)));
        assert!(coo.entries.contains(&(0, 1, -1.0)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_graph(Cursor::new("%%NotMatrixMarket\n")).is_err());
        assert!(read_graph(Cursor::new(
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n"
        ))
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_index() {
        let mtx = "\
%%MatrixMarket matrix coordinate pattern general
2 2 1
3 1
";
        assert!(matches!(
            read_graph(Cursor::new(mtx)),
            Err(MmError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_rectangular_for_graph() {
        let mtx = "\
%%MatrixMarket matrix coordinate pattern general
2 3 1
1 1
";
        assert!(read_graph(Cursor::new(mtx)).is_err());
    }

    #[test]
    fn roundtrip() {
        let g = gen::erdos_renyi(40, 80, 11);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_structured() {
        let g = gen::laplace3d(5, 4, 3);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }
}
