//! Compressed sparse row (CSR/CRS) graph storage.
//!
//! The paper's algorithms all operate on undirected graphs stored in the CRS
//! sparse-matrix layout (Section V-D): the adjacency list of each vertex is
//! contiguous, which is what makes the neighbor-parallel ("SIMD") loops
//! coalesce on GPUs and cache-stream on CPUs.
//!
//! Invariants maintained by every constructor:
//!
//! * `row_ptr.len() == n + 1`, `row_ptr[0] == 0`, monotonically non-decreasing,
//!   `row_ptr[n] == col_idx.len()`;
//! * every column index is `< n`;
//! * each row is strictly sorted (no duplicate edges);
//! * **no explicit self-loops** — the MIS-2 kernels add the implicit
//!   self-contribution themselves (Lemma IV.1 of the paper assumes
//!   self-loops; storing them would only waste bandwidth);
//! * the graph is symmetric (undirected): `(u,v)` present iff `(v,u)` is.

use mis2_prim::par;
use std::fmt;

/// Vertex index type. The paper packs vertex ids into 32 bits; all supported
/// graphs have fewer than 2^32 vertices.
pub type VertexId = u32;

/// Errors from CSR validation/construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `row_ptr` has wrong length or wrong first/last element.
    BadRowPtr(String),
    /// A column index is out of bounds.
    ColOutOfBounds { row: usize, col: VertexId, n: usize },
    /// A row is not strictly sorted (unsorted or duplicate entries).
    UnsortedRow { row: usize },
    /// An explicit self-loop was found.
    SelfLoop { row: usize },
    /// The adjacency structure is not symmetric.
    NotSymmetric { u: VertexId, v: VertexId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadRowPtr(msg) => write!(f, "bad row_ptr: {msg}"),
            GraphError::ColOutOfBounds { row, col, n } => {
                write!(f, "column {col} out of bounds (n = {n}) in row {row}")
            }
            GraphError::UnsortedRow { row } => {
                write!(f, "row {row} is not strictly sorted")
            }
            GraphError::SelfLoop { row } => write!(f, "self loop at vertex {row}"),
            GraphError::NotSymmetric { u, v } => {
                write!(f, "edge ({u},{v}) present but ({v},{u}) missing")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected graph in CSR form. See module docs for invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<VertexId>,
}

impl CsrGraph {
    /// Graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            n,
            row_ptr: vec![0; n + 1],
            col_idx: Vec::new(),
        }
    }

    /// Build from raw CSR arrays, validating every invariant except symmetry
    /// (which is `O(E log d)` and opt-in via [`CsrGraph::validate_symmetric`]).
    pub fn from_csr(
        n: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<VertexId>,
    ) -> Result<Self, GraphError> {
        if row_ptr.len() != n + 1 {
            return Err(GraphError::BadRowPtr(format!(
                "length {} != n+1 = {}",
                row_ptr.len(),
                n + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(GraphError::BadRowPtr("row_ptr[0] != 0".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(GraphError::BadRowPtr(format!(
                "row_ptr[n] = {} != col_idx.len() = {}",
                row_ptr[n],
                col_idx.len()
            )));
        }
        for v in 0..n {
            if row_ptr[v] > row_ptr[v + 1] {
                return Err(GraphError::BadRowPtr(format!("row_ptr decreases at {v}")));
            }
            let row = &col_idx[row_ptr[v]..row_ptr[v + 1]];
            for (k, &c) in row.iter().enumerate() {
                if (c as usize) >= n {
                    return Err(GraphError::ColOutOfBounds { row: v, col: c, n });
                }
                if c as usize == v {
                    return Err(GraphError::SelfLoop { row: v });
                }
                if k > 0 && row[k - 1] >= c {
                    return Err(GraphError::UnsortedRow { row: v });
                }
            }
        }
        Ok(CsrGraph {
            n,
            row_ptr,
            col_idx,
        })
    }

    /// Build from an edge list. Edges are interpreted as undirected: both
    /// directions are stored. Self-loops and duplicates are silently dropped.
    /// Construction is parallel and deterministic.
    ///
    /// ```
    /// use mis2_graph::CsrGraph;
    /// let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
    /// assert_eq!(g.neighbors(1), &[0, 2]);
    /// assert_eq!(g.num_edges(), 2);
    /// ```
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        // Count per-vertex degree over both directions (skip self loops).
        let mut counts = vec![0usize; n + 1];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of bounds");
            if u != v {
                counts[u as usize] += 1;
                counts[v as usize] += 1;
            }
        }
        // Exclusive scan into offsets.
        let total = mis2_prim::scan::exclusive_scan_in_place(&mut counts);
        let mut col_idx = vec![0 as VertexId; total];
        let mut cursor = counts.clone();
        for &(u, v) in edges {
            if u != v {
                col_idx[cursor[u as usize]] = v;
                cursor[u as usize] += 1;
                col_idx[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sort + dedup each row in parallel, then recompact.
        let row_ptr = counts; // exclusive offsets, len n+1 with row_ptr[n] = total
        let mut rows: Vec<Vec<VertexId>> = par::map_range(0..n, |v| {
            let mut r = col_idx[row_ptr[v]..row_ptr[v + 1]].to_vec();
            r.sort_unstable();
            r.dedup();
            r
        });
        Self::from_rows_unchecked(n, &mut rows)
    }

    /// Assemble from per-vertex sorted, deduplicated, loop-free neighbor
    /// lists (consumed). Used internally by builders and generators that
    /// guarantee the invariants themselves.
    pub(crate) fn from_rows_unchecked(n: usize, rows: &mut [Vec<VertexId>]) -> Self {
        debug_assert_eq!(rows.len(), n);
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut total = 0usize;
        for r in rows.iter() {
            total += r.len();
            row_ptr.push(total);
        }
        let mut col_idx = vec![0 as VertexId; total];
        {
            let ptr = SendSlice(col_idx.as_mut_ptr());
            par::for_each_indexed(rows, |v, src| {
                // SAFETY: each row writes the disjoint range
                // [row_ptr[v], row_ptr[v+1]).
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        src.as_ptr(),
                        ptr.get().add(row_ptr[v]),
                        src.len(),
                    );
                }
            });
        }
        CsrGraph {
            n,
            row_ptr,
            col_idx,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of *directed* edge slots (2x the undirected edge count). This
    /// matches the paper's `|E|` column, which counts stored nonzeros.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len() / 2
    }

    /// Neighbor list of `v` (sorted, no self-loop).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.col_idx[self.row_ptr[v as usize]..self.row_ptr[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]
    }

    /// Raw row-pointer array (`n + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[VertexId] {
        &self.col_idx
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.col_idx.len() as f64 / self.n as f64
        }
    }

    /// Maximum degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        let degrees = par::map_range(0..self.n, |v| self.row_ptr[v + 1] - self.row_ptr[v]);
        mis2_prim::det_max(&degrees).unwrap_or(0)
    }

    /// Minimum degree (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        let degrees = par::map_range(0..self.n, |v| self.row_ptr[v + 1] - self.row_ptr[v]);
        mis2_prim::det_min(&degrees).unwrap_or(0)
    }

    /// True if edge `(u, v)` exists (binary search in `u`'s row).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Approximate heap footprint in bytes: the capacity of the two CSR
    /// arrays. Used by memory-bounded caches (e.g. the `mis2-svc`
    /// registry) to account graphs against a byte budget; it ignores
    /// allocator slack and the `O(1)` struct header.
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.capacity() * std::mem::size_of::<usize>()
            + self.col_idx.capacity() * std::mem::size_of::<VertexId>()
    }

    /// Check structural symmetry: `(u,v)` present implies `(v,u)` present.
    pub fn validate_symmetric(&self) -> Result<(), GraphError> {
        let bad = par::find_map_range(0..self.n as VertexId, |u| {
            self.neighbors(u)
                .iter()
                .find(|&&v| !self.has_edge(v, u))
                .map(|&v| GraphError::NotSymmetric { u, v })
        });
        match bad {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Summary statistics (the left half of the paper's Table II).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            num_vertices: self.n,
            num_directed_edges: self.num_directed_edges(),
            avg_degree: self.avg_degree(),
            max_degree: self.max_degree(),
            min_degree: self.min_degree(),
        }
    }
}

/// Raw-pointer wrapper for disjoint parallel writes into one buffer.
struct SendSlice<T>(*mut T);
unsafe impl<T: Send> Send for SendSlice<T> {}
unsafe impl<T: Send> Sync for SendSlice<T> {}

impl<T> SendSlice<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Graph summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub num_vertices: usize,
    pub num_directed_edges: usize,
    pub avg_degree: f64,
    pub max_degree: usize,
    pub min_degree: usize,
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V| = {}, |E| = {}, avg deg = {:.2}, max deg = {}, min deg = {}",
            self.num_vertices,
            self.num_directed_edges,
            self.avg_degree,
            self.max_degree,
            self.min_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn from_edges_triangle() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        g.validate_symmetric().unwrap();
    }

    #[test]
    fn from_edges_drops_self_loops_and_dups() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn from_csr_validates() {
        // Good input.
        let g = CsrGraph::from_csr(2, vec![0, 1, 2], vec![1, 0]).unwrap();
        assert_eq!(g.num_edges(), 1);
        // Bad row_ptr length.
        assert!(matches!(
            CsrGraph::from_csr(2, vec![0, 2], vec![1, 0]),
            Err(GraphError::BadRowPtr(_))
        ));
        // Column out of bounds.
        assert!(matches!(
            CsrGraph::from_csr(2, vec![0, 1, 2], vec![5, 0]),
            Err(GraphError::ColOutOfBounds { .. })
        ));
        // Self loop.
        assert!(matches!(
            CsrGraph::from_csr(2, vec![0, 1, 2], vec![0, 0]),
            Err(GraphError::SelfLoop { row: 0 })
        ));
        // Unsorted row.
        assert!(matches!(
            CsrGraph::from_csr(3, vec![0, 2, 3, 4], vec![2, 1, 0, 0]),
            Err(GraphError::UnsortedRow { row: 0 })
        ));
        // Duplicate entry counts as unsorted (strict ordering).
        assert!(matches!(
            CsrGraph::from_csr(3, vec![0, 2, 3, 4], vec![1, 1, 0, 0]),
            Err(GraphError::UnsortedRow { row: 0 })
        ));
    }

    #[test]
    fn symmetry_violation_detected() {
        // (0,1) without (1,0): col list for vertex 1 points at 2 instead.
        let g = CsrGraph::from_csr(3, vec![0, 1, 2, 3], vec![1, 2, 1]).unwrap();
        assert!(g.validate_symmetric().is_err());
    }

    #[test]
    fn stats_path_graph() {
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let s = g.stats();
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_directed_edges, 18);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.min_degree, 1);
        assert!((s.avg_degree - 1.8).abs() < 1e-12);
    }

    #[test]
    fn has_edge() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    #[should_panic(expected = "edge out of bounds")]
    fn from_edges_rejects_out_of_bounds() {
        CsrGraph::from_edges(3, &[(0, 7)]);
    }

    #[test]
    fn large_from_edges_deterministic() {
        let edges: Vec<(u32, u32)> = (0..50_000u64)
            .map(|i| {
                let h = mis2_prim::hash::splitmix64(i);
                ((h % 1000) as u32, ((h >> 32) % 1000) as u32)
            })
            .collect();
        let g1 = CsrGraph::from_edges(1000, &edges);
        let g2 = mis2_prim::pool::with_pool(1, || CsrGraph::from_edges(1000, &edges));
        assert_eq!(g1, g2);
        g1.validate_symmetric().unwrap();
    }
}
