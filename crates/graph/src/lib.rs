//! # mis2-graph — graph substrate
//!
//! CSR graph storage, generators, Matrix Market I/O and graph operations for
//! the MIS-2 / coarsening stack:
//!
//! * [`csr`] — the [`CsrGraph`] structure (validated CSR, undirected, no
//!   self-loops) and summary statistics.
//! * [`gen`] — deterministic generators: the paper's Galeri problems
//!   (Laplace3D, Elasticity3D), general stencils, random models
//!   (Erdős–Rényi, RMAT, quasi-regular), FE-mesh-like graphs.
//! * [`suite`] — the 17-problem evaluation suite of the paper (Table II),
//!   with synthetic stand-ins for the SuiteSparse matrices.
//! * [`io`] — Matrix Market reading/writing for running on real inputs.
//! * [`ops`] — graph squaring (`G²`, for the Lemma IV.2 oracle), induced
//!   subgraphs (needed by Algorithm 3's phase 2), connected components,
//!   degree histograms.

pub mod csr;
pub mod gen;
pub mod io;
pub mod ops;
pub mod suite;

pub use csr::{CsrGraph, GraphError, GraphStats, VertexId};
pub use suite::{Scale, Workload};
