//! Graph operations: squaring (G²), induced subgraphs, connected components,
//! degree histograms.
//!
//! `square` implements the reduction behind Lemma IV.2 of the paper:
//! an MIS-1 of `G²` (with self-loops) is a valid MIS-2 of `G`. The tests and
//! the theory experiments use it as an oracle for Algorithm 1.

use crate::csr::{CsrGraph, VertexId};
use mis2_prim::par;

/// `G²`: vertices `u != v` adjacent iff a path of length 1 or 2 connects
/// them in `g` (self-loops excluded, consistent with [`CsrGraph`]'s
/// invariants — callers treat the self relation implicitly).
///
/// Cost is `O(sum_v (d(v) + sum_{w in N(v)} d(w)))`; intended for tests and
/// oracles, not for the production MIS-2 path (avoiding exactly this blow-up
/// is the point of Bell's direct MIS-k scheme the paper builds on).
pub fn square(g: &CsrGraph) -> CsrGraph {
    let n = g.num_vertices();
    let mut rows: Vec<Vec<VertexId>> = par::map_range(0..n, |v| {
        let v = v as VertexId;
        let mut nbrs: Vec<VertexId> = g.neighbors(v).to_vec();
        for &w in g.neighbors(v) {
            nbrs.extend_from_slice(g.neighbors(w));
        }
        nbrs.sort_unstable();
        nbrs.dedup();
        // Drop the self entry introduced via w -> v paths.
        if let Ok(pos) = nbrs.binary_search(&v) {
            nbrs.remove(pos);
        }
        nbrs
    });
    CsrGraph::from_rows_unchecked(n, &mut rows)
}

/// Induced subgraph on the vertices where `keep[v]` is true.
///
/// Returns `(subgraph, new_to_old)`; `new_to_old[i]` is the original id of
/// subgraph vertex `i`. Vertices keep their relative order, so the mapping
/// is deterministic.
pub fn induced_subgraph(g: &CsrGraph, keep: &[bool]) -> (CsrGraph, Vec<VertexId>) {
    let n = g.num_vertices();
    assert_eq!(keep.len(), n, "mask length mismatch");
    let new_to_old = mis2_prim::compact::par_filter_indices(keep, |&k| k);
    let mut old_to_new = vec![VertexId::MAX; n];
    for (new, &old) in new_to_old.iter().enumerate() {
        old_to_new[old as usize] = new as VertexId;
    }
    let m = new_to_old.len();
    let mut rows: Vec<Vec<VertexId>> = par::map(&new_to_old, |&old| {
        g.neighbors(old)
            .iter()
            .filter(|&&w| keep[w as usize])
            .map(|&w| old_to_new[w as usize])
            .collect::<Vec<_>>()
        // rows inherit sorted order because old_to_new is monotone
    });
    (CsrGraph::from_rows_unchecked(m, &mut rows), new_to_old)
}

/// Connected components via BFS. Returns `(component_count, labels)` with
/// labels in `0..component_count`, assigned in order of the smallest vertex
/// id in each component (deterministic).
pub fn connected_components(g: &CsrGraph) -> (usize, Vec<u32>) {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut ncomp = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = ncomp;
        queue.push_back(s as VertexId);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = ncomp;
                    queue.push_back(w);
                }
            }
        }
        ncomp += 1;
    }
    (ncomp as usize, label)
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let maxd = g.max_degree();
    let mut hist = vec![0usize; maxd + 1];
    for v in 0..g.num_vertices() {
        hist[g.degree(v as VertexId)] += 1;
    }
    hist
}

/// All vertices within distance `<= k` of `v` (excluding `v` itself),
/// sorted. Small-`k` BFS used by verification code and tests.
pub fn neighborhood(g: &CsrGraph, v: VertexId, k: usize) -> Vec<VertexId> {
    let mut seen = std::collections::HashSet::new();
    seen.insert(v);
    let mut frontier = vec![v];
    let mut out = Vec::new();
    for _ in 0..k {
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in g.neighbors(u) {
                if seen.insert(w) {
                    next.push(w);
                    out.push(w);
                }
            }
        }
        frontier = next;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn square_of_path() {
        // Path 0-1-2-3: G² adds (0,2), (1,3).
        let g = gen::path(4);
        let g2 = square(&g);
        assert_eq!(g2.neighbors(0), &[1, 2]);
        assert_eq!(g2.neighbors(1), &[0, 2, 3]);
        assert_eq!(g2.neighbors(2), &[0, 1, 3]);
        assert_eq!(g2.neighbors(3), &[1, 2]);
        g2.validate_symmetric().unwrap();
    }

    #[test]
    fn square_no_self_loops() {
        let g = gen::cycle(6);
        let g2 = square(&g);
        for v in 0..6u32 {
            assert!(!g2.has_edge(v, v));
            assert_eq!(g2.degree(v), 4); // ±1, ±2 on a 6-cycle
        }
    }

    #[test]
    fn square_matches_bfs_definition() {
        let g = gen::erdos_renyi(60, 120, 5);
        let g2 = square(&g);
        for v in 0..60u32 {
            let want = neighborhood(&g, v, 2);
            assert_eq!(g2.neighbors(v), want.as_slice(), "vertex {v}");
        }
    }

    #[test]
    fn induced_subgraph_basic() {
        // Path 0-1-2-3-4, keep {0, 1, 3, 4}: edges (0,1) and (3,4) survive.
        let g = gen::path(5);
        let keep = [true, true, false, true, true];
        let (sub, map) = induced_subgraph(&g, &keep);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(map, vec![0, 1, 3, 4]);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // old (0,1)
        assert!(sub.has_edge(2, 3)); // old (3,4)
        assert!(!sub.has_edge(1, 2)); // old (1,3) was not an edge
        sub.validate_symmetric().unwrap();
    }

    #[test]
    fn induced_subgraph_empty_mask() {
        let g = gen::cycle(5);
        let (sub, map) = induced_subgraph(&g, &[false; 5]);
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn induced_subgraph_full_mask_is_identity() {
        let g = gen::erdos_renyi(50, 100, 1);
        let (sub, map) = induced_subgraph(&g, &[true; 50]);
        assert_eq!(&sub, &g);
        assert_eq!(map, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn components_of_disjoint_paths() {
        // Two paths: 0-1-2 and 3-4.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let (nc, labels) = connected_components(&g);
        assert_eq!(nc, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn components_isolated_vertices() {
        let g = CsrGraph::empty(4);
        let (nc, labels) = connected_components(&g);
        assert_eq!(nc, 4);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn histogram_star() {
        let g = gen::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4); // leaves
        assert_eq!(h[4], 1); // hub
    }

    #[test]
    fn neighborhood_distances() {
        let g = gen::path(7);
        assert_eq!(neighborhood(&g, 3, 1), vec![2, 4]);
        assert_eq!(neighborhood(&g, 3, 2), vec![1, 2, 4, 5]);
        assert_eq!(neighborhood(&g, 0, 2), vec![1, 2]);
    }
}
