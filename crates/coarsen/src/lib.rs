//! # mis2-coarsen — MIS-2 based graph coarsening and aggregation
//!
//! The second half of the paper's contribution: turning a distance-2
//! maximal independent set into a graph coarsening for algebraic multigrid
//! and cluster preconditioners.
//!
//! * [`basic`] — Algorithm 2, the Bell et al. root+neighbors coarsening
//!   (what ViennaCL ships).
//! * [`mis2_agg`] — Algorithm 3, the paper's three-phase deterministic
//!   aggregation ("MIS2 Agg" in Table V).
//! * [`serial`] — MueLu's sequential host aggregation ("Serial Agg").
//! * [`d2c`] — distance-2-coloring driven aggregation ("Serial D2C" and
//!   "NB D2C").
//! * [`scheme`] — one enum over all five Table V schemes.
//! * [`prolongator`] — tentative and smoothed prolongators for SA-AMG.
//! * [`hierarchy`] — quotient graphs and recursive multilevel coarsening.
//! * [`mod@partition`] — multilevel graph partitioning on MIS-2 coarsening
//!   (the paper's stated future-work application, after Gilbert et al.).
//! * [`agg`] — the [`Aggregation`] type and validation.

pub mod agg;
pub mod basic;
pub mod d2c;
pub mod hierarchy;
pub mod mis2_agg;
pub mod partition;
pub mod prolongator;
pub mod scheme;
pub mod serial;
pub mod stats;
pub mod strength;

pub use agg::{AggViolation, Aggregation, UNAGGREGATED};
pub use basic::{mis2_basic, mis2_basic_from};
pub use d2c::{d2c_aggregation, nb_d2c_aggregation, serial_d2c_aggregation};
pub use hierarchy::{coarsen_recursive, quotient_graph, Level};
pub use mis2_agg::{mis2_aggregation, mis2_aggregation_with};
pub use partition::{partition, quality, Partition, PartitionConfig, PartitionQuality};
pub use prolongator::{smoothed_prolongator, tentative_prolongator};
pub use scheme::AggScheme;
pub use serial::serial_aggregation;
pub use stats::{aggregate_stats, AggStats};
pub use strength::{anisotropic2d_matrix, strength_graph};
