//! Uniform interface over the five aggregation schemes compared in
//! Table V of the paper.

use crate::agg::Aggregation;
use mis2_graph::CsrGraph;

/// The aggregation schemes of the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggScheme {
    /// MueLu's original sequential host aggregation.
    SerialAgg,
    /// Sequential distance-2 coloring + parallel aggregation.
    SerialD2C,
    /// Parallel net-based distance-2 coloring + parallel aggregation.
    NbD2C,
    /// Algorithm 2: basic MIS-2 coarsening (Bell et al.).
    Mis2Basic,
    /// Algorithm 3: the paper's MIS-2 aggregation.
    Mis2Agg,
}

impl AggScheme {
    /// All five schemes in the paper's Table V row order.
    pub fn all() -> [AggScheme; 5] {
        [
            AggScheme::SerialAgg,
            AggScheme::SerialD2C,
            AggScheme::NbD2C,
            AggScheme::Mis2Basic,
            AggScheme::Mis2Agg,
        ]
    }

    /// Display name matching Table V.
    pub fn label(self) -> &'static str {
        match self {
            AggScheme::SerialAgg => "Serial Agg",
            AggScheme::SerialD2C => "Serial D2C",
            AggScheme::NbD2C => "NB D2C",
            AggScheme::Mis2Basic => "MIS2 Basic",
            AggScheme::Mis2Agg => "MIS2 Agg",
        }
    }

    /// The paper's Table V "Det." column: whether the *reference*
    /// implementation in MueLu/KokkosKernels is deterministic. (Our
    /// reimplementations are all deterministic — the flag records the
    /// property of the scheme as deployed and evaluated by the paper; the
    /// D2C schemes race their leftover-join there.)
    pub fn paper_deterministic(self) -> bool {
        matches!(
            self,
            AggScheme::SerialAgg | AggScheme::Mis2Basic | AggScheme::Mis2Agg
        )
    }

    /// Run the scheme.
    pub fn aggregate(self, g: &CsrGraph, seed: u64) -> Aggregation {
        match self {
            AggScheme::SerialAgg => crate::serial::serial_aggregation(g),
            AggScheme::SerialD2C => crate::d2c::serial_d2c_aggregation(g),
            AggScheme::NbD2C => crate::d2c::nb_d2c_aggregation(g, seed),
            AggScheme::Mis2Basic => crate::basic::mis2_basic(g),
            AggScheme::Mis2Agg => crate::mis2_agg::mis2_aggregation(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn all_schemes_cover_all_graph_families() {
        let graphs = vec![
            gen::laplace3d(6, 6, 6),
            gen::laplace2d(12, 12),
            gen::erdos_renyi(200, 600, 1),
            gen::path(50),
        ];
        for g in &graphs {
            for scheme in AggScheme::all() {
                let a = scheme.aggregate(g, 0);
                a.validate(g)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()));
            }
        }
    }

    #[test]
    fn labels_match_table_v() {
        let labels: Vec<_> = AggScheme::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Serial Agg",
                "Serial D2C",
                "NB D2C",
                "MIS2 Basic",
                "MIS2 Agg"
            ]
        );
    }

    #[test]
    fn determinism_flags_match_table_v() {
        assert!(AggScheme::SerialAgg.paper_deterministic());
        assert!(!AggScheme::SerialD2C.paper_deterministic());
        assert!(!AggScheme::NbD2C.paper_deterministic());
        assert!(AggScheme::Mis2Basic.paper_deterministic());
        assert!(AggScheme::Mis2Agg.paper_deterministic());
    }

    #[test]
    fn mis2_agg_has_fewest_or_near_fewest_aggregates() {
        // Quality smoke test: on a structured grid MIS2 Agg should coarsen
        // at least as aggressively as the D2C baselines.
        let g = gen::laplace3d(8, 8, 8);
        let nagg: Vec<(AggScheme, usize)> = AggScheme::all()
            .iter()
            .map(|&s| (s, s.aggregate(&g, 0).num_aggregates))
            .collect();
        let mis2_agg = nagg
            .iter()
            .find(|(s, _)| *s == AggScheme::Mis2Agg)
            .unwrap()
            .1;
        let max = nagg.iter().map(|&(_, n)| n).max().unwrap();
        assert!(
            mis2_agg as f64 <= max as f64,
            "MIS2 Agg should not be the coarsest-averse scheme: {nagg:?}"
        );
    }
}
