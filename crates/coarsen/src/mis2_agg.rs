//! Algorithm 3 — three-phase MIS-2 aggregation (the paper's "MIS2 Agg").
//!
//! The Kokkos Kernels scheme, a parallel and deterministic version of ML's
//! sequential MIS-2 aggregation (Tuminaro & Tong):
//!
//! * **Phase 1**: compute MIS-2, make each member a root, aggregate it with
//!   its direct neighbors (as Algorithm 2).
//! * **Phase 2**: compute a *second* MIS-2 on the subgraph induced by the
//!   unaggregated vertices; each member with at least 2 unaggregated
//!   neighbors becomes a secondary root (smaller candidates are rejected —
//!   they would cause fill-in during smoothing).
//! * **Phase 3**: every remaining vertex joins the adjacent aggregate with
//!   maximum *coupling* (number of neighbors in that aggregate), breaking
//!   ties toward the smaller aggregate. Coupling and sizes are computed
//!   against the frozen "tentative" labels from the end of phase 2, which
//!   is what keeps this phase parallel **and** deterministic.
//!
//! One completion detail the paper leaves implicit: a phase-2 reject (a
//! secondary MIS-2 root with < 2 unaggregated neighbors) can leave a small
//! pocket of vertices none of whom touch any aggregate. After the paper's
//! phase 3 we sweep such pockets into deterministic singleton/pair
//! aggregates rooted at their smallest vertex (phase 3b below); this only
//! triggers on degenerate graphs (isolated vertices, tiny components) and
//! keeps the partition total.
//!
//! Both MIS-2 calls run on the engine's adaptive execution layer
//! (degree-bucketed dispatch, fused per-round passes, serial sparse tail —
//! see [`mis2_core::engine`]); the phase-2 call in particular benefits,
//! since the induced unaggregated subgraph is small and its rounds hit the
//! engine's sparse-tail fast path. Aggregation output is byte-identical to
//! the seed engine's because the engine itself is.

use crate::agg::{Aggregation, UNAGGREGATED};
use mis2_core::{mis2_with_config, Mis2Config};
use mis2_graph::{ops, CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::SharedMut;

/// Algorithm 3 with the default MIS-2 configuration.
///
/// ```
/// let g = mis2_graph::gen::laplace2d(12, 12);
/// let agg = mis2_coarsen::mis2_aggregation(&g);
/// agg.validate(&g).unwrap();              // complete, connected partition
/// assert!(agg.num_aggregates < g.num_vertices() / 3);
/// ```
pub fn mis2_aggregation(g: &CsrGraph) -> Aggregation {
    mis2_aggregation_with(g, &Mis2Config::default())
}

/// Algorithm 3 with an explicit MIS-2 configuration (both MIS-2 calls use
/// it; phase 2 perturbs the seed so the two runs are independent).
pub fn mis2_aggregation_with(g: &CsrGraph, cfg: &Mis2Config) -> Aggregation {
    let n = g.num_vertices();
    let mut labels = vec![UNAGGREGATED; n];
    let mut roots: Vec<VertexId> = Vec::new();

    // ---- Phase 1: primary MIS-2 roots + their neighbors -----------------
    let m1 = mis2_with_config(g, cfg);
    for (a, &r) in m1.in_set.iter().enumerate() {
        labels[r as usize] = a as u32;
        roots.push(r);
    }
    {
        let lw = SharedMut::new(&mut labels);
        par::for_range(0..n as VertexId, |v| {
            let cur = unsafe { lw.read(v as usize) };
            if cur != UNAGGREGATED {
                return;
            }
            for &w in g.neighbors(v) {
                if m1.is_in[w as usize] {
                    let root_label = unsafe { lw.read(w as usize) };
                    unsafe { lw.write(v as usize, root_label) };
                    return;
                }
            }
        });
    }

    // ---- Phase 2: secondary MIS-2 on the unaggregated subgraph ----------
    let keep: Vec<bool> = par::map(&labels, |&l| l == UNAGGREGATED);
    let (sub, new_to_old) = ops::induced_subgraph(g, &keep);
    if sub.num_vertices() > 0 {
        let cfg2 = Mis2Config {
            seed: cfg.seed ^ 0xA66E_57A7,
            ..*cfg
        };
        let m2 = mis2_with_config(&sub, &cfg2);
        // Secondary roots need >= 2 unaggregated neighbors. All neighbors of
        // an unaggregated vertex that are unaggregated appear in `sub`, so
        // the subgraph degree *is* the unaggregated-neighbor count.
        let accepted: Vec<VertexId> = m2
            .in_set
            .iter()
            .copied()
            .filter(|&v2| sub.degree(v2) >= 2)
            .collect();
        let base = roots.len() as u32;
        for (k, &v2) in accepted.iter().enumerate() {
            let v = new_to_old[v2 as usize];
            labels[v as usize] = base + k as u32;
            roots.push(v);
        }
        // Aggregate the secondary roots' unaggregated neighbors. Secondary
        // roots are distance >= 3 apart in `sub`, so no unaggregated vertex
        // neighbors two of them: conflict-free.
        {
            let lw = SharedMut::new(&mut labels);
            par::for_each_indexed(&accepted, |k, &v2| {
                let label = base + k as u32;
                for &w2 in sub.neighbors(v2) {
                    let w = new_to_old[w2 as usize];
                    unsafe { lw.write(w as usize, label) };
                }
            });
        }
    }

    // ---- Phase 3: join leftovers by max coupling -------------------------
    // Freeze tentative labels; coupling and aggregate size are computed
    // against these, so the phase is order-independent (deterministic).
    let tent = labels.clone();
    let num_tent_aggs = roots.len();
    let mut agg_size = vec![0u32; num_tent_aggs];
    for &l in &tent {
        if l != UNAGGREGATED {
            agg_size[l as usize] += 1;
        }
    }
    {
        let lw = SharedMut::new(&mut labels);
        let tent_ref: &[u32] = &tent;
        let size_ref: &[u32] = &agg_size;
        par::for_range(0..n as VertexId, |v| {
            if tent_ref[v as usize] != UNAGGREGATED {
                return;
            }
            // Count coupling to each adjacent aggregate (degree-bounded
            // linear scan; degrees are small for the PDE graphs this serves).
            let mut cand: Vec<(u32, u32)> = Vec::new(); // (agg, coupling)
            for &w in g.neighbors(v) {
                let a = tent_ref[w as usize];
                if a == UNAGGREGATED {
                    continue;
                }
                match cand.iter_mut().find(|(ca, _)| *ca == a) {
                    Some((_, c)) => *c += 1,
                    None => cand.push((a, 1)),
                }
            }
            // Max coupling; ties -> smaller aggregate; ties -> smaller id.
            let best = cand.into_iter().min_by(|&(a1, c1), &(a2, c2)| {
                c2.cmp(&c1)
                    .then(size_ref[a1 as usize].cmp(&size_ref[a2 as usize]))
                    .then(a1.cmp(&a2))
            });
            if let Some((a, _)) = best {
                unsafe { lw.write(v as usize, a) };
            }
        });
    }

    // ---- Phase 3b: sweep pockets with no adjacent aggregate -------------
    // Deterministic sequential pass (touches only the rare remainder).
    let mut extra_roots: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if labels[v as usize] != UNAGGREGATED {
            continue;
        }
        // Join any adjacent aggregate formed since phase 3 (keeps pockets
        // of size 2 together) ...
        if let Some(l) = g
            .neighbors(v)
            .iter()
            .map(|&w| labels[w as usize])
            .filter(|&l| l != UNAGGREGATED)
            .min()
        {
            labels[v as usize] = l;
        } else {
            // ... or root a new aggregate.
            let label = (num_tent_aggs + extra_roots.len()) as u32;
            labels[v as usize] = label;
            extra_roots.push(v);
        }
    }
    roots.extend_from_slice(&extra_roots);

    let num_aggregates = roots.len();
    Aggregation {
        labels,
        num_aggregates,
        roots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn covers_grid() {
        let g = gen::laplace3d(8, 8, 8);
        let a = mis2_aggregation(&g);
        a.validate(&g).unwrap();
    }

    #[test]
    fn covers_random() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(400, 1200, seed);
            let a = mis2_aggregation(&g);
            a.validate(&g).unwrap();
        }
    }

    #[test]
    fn covers_sparse_random_with_pockets() {
        // Very sparse graphs exercise phase 3b (isolated vertices, tiny
        // components).
        for seed in 0..4 {
            let g = gen::erdos_renyi(300, 150, seed);
            let a = mis2_aggregation(&g);
            a.validate(&g).unwrap();
        }
    }

    #[test]
    fn isolated_vertices_become_singletons() {
        let g = CsrGraph::empty(4);
        let a = mis2_aggregation(&g);
        a.validate(&g).unwrap();
        assert_eq!(a.num_aggregates, 4);
    }

    #[test]
    fn secondary_phase_adds_regular_aggregates() {
        // Algorithm 3's phase 2 roots *additional* aggregates in the gaps
        // between phase-1 aggregates instead of stuffing leftovers into
        // them (Algorithm 2's behavior, which produces the irregular
        // shapes the paper calls out). So MIS2 Agg has at least as many
        // aggregates as MIS2 Basic, with a tighter size distribution.
        let g = gen::laplace3d(10, 10, 10);
        let basic = crate::basic::mis2_basic(&g);
        let agg = mis2_aggregation(&g);
        agg.validate(&g).unwrap();
        assert!(
            agg.num_aggregates >= basic.num_aggregates,
            "agg {} vs basic {}",
            agg.num_aggregates,
            basic.num_aggregates
        );
        // Size-distribution regularity: the largest aggregate of MIS2 Agg
        // should not exceed MIS2 Basic's largest.
        let max_basic = basic.sizes().into_iter().max().unwrap();
        let max_agg = agg.sizes().into_iter().max().unwrap();
        assert!(max_agg <= max_basic, "max sizes {max_agg} vs {max_basic}");
    }

    #[test]
    fn deterministic_across_threads() {
        let g = gen::laplace2d(25, 25);
        let a = mis2_aggregation(&g);
        let b = mis2_prim::pool::with_pool(1, || mis2_aggregation(&g));
        let c = mis2_prim::pool::with_pool(4, || mis2_aggregation(&g));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn roots_consistent() {
        let g = gen::laplace3d(6, 6, 6);
        let a = mis2_aggregation(&g);
        assert_eq!(a.roots.len(), a.num_aggregates);
        for (idx, &r) in a.roots.iter().enumerate() {
            assert_eq!(
                a.labels[r as usize] as usize, idx,
                "root {r} lost its aggregate"
            );
        }
    }

    #[test]
    fn covers_powerlaw_and_deterministic() {
        // R-MAT exercises the engine's degree-bucketed dispatch underneath
        // the aggregation: hub-heavy phase 1, then a sparse phase-2
        // subgraph that lands on the serial tail path.
        let g = gen::rmat(11, 8, 0.6, 0.2, 0.1, 42);
        let a = mis2_aggregation(&g);
        a.validate(&g).unwrap();
        let s = mis2_prim::pool::with_pool(1, || mis2_aggregation(&g));
        let p = mis2_prim::pool::with_pool(8, || mis2_aggregation(&g));
        assert_eq!(a, s);
        assert_eq!(a, p);
    }

    #[test]
    fn path_coarsening_rate() {
        let g = gen::path(100);
        let a = mis2_aggregation(&g);
        a.validate(&g).unwrap();
        // Aggregates on a path span 3-5 vertices.
        assert!(a.mean_size() >= 2.5, "rate {}", a.mean_size());
    }
}
