//! The [`Aggregation`] structure and its validity checks.
//!
//! An aggregation (graph coarsening) partitions the vertices into disjoint
//! connected groups ("aggregates"); each aggregate becomes one vertex of
//! the coarse graph. All schemes in this crate produce a *complete*
//! partition — every vertex is assigned — matching the guarantee the paper
//! derives from MIS-2 maximality (Section III-B).

use mis2_graph::{CsrGraph, VertexId};
use std::fmt;

/// Sentinel for not-yet-aggregated vertices during construction.
pub const UNAGGREGATED: u32 = u32::MAX;

/// A complete aggregation of a graph's vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregation {
    /// `labels[v]` = aggregate id in `0..num_aggregates`.
    pub labels: Vec<u32>,
    /// Number of aggregates.
    pub num_aggregates: usize,
    /// The root vertex that seeded each aggregate (u32::MAX when the
    /// aggregate was created without a root, e.g. leftover singletons).
    pub roots: Vec<VertexId>,
}

impl Aggregation {
    /// Approximate heap footprint in bytes (capacity of the label and
    /// root arrays) for memory-bounded caches.
    pub fn heap_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<u32>()
            + self.roots.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// Aggregation defects found by [`Aggregation::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggViolation {
    /// A vertex was never assigned.
    Unassigned { v: VertexId },
    /// A label is out of range.
    BadLabel { v: VertexId, label: u32 },
    /// An aggregate has no members.
    EmptyAggregate { agg: u32 },
    /// An aggregate does not induce a connected subgraph.
    Disconnected { agg: u32 },
}

impl fmt::Display for AggViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggViolation::Unassigned { v } => write!(f, "vertex {v} unassigned"),
            AggViolation::BadLabel { v, label } => write!(f, "vertex {v} has label {label}"),
            AggViolation::EmptyAggregate { agg } => write!(f, "aggregate {agg} empty"),
            AggViolation::Disconnected { agg } => write!(f, "aggregate {agg} disconnected"),
        }
    }
}

impl std::error::Error for AggViolation {}

impl Aggregation {
    /// Number of vertices in each aggregate.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_aggregates];
        for &l in &self.labels {
            if l != UNAGGREGATED {
                s[l as usize] += 1;
            }
        }
        s
    }

    /// Mean aggregate size (the coarsening rate).
    pub fn mean_size(&self) -> f64 {
        if self.num_aggregates == 0 {
            0.0
        } else {
            self.labels.len() as f64 / self.num_aggregates as f64
        }
    }

    /// Validate that this is a complete partition into non-empty, connected
    /// aggregates of `g`.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), AggViolation> {
        let n = g.num_vertices();
        assert_eq!(self.labels.len(), n, "label array length mismatch");
        for v in 0..n {
            let l = self.labels[v];
            if l == UNAGGREGATED {
                return Err(AggViolation::Unassigned { v: v as VertexId });
            }
            if l as usize >= self.num_aggregates {
                return Err(AggViolation::BadLabel {
                    v: v as VertexId,
                    label: l,
                });
            }
        }
        let sizes = self.sizes();
        for (a, &s) in sizes.iter().enumerate() {
            if s == 0 {
                return Err(AggViolation::EmptyAggregate { agg: a as u32 });
            }
        }
        // Connectivity: BFS within each aggregate, seeded at each
        // aggregate's first member.
        let mut first = vec![VertexId::MAX; self.num_aggregates];
        for v in 0..n {
            let a = self.labels[v] as usize;
            if first[a] == VertexId::MAX {
                first[a] = v as VertexId;
            }
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for (a, &s) in first.iter().enumerate() {
            let mut count = 0usize;
            queue.clear();
            queue.push_back(s);
            seen[s as usize] = true;
            while let Some(v) = queue.pop_front() {
                count += 1;
                for &w in g.neighbors(v) {
                    if !seen[w as usize] && self.labels[w as usize] as usize == a {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
            if count != sizes[a] {
                return Err(AggViolation::Disconnected { agg: a as u32 });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn valid_partition() {
        // Path 0-1-2-3: aggregates {0,1} and {2,3}.
        let g = gen::path(4);
        let a = Aggregation {
            labels: vec![0, 0, 1, 1],
            num_aggregates: 2,
            roots: vec![0, 2],
        };
        a.validate(&g).unwrap();
        assert_eq!(a.sizes(), vec![2, 2]);
        assert_eq!(a.mean_size(), 2.0);
    }

    #[test]
    fn detects_unassigned() {
        let g = gen::path(3);
        let a = Aggregation {
            labels: vec![0, UNAGGREGATED, 0],
            num_aggregates: 1,
            roots: vec![0],
        };
        assert!(matches!(
            a.validate(&g),
            Err(AggViolation::Unassigned { v: 1 })
        ));
    }

    #[test]
    fn detects_bad_label() {
        let g = gen::path(2);
        let a = Aggregation {
            labels: vec![0, 5],
            num_aggregates: 1,
            roots: vec![0],
        };
        assert!(matches!(a.validate(&g), Err(AggViolation::BadLabel { .. })));
    }

    #[test]
    fn detects_empty_aggregate() {
        let g = gen::path(2);
        let a = Aggregation {
            labels: vec![0, 0],
            num_aggregates: 2,
            roots: vec![0, 1],
        };
        assert!(matches!(
            a.validate(&g),
            Err(AggViolation::EmptyAggregate { agg: 1 })
        ));
    }

    #[test]
    fn detects_disconnected_aggregate() {
        // Path 0-1-2: {0, 2} is not connected.
        let g = gen::path(3);
        let a = Aggregation {
            labels: vec![0, 1, 0],
            num_aggregates: 2,
            roots: vec![0, 1],
        };
        assert!(matches!(
            a.validate(&g),
            Err(AggViolation::Disconnected { agg: 0 })
        ));
    }
}
