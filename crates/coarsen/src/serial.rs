//! Sequential greedy aggregation — the "Serial Agg" baseline of Table V.
//!
//! Models MueLu's original host-side aggregation (derived from ML's
//! non-MIS-2 scheme with Wiesner's enhancements): a greedy sweep roots an
//! aggregate at every vertex whose whole neighborhood is still free, then
//! leftovers join the adjacent aggregate with the strongest coupling.
//! Entirely sequential — deterministic, but the paper's Table V shows its
//! aggregation phase is ~20-30x slower than the device-resident schemes.

use crate::agg::{Aggregation, UNAGGREGATED};
use mis2_graph::{CsrGraph, VertexId};

/// Sequential greedy aggregation.
pub fn serial_aggregation(g: &CsrGraph) -> Aggregation {
    let n = g.num_vertices();
    let mut labels = vec![UNAGGREGATED; n];
    let mut roots: Vec<VertexId> = Vec::new();
    let mut sizes: Vec<u32> = Vec::new();

    // Pass 1: root wherever the full closed neighborhood is free.
    for v in 0..n as VertexId {
        if labels[v as usize] != UNAGGREGATED {
            continue;
        }
        if g.neighbors(v)
            .iter()
            .all(|&w| labels[w as usize] == UNAGGREGATED)
        {
            let a = roots.len() as u32;
            labels[v as usize] = a;
            let mut size = 1;
            for &w in g.neighbors(v) {
                labels[w as usize] = a;
                size += 1;
            }
            roots.push(v);
            sizes.push(size);
        }
    }

    // Pass 2: leftovers join by max coupling (ties -> smaller aggregate,
    // then smaller id). Sequential, so sizes update as we go — this is the
    // behavior of the host algorithm, and it is still deterministic.
    for v in 0..n as VertexId {
        if labels[v as usize] != UNAGGREGATED {
            continue;
        }
        let mut cand: Vec<(u32, u32)> = Vec::new();
        for &w in g.neighbors(v) {
            let a = labels[w as usize];
            if a == UNAGGREGATED {
                continue;
            }
            match cand.iter_mut().find(|(ca, _)| *ca == a) {
                Some((_, c)) => *c += 1,
                None => cand.push((a, 1)),
            }
        }
        let best = cand.into_iter().min_by(|&(a1, c1), &(a2, c2)| {
            c2.cmp(&c1)
                .then(sizes[a1 as usize].cmp(&sizes[a2 as usize]))
                .then(a1.cmp(&a2))
        });
        match best {
            Some((a, _)) => {
                labels[v as usize] = a;
                sizes[a as usize] += 1;
            }
            None => {
                // Isolated pocket: new singleton aggregate (pass 1 only
                // skips a vertex when a neighbor is aggregated, so this
                // happens only for isolated vertices).
                let a = roots.len() as u32;
                labels[v as usize] = a;
                roots.push(v);
                sizes.push(1);
            }
        }
    }

    let num_aggregates = roots.len();
    Aggregation {
        labels,
        num_aggregates,
        roots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn covers_grid() {
        let g = gen::laplace3d(7, 7, 7);
        let a = serial_aggregation(&g);
        a.validate(&g).unwrap();
    }

    #[test]
    fn covers_random() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(300, 600, seed);
            let a = serial_aggregation(&g);
            a.validate(&g).unwrap();
        }
    }

    #[test]
    fn first_vertex_roots_first_aggregate() {
        let g = gen::path(10);
        let a = serial_aggregation(&g);
        assert_eq!(a.roots[0], 0);
        assert_eq!(a.labels[0], 0);
        assert_eq!(a.labels[1], 0);
    }

    #[test]
    fn deterministic() {
        let g = gen::erdos_renyi(400, 1600, 7);
        assert_eq!(serial_aggregation(&g), serial_aggregation(&g));
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::empty(3);
        let a = serial_aggregation(&g);
        a.validate(&g).unwrap();
        assert_eq!(a.num_aggregates, 3);
    }

    #[test]
    fn coarsening_rate_reasonable() {
        let g = gen::laplace2d(20, 20);
        let a = serial_aggregation(&g);
        a.validate(&g).unwrap();
        assert!(a.mean_size() >= 3.0, "rate {}", a.mean_size());
    }
}
