//! Distance-2-coloring based aggregation — the "Serial D2C" and "NB D2C"
//! baselines of Table V.
//!
//! The vertices of one color class of a distance-2 coloring form a
//! (non-maximal) distance-2 independent set, so MueLu can sweep colors and
//! root aggregates wave by wave:
//!
//! * for each color `c` in increasing order: every still-unaggregated
//!   vertex of color `c` with at least `min_unagg` unaggregated neighbors
//!   roots an aggregate with those neighbors (conflict-free within a color:
//!   two same-colored vertices are at distance > 2, so they share no
//!   neighbor);
//! * leftovers join an adjacent aggregate.
//!
//! "Serial D2C" uses a sequential coloring (reverse-offloaded to host in
//! MueLu); "NB D2C" uses the parallel net-based coloring. MueLu's leftover
//! join races threads, which is why Table V marks both nondeterministic;
//! this reimplementation resolves the join deterministically but keeps the
//! paper's classification in the harness tables (see EXPERIMENTS.md).

use crate::agg::{Aggregation, UNAGGREGATED};
use mis2_color::{color_d2_serial, color_d2_speculative, ColorSets, Coloring};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::SharedMut;

/// Minimum unaggregated neighbors a root candidate needs (matches the
/// "sufficiently many unaggregated neighbors" rule of the paper's Serial
/// D2C description and Algorithm 3's phase 2 constant).
const MIN_UNAGG_NEIGHBORS: usize = 2;

/// Aggregation driven by a distance-2 coloring.
pub fn d2c_aggregation(g: &CsrGraph, coloring: &Coloring) -> Aggregation {
    let n = g.num_vertices();
    let sets = ColorSets::build(coloring);
    let mut labels = vec![UNAGGREGATED; n];
    let mut roots: Vec<VertexId> = Vec::new();

    for c in 0..sets.num_colors() {
        let members = sets.members(c);
        // Root candidates of this color (read-only pass over labels).
        let candidates: Vec<VertexId> = mis2_prim::compact::par_filter(members, |&v| {
            labels[v as usize] == UNAGGREGATED
                && g.neighbors(v)
                    .iter()
                    .filter(|&&w| labels[w as usize] == UNAGGREGATED)
                    .count()
                    >= MIN_UNAGG_NEIGHBORS
        });
        // Claim aggregates (same-color roots share no neighbors).
        let base = roots.len() as u32;
        {
            let lw = SharedMut::new(&mut labels);
            par::for_each_indexed(&candidates, |k, &v| {
                let label = base + k as u32;
                unsafe { lw.write(v as usize, label) };
                for &w in g.neighbors(v) {
                    // SAFETY: w was unaggregated and no other root of this
                    // color neighbors it; roots themselves are distance > 2
                    // apart so v's slot is also exclusive.
                    if unsafe { lw.read(w as usize) } == UNAGGREGATED {
                        unsafe { lw.write(w as usize, label) };
                    }
                }
            });
        }
        roots.extend_from_slice(&candidates);
    }

    // Leftovers: join the adjacent aggregate with max coupling (frozen
    // tentative labels, as in Algorithm 3 phase 3).
    let tent = labels.clone();
    let mut sizes = vec![0u32; roots.len()];
    for &l in &tent {
        if l != UNAGGREGATED {
            sizes[l as usize] += 1;
        }
    }
    {
        let lw = SharedMut::new(&mut labels);
        let tent_ref: &[u32] = &tent;
        let sizes_ref: &[u32] = &sizes;
        par::for_range(0..n as VertexId, |v| {
            if tent_ref[v as usize] != UNAGGREGATED {
                return;
            }
            let mut cand: Vec<(u32, u32)> = Vec::new();
            for &w in g.neighbors(v) {
                let a = tent_ref[w as usize];
                if a == UNAGGREGATED {
                    continue;
                }
                match cand.iter_mut().find(|(ca, _)| *ca == a) {
                    Some((_, cc)) => *cc += 1,
                    None => cand.push((a, 1)),
                }
            }
            let best = cand.into_iter().min_by(|&(a1, c1), &(a2, c2)| {
                c2.cmp(&c1)
                    .then(sizes_ref[a1 as usize].cmp(&sizes_ref[a2 as usize]))
                    .then(a1.cmp(&a2))
            });
            if let Some((a, _)) = best {
                unsafe { lw.write(v as usize, a) };
            }
        });
    }

    // Remaining pockets (no adjacent aggregate at all): sequential sweep.
    let mut extra: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if labels[v as usize] != UNAGGREGATED {
            continue;
        }
        if let Some(l) = g
            .neighbors(v)
            .iter()
            .map(|&w| labels[w as usize])
            .filter(|&l| l != UNAGGREGATED)
            .min()
        {
            labels[v as usize] = l;
        } else {
            let label = (roots.len() + extra.len()) as u32;
            labels[v as usize] = label;
            extra.push(v);
        }
    }
    roots.extend_from_slice(&extra);

    let num_aggregates = roots.len();
    Aggregation {
        labels,
        num_aggregates,
        roots,
    }
}

/// "Serial D2C": sequential distance-2 coloring + parallel aggregation.
pub fn serial_d2c_aggregation(g: &CsrGraph) -> Aggregation {
    let coloring = color_d2_serial(g);
    d2c_aggregation(g, &coloring)
}

/// "NB D2C": parallel net-based distance-2 coloring + parallel aggregation.
/// Uses the speculative coloring, like the production implementation the
/// paper classifies as nondeterministic.
pub fn nb_d2c_aggregation(g: &CsrGraph, seed: u64) -> Aggregation {
    let coloring = color_d2_speculative(g, seed);
    d2c_aggregation(g, &coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn covers_grid_both_flavors() {
        let g = gen::laplace3d(7, 7, 7);
        let a = serial_d2c_aggregation(&g);
        a.validate(&g).unwrap();
        let b = nb_d2c_aggregation(&g, 0);
        b.validate(&g).unwrap();
    }

    #[test]
    fn covers_random() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(300, 900, seed);
            serial_d2c_aggregation(&g).validate(&g).unwrap();
            nb_d2c_aggregation(&g, seed).validate(&g).unwrap();
        }
    }

    #[test]
    fn covers_sparse_with_pockets() {
        let g = gen::erdos_renyi(200, 80, 1);
        serial_d2c_aggregation(&g).validate(&g).unwrap();
    }

    #[test]
    fn same_color_roots_never_conflict() {
        // Structural property underpinning the parallel claim phase: no
        // vertex ends up with a label that is not one of its neighbors'
        // roots or its own.
        let g = gen::laplace2d(15, 15);
        let a = nb_d2c_aggregation(&g, 3);
        a.validate(&g).unwrap();
        for v in 0..g.num_vertices() as u32 {
            let l = a.labels[v as usize];
            let root = a.roots[l as usize];
            let ok = root == v || g.neighbors(v).iter().any(|&w| a.labels[w as usize] == l);
            assert!(ok, "vertex {v} disconnected from aggregate {l}");
        }
    }

    #[test]
    fn deterministic_given_coloring() {
        let g = gen::erdos_renyi(400, 1600, 5);
        let coloring = mis2_color::color_d2(&g, 1);
        let a = d2c_aggregation(&g, &coloring);
        let b = mis2_prim::pool::with_pool(1, || d2c_aggregation(&g, &coloring));
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::empty(3);
        let a = serial_d2c_aggregation(&g);
        a.validate(&g).unwrap();
        assert_eq!(a.num_aggregates, 3);
    }
}
