//! Multilevel graph partitioning on top of MIS-2 coarsening.
//!
//! The paper's conclusion names this as future work: "we plan to evaluate
//! our graph coarsening algorithm in the context of multilevel graph
//! partitioning as a replacement for the MIS-2 based coarsening of Bell et
//! al. as used in Gilbert et al." This module implements that pipeline —
//! the classic three-phase multilevel scheme with Algorithm 3 as the
//! coarsener:
//!
//! 1. **Coarsen** recursively with MIS-2 aggregation, carrying vertex
//!    weights (aggregate sizes) and edge weights (collapsed multiplicity);
//! 2. **Initial partition** the coarsest graph by greedy weighted BFS
//!    region growth from a pseudo-peripheral seed;
//! 3. **Uncoarsen + refine**: project labels back level by level, running
//!    a deterministic boundary-refinement pass (positive-gain moves under
//!    a balance constraint, applied in a fixed order) at each level.
//!
//! Everything is deterministic: same graph, same partition, any thread
//! count. Recursive bisection extends 2-way partitioning to any
//! power-of-two part count.

use crate::agg::Aggregation;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;

/// A k-way partition of a graph's vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `parts[v]` in `0..num_parts`.
    pub parts: Vec<u32>,
    /// Number of parts.
    pub num_parts: usize,
}

/// Quality metrics of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of undirected edges crossing parts.
    pub edge_cut: usize,
    /// Max part weight divided by ideal weight (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Weight of each part.
    pub part_weights: Vec<u64>,
}

/// Partitioner options.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Stop coarsening below this many vertices.
    pub coarsen_to: usize,
    /// Maximum coarsening levels.
    pub max_levels: usize,
    /// Allowed imbalance (1.05 = 5%).
    pub balance_tolerance: f64,
    /// Boundary-refinement passes per level.
    pub refine_passes: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            coarsen_to: 64,
            max_levels: 20,
            balance_tolerance: 1.05,
            refine_passes: 4,
        }
    }
}

/// A weighted graph level for the multilevel scheme.
struct WLevel {
    graph: CsrGraph,
    /// Vertex weights (fine vertices aggregated into each coarse vertex).
    vweights: Vec<u64>,
    /// Edge weight per CSR slot (multiplicity of collapsed fine edges).
    eweights: Vec<u64>,
    /// Aggregation that produced the *next* level (None at the coarsest).
    agg: Option<Aggregation>,
}

/// Compute the quality metrics of a partition.
pub fn quality(g: &CsrGraph, p: &Partition) -> PartitionQuality {
    assert_eq!(p.parts.len(), g.num_vertices());
    let cut2: usize = par::map_reduce_range(
        0..g.num_vertices() as VertexId,
        |v| {
            g.neighbors(v)
                .iter()
                .filter(|&&w| p.parts[w as usize] != p.parts[v as usize])
                .count()
        },
        0,
        |a, b| a + b,
    );
    let mut part_weights = vec![0u64; p.num_parts];
    for &pt in &p.parts {
        part_weights[pt as usize] += 1;
    }
    let ideal = g.num_vertices() as f64 / p.num_parts as f64;
    let maxw = part_weights.iter().copied().max().unwrap_or(0) as f64;
    PartitionQuality {
        edge_cut: cut2 / 2,
        imbalance: maxw / ideal.max(1.0),
        part_weights,
    }
}

/// Recursive-bisection k-way partition (`num_parts` must be a power of
/// two).
///
/// ```
/// use mis2_coarsen::{partition, quality, PartitionConfig};
/// let g = mis2_graph::gen::laplace2d(16, 16);
/// let p = partition(&g, 2, &PartitionConfig::default());
/// let q = quality(&g, &p);
/// assert!(q.imbalance < 1.1 && q.edge_cut < 64);
/// ```
pub fn partition(g: &CsrGraph, num_parts: usize, cfg: &PartitionConfig) -> Partition {
    assert!(
        num_parts >= 1 && num_parts.is_power_of_two(),
        "num_parts must be a power of two"
    );
    let n = g.num_vertices();
    let mut parts = vec![0u32; n];
    if num_parts > 1 {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        bisect_recursive(g, &ids, 0, num_parts as u32, &mut parts, cfg);
    }
    Partition { parts, num_parts }
}

fn bisect_recursive(
    g: &CsrGraph,
    vertices: &[VertexId],
    base: u32,
    parts_here: u32,
    out: &mut [u32],
    cfg: &PartitionConfig,
) {
    if parts_here == 1 {
        for &v in vertices {
            out[v as usize] = base;
        }
        return;
    }
    // Build the induced subgraph of this region.
    let mut keep = vec![false; g.num_vertices()];
    for &v in vertices {
        keep[v as usize] = true;
    }
    let (sub, new_to_old) = mis2_graph::ops::induced_subgraph(g, &keep);
    let halves = bisect(&sub, cfg);
    let mut left: Vec<VertexId> = Vec::with_capacity(vertices.len() / 2 + 1);
    let mut right: Vec<VertexId> = Vec::with_capacity(vertices.len() / 2 + 1);
    for (i, &old) in new_to_old.iter().enumerate() {
        if halves[i] {
            right.push(old);
        } else {
            left.push(old);
        }
    }
    let half = parts_here / 2;
    bisect_recursive(g, &left, base, half, out, cfg);
    bisect_recursive(g, &right, base + half, parts_here - half, out, cfg);
}

/// Multilevel 2-way partition; returns `true` for the "right" side.
fn bisect(g: &CsrGraph, cfg: &PartitionConfig) -> Vec<bool> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![false];
    }
    // ---- Phase 1: weighted coarsening -----------------------------------
    let mut levels: Vec<WLevel> = Vec::new();
    let mut cur = WLevel {
        graph: g.clone(),
        vweights: vec![1u64; n],
        eweights: vec![1u64; g.num_directed_edges()],
        agg: None,
    };
    while levels.len() + 1 < cfg.max_levels && cur.graph.num_vertices() > cfg.coarsen_to {
        let agg = crate::mis2_agg::mis2_aggregation(&cur.graph);
        if agg.num_aggregates >= cur.graph.num_vertices() {
            break;
        }
        let coarse = build_weighted_quotient(&cur, &agg);
        cur.agg = Some(agg);
        levels.push(cur);
        cur = coarse;
    }
    levels.push(cur);

    // ---- Phase 2: initial partition of the coarsest level ---------------
    let coarsest = levels.last().unwrap();
    let mut side = grow_bisection(&coarsest.graph, &coarsest.vweights);
    refine(coarsest, &mut side, cfg);

    // ---- Phase 3: uncoarsen + refine -------------------------------------
    for li in (0..levels.len() - 1).rev() {
        let fine = &levels[li];
        let agg = fine
            .agg
            .as_ref()
            .expect("non-coarsest level has aggregation");
        let mut fine_side = vec![false; fine.graph.num_vertices()];
        par::for_each_mut_indexed(&mut fine_side, |i, s| *s = side[agg.labels[i] as usize]);
        side = fine_side;
        refine(fine, &mut side, cfg);
    }
    side
}

/// Weighted quotient graph: vertex weights sum, parallel edge weights sum.
fn build_weighted_quotient(lvl: &WLevel, agg: &Aggregation) -> WLevel {
    let nc = agg.num_aggregates;
    let g = &lvl.graph;
    // Vertex weights.
    let mut vweights = vec![0u64; nc];
    for (v, &l) in agg.labels.iter().enumerate() {
        vweights[l as usize] += lvl.vweights[v];
    }
    // Coarse adjacency with summed edge weights, built per coarse vertex.
    // Group fine vertices by aggregate first.
    let (counts, members) = mis2_prim::bucket::bucket_by_key(nc, &agg.labels);
    let rows: Vec<(Vec<VertexId>, Vec<u64>)> = par::map_range(0..nc, |a| {
        let mut pairs: Vec<(VertexId, u64)> = Vec::new();
        for &v in &members[counts[a]..counts[a + 1]] {
            let lo = g.row_ptr()[v as usize];
            for (k, &w) in g.neighbors(v).iter().enumerate() {
                let la = agg.labels[w as usize];
                if la as usize != a {
                    pairs.push((la, lvl.eweights[lo + k]));
                }
            }
        }
        pairs.sort_unstable_by_key(|p| p.0);
        let mut cols = Vec::new();
        let mut ws: Vec<u64> = Vec::new();
        for (c, w) in pairs {
            if cols.last() == Some(&c) {
                *ws.last_mut().unwrap() += w;
            } else {
                cols.push(c);
                ws.push(w);
            }
        }
        (cols, ws)
    });
    let mut row_ptr = Vec::with_capacity(nc + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for (c, _) in &rows {
        total += c.len();
        row_ptr.push(total);
    }
    let mut col_idx = Vec::with_capacity(total);
    let mut eweights = Vec::with_capacity(total);
    for (c, w) in rows {
        col_idx.extend_from_slice(&c);
        eweights.extend_from_slice(&w);
    }
    let graph = CsrGraph::from_csr(nc, row_ptr, col_idx).expect("quotient CSR invariants");
    WLevel {
        graph,
        vweights,
        eweights,
        agg: None,
    }
}

/// Greedy weighted BFS region growth from a pseudo-peripheral vertex:
/// the grown region becomes side `false`; the rest side `true`.
fn grow_bisection(g: &CsrGraph, vweights: &[u64]) -> Vec<bool> {
    let n = g.num_vertices();
    let total: u64 = vweights.iter().sum();
    let target = total / 2;
    // Pseudo-peripheral seed: BFS twice from vertex 0.
    let seed = farthest_vertex(g, farthest_vertex(g, 0));
    let mut side = vec![true; n];
    let mut grown = 0u64;
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; n];
    queue.push_back(seed);
    visited[seed as usize] = true;
    while let Some(v) = queue.pop_front() {
        if grown + vweights[v as usize] > target && grown > 0 {
            continue;
        }
        side[v as usize] = false;
        grown += vweights[v as usize];
        for &w in g.neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    // Disconnected graphs: BFS may not reach half the weight; top up with
    // the smallest-id unassigned vertices (deterministic).
    if grown < target / 2 {
        for v in 0..n {
            if side[v] && grown + vweights[v] <= target {
                side[v] = false;
                grown += vweights[v];
            }
        }
    }
    side
}

fn farthest_vertex(g: &CsrGraph, from: VertexId) -> VertexId {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[from as usize] = 0;
    queue.push_back(from);
    let mut last = from;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    last
}

/// Deterministic boundary refinement: repeatedly move positive-gain
/// boundary vertices (highest gain first, id as tiebreak) subject to the
/// balance constraint.
fn refine(lvl: &WLevel, side: &mut [bool], cfg: &PartitionConfig) {
    let g = &lvl.graph;
    let n = g.num_vertices();
    let total: u64 = lvl.vweights.iter().sum();
    let max_side = ((total as f64 / 2.0) * cfg.balance_tolerance) as u64;
    let mut w_true: u64 = (0..n).filter(|&v| side[v]).map(|v| lvl.vweights[v]).sum();
    let mut w_false = total - w_true;

    for _ in 0..cfg.refine_passes {
        // Gains of boundary vertices (parallel, read-only).
        let mut moves: Vec<(i64, VertexId)> = par::map_range(0..n as VertexId, |v| {
            let sv = side[v as usize];
            let lo = g.row_ptr()[v as usize];
            let mut external: i64 = 0;
            let mut internal: i64 = 0;
            for (k, &w) in g.neighbors(v).iter().enumerate() {
                let ew = lvl.eweights[lo + k] as i64;
                if side[w as usize] == sv {
                    internal += ew;
                } else {
                    external += ew;
                }
            }
            let gain = external - internal;
            (gain > 0).then_some((gain, v))
        })
        .into_iter()
        .flatten()
        .collect();
        if moves.is_empty() {
            break;
        }
        // Deterministic order: best gain first, then smallest id.
        moves.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut applied = 0usize;
        for (_, v) in moves {
            let vw = lvl.vweights[v as usize];
            let sv = side[v as usize];
            // Re-check gain against the current (partially updated) sides.
            let lo = g.row_ptr()[v as usize];
            let mut gain: i64 = 0;
            for (k, &w) in g.neighbors(v).iter().enumerate() {
                let ew = lvl.eweights[lo + k] as i64;
                gain += if side[w as usize] == sv { -ew } else { ew };
            }
            if gain <= 0 {
                continue;
            }
            let (dst_weight, src_weight) = if sv {
                (w_false + vw, w_true - vw)
            } else {
                (w_true + vw, w_false - vw)
            };
            if dst_weight > max_side || src_weight == 0 {
                continue;
            }
            side[v as usize] = !sv;
            if sv {
                w_true -= vw;
                w_false += vw;
            } else {
                w_false -= vw;
                w_true += vw;
            }
            applied += 1;
        }
        if applied == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn bisection_of_grid_is_balanced_with_small_cut() {
        let g = gen::laplace2d(32, 32);
        let p = partition(&g, 2, &PartitionConfig::default());
        let q = quality(&g, &p);
        assert!(q.imbalance <= 1.10, "imbalance {}", q.imbalance);
        // A 32x32 grid has a 32-edge perfect bisection; allow 3x slack for
        // the greedy multilevel heuristic.
        assert!(q.edge_cut <= 96, "cut {}", q.edge_cut);
    }

    #[test]
    fn four_way_partition_of_grid() {
        let g = gen::laplace2d(24, 24);
        let p = partition(&g, 4, &PartitionConfig::default());
        let q = quality(&g, &p);
        assert_eq!(p.num_parts, 4);
        assert!(
            q.part_weights.iter().all(|&w| w > 0),
            "{:?}",
            q.part_weights
        );
        assert!(q.imbalance <= 1.25, "imbalance {}", q.imbalance);
        assert!(q.edge_cut <= 200, "cut {}", q.edge_cut);
        // All labels in range.
        assert!(p.parts.iter().all(|&pt| pt < 4));
    }

    #[test]
    fn partition_of_3d_grid() {
        let g = gen::laplace3d(10, 10, 10);
        let p = partition(&g, 2, &PartitionConfig::default());
        let q = quality(&g, &p);
        assert!(q.imbalance <= 1.10, "imbalance {}", q.imbalance);
        // Perfect cut for 10^3 is 100; allow slack.
        assert!(q.edge_cut <= 320, "cut {}", q.edge_cut);
    }

    #[test]
    fn better_than_random_partition() {
        let g = gen::laplace2d(24, 24);
        let p = partition(&g, 2, &PartitionConfig::default());
        let q = quality(&g, &p);
        // Random bisection cuts ~half the edges in expectation.
        let random = Partition {
            parts: (0..g.num_vertices() as u32)
                .map(|v| (mis2_prim::hash::splitmix64(v as u64) % 2) as u32)
                .collect(),
            num_parts: 2,
        };
        let qr = quality(&g, &random);
        assert!(
            q.edge_cut * 3 < qr.edge_cut,
            "multilevel {} vs random {}",
            q.edge_cut,
            qr.edge_cut
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = gen::laplace2d(20, 20);
        let p1 = mis2_prim::pool::with_pool(1, || partition(&g, 4, &PartitionConfig::default()));
        let p2 = mis2_prim::pool::with_pool(4, || partition(&g, 4, &PartitionConfig::default()));
        assert_eq!(p1, p2);
    }

    #[test]
    fn one_part_is_trivial() {
        let g = gen::path(10);
        let p = partition(&g, 1, &PartitionConfig::default());
        assert!(p.parts.iter().all(|&x| x == 0));
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two separate paths.
        let mut edges: Vec<(u32, u32)> = (0..49).map(|i| (i, i + 1)).collect();
        edges.extend((50..99).map(|i| (i, i + 1)));
        let g = CsrGraph::from_edges(100, &edges);
        let p = partition(&g, 2, &PartitionConfig::default());
        let q = quality(&g, &p);
        assert!(q.part_weights.iter().all(|&w| w > 0));
        assert!(q.imbalance <= 1.3, "imbalance {}", q.imbalance);
    }

    #[test]
    fn path_bisection_cuts_once_or_twice() {
        let g = gen::path(64);
        let p = partition(&g, 2, &PartitionConfig::default());
        let q = quality(&g, &p);
        assert!(q.edge_cut <= 4, "cut {} on a path", q.edge_cut);
        assert!(q.imbalance <= 1.15);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let g = gen::path(10);
        partition(&g, 3, &PartitionConfig::default());
    }

    #[test]
    fn quality_of_known_partition() {
        // Path 0-1-2-3, parts {0,1} | {2,3}: one cut edge.
        let g = gen::path(4);
        let p = Partition {
            parts: vec![0, 0, 1, 1],
            num_parts: 2,
        };
        let q = quality(&g, &p);
        assert_eq!(q.edge_cut, 1);
        assert_eq!(q.part_weights, vec![2, 2]);
        assert!((q.imbalance - 1.0).abs() < 1e-12);
    }
}
