//! Multilevel coarsening: quotient graphs and recursive hierarchies.
//!
//! Two consumers:
//!
//! * **Cluster Gauss-Seidel** (Algorithm 4 line 3) coarsens once and colors
//!   the coarse graph — [`quotient_graph`] builds that coarse graph.
//! * **Multilevel partitioning / analysis** (Gilbert et al., cited as the
//!   paper's other application): coarsen recursively until the graph is
//!   small — [`coarsen_recursive`].

use crate::agg::Aggregation;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;

/// The coarse (quotient) graph of an aggregation: one vertex per aggregate,
/// an edge between two aggregates iff some original edge crosses them.
pub fn quotient_graph(g: &CsrGraph, agg: &Aggregation) -> CsrGraph {
    let nc = agg.num_aggregates;
    // Collect cross-aggregate edges per aggregate, then dedup.
    let per_vertex: Vec<Vec<(VertexId, VertexId)>> =
        par::map_range(0..g.num_vertices() as VertexId, |v| {
            let la = agg.labels[v as usize];
            g.neighbors(v)
                .iter()
                .filter_map(|&w| {
                    let lb = agg.labels[w as usize];
                    (la < lb).then_some((la, lb))
                })
                .collect()
        });
    let edges: Vec<(VertexId, VertexId)> = per_vertex.into_iter().flatten().collect();
    CsrGraph::from_edges(nc, &edges)
}

/// One level of a multilevel hierarchy.
#[derive(Debug, Clone)]
pub struct Level {
    /// The graph at this level (level 0 = input graph).
    pub graph: CsrGraph,
    /// Aggregation used to produce the *next* level (`None` on the
    /// coarsest level).
    pub agg: Option<Aggregation>,
}

impl Level {
    /// Approximate heap footprint in bytes of this level (graph plus
    /// aggregation) for memory-bounded caches.
    pub fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes() + self.agg.as_ref().map_or(0, |a| a.heap_bytes())
    }
}

/// Approximate heap footprint in bytes of a whole hierarchy (the
/// finest-to-coarsest `Vec<Level>` returned by [`coarsen_recursive`]).
pub fn hierarchy_heap_bytes(levels: &[Level]) -> usize {
    levels.iter().map(Level::heap_bytes).sum()
}

/// Recursively coarsen with Algorithm 3 until `min_vertices` is reached or
/// `max_levels` produced. Returns the levels from finest to coarsest.
pub fn coarsen_recursive(g: &CsrGraph, min_vertices: usize, max_levels: usize) -> Vec<Level> {
    let mut levels: Vec<Level> = Vec::new();
    let mut cur = g.clone();
    while levels.len() + 1 < max_levels && cur.num_vertices() > min_vertices {
        let agg = crate::mis2_agg::mis2_aggregation(&cur);
        if agg.num_aggregates >= cur.num_vertices() {
            break; // no progress (e.g. edgeless graph)
        }
        let coarse = quotient_graph(&cur, &agg);
        levels.push(Level {
            graph: cur,
            agg: Some(agg),
        });
        cur = coarse;
    }
    levels.push(Level {
        graph: cur,
        agg: None,
    });
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn quotient_of_path() {
        // Path 0-1-2-3 with aggregates {0,1}, {2,3} -> coarse path of 2.
        let g = gen::path(4);
        let agg = Aggregation {
            labels: vec![0, 0, 1, 1],
            num_aggregates: 2,
            roots: vec![0, 2],
        };
        let q = quotient_graph(&g, &agg);
        assert_eq!(q.num_vertices(), 2);
        assert_eq!(q.num_edges(), 1);
        assert!(q.has_edge(0, 1));
    }

    #[test]
    fn quotient_no_self_loops() {
        let g = gen::laplace2d(10, 10);
        let agg = crate::mis2_agg::mis2_aggregation(&g);
        let q = quotient_graph(&g, &agg);
        q.validate_symmetric().unwrap();
        for v in 0..q.num_vertices() as u32 {
            assert!(!q.has_edge(v, v));
        }
    }

    #[test]
    fn quotient_connectivity_preserved() {
        // A connected graph coarsens to a connected graph.
        let g = gen::laplace3d(6, 6, 6);
        let agg = crate::mis2_agg::mis2_aggregation(&g);
        let q = quotient_graph(&g, &agg);
        let (nc, _) = mis2_graph::ops::connected_components(&q);
        assert_eq!(nc, 1);
    }

    #[test]
    fn recursive_coarsening_shrinks() {
        let g = gen::laplace2d(30, 30);
        let levels = coarsen_recursive(&g, 10, 10);
        assert!(levels.len() >= 3, "only {} levels", levels.len());
        for w in levels.windows(2) {
            assert!(w[1].graph.num_vertices() < w[0].graph.num_vertices());
        }
        let coarsest = levels.last().unwrap();
        assert!(coarsest.graph.num_vertices() <= 30, "coarsest too big");
        assert!(coarsest.agg.is_none());
    }

    #[test]
    fn recursion_stops_on_small_input() {
        let g = gen::path(5);
        let levels = coarsen_recursive(&g, 10, 10);
        assert_eq!(levels.len(), 1);
    }

    #[test]
    fn max_levels_respected() {
        let g = gen::laplace2d(40, 40);
        let levels = coarsen_recursive(&g, 2, 3);
        assert!(levels.len() <= 3);
    }
}
