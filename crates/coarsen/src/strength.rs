//! Strength-of-connection filtering.
//!
//! Smoothed-aggregation AMG does not aggregate across *weak* couplings:
//! MueLu (and ML before it) first builds a filtered "strength graph"
//! keeping only entries with
//!
//! ```text
//! |a_ij|  >  theta * sqrt(|a_ii| * |a_jj|)
//! ```
//!
//! and aggregates that graph instead of the raw pattern. For the paper's
//! isotropic Laplace/Elasticity problems every off-diagonal is strong, so
//! the experiments are unaffected — but for anisotropic operators dropping
//! weak couplings is what keeps aggregates aligned with the strong
//! direction. Provided as an opt-in preprocessing step for
//! [`crate::scheme::AggScheme`]-based pipelines.

use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_sparse::CsrMatrix;

/// Build the strength graph of `a` with drop tolerance `theta`
/// (`theta = 0` keeps every symmetric off-diagonal coupling).
pub fn strength_graph(a: &CsrMatrix, theta: f64) -> CsrGraph {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "strength graph requires square matrix"
    );
    let n = a.nrows();
    let diag = a.diag();
    let diag_ref: &[f64] = &diag;
    let per_row: Vec<Vec<(VertexId, VertexId)>> = par::map_range(0..n, |r| {
        let (cols, vals) = a.row(r);
        let dr = diag_ref[r].abs();
        cols.iter()
            .zip(vals)
            .filter_map(|(&c, &v)| {
                if c as usize == r {
                    return None;
                }
                let dc = diag_ref[c as usize].abs();
                let strong = v.abs() > theta * (dr * dc).sqrt();
                strong.then_some((r as VertexId, c))
            })
            .collect::<Vec<_>>()
    });
    let edges: Vec<(VertexId, VertexId)> = per_row.into_iter().flatten().collect();
    CsrGraph::from_edges(n, &edges)
}

/// Generate an anisotropic 2D operator `-eps * u_xx - u_yy` (5-point),
/// the standard test problem for strength filtering: x-couplings have
/// weight `-eps`, y-couplings `-1`.
pub fn anisotropic2d_matrix(nx: usize, ny: usize, eps: f64) -> CsrMatrix {
    let n = nx * ny;
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(n * 5);
    for y in 0..ny {
        for x in 0..nx {
            let v = idx(x, y);
            entries.push((v, v, 2.0 * eps + 2.0));
            if x > 0 {
                entries.push((v, idx(x - 1, y), -eps));
            }
            if x + 1 < nx {
                entries.push((v, idx(x + 1, y), -eps));
            }
            if y > 0 {
                entries.push((v, idx(x, y - 1), -1.0));
            }
            if y + 1 < ny {
                entries.push((v, idx(x, y + 1), -1.0));
            }
        }
    }
    CsrMatrix::from_coo(n, n, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_sparse::gen as sgen;

    #[test]
    fn theta_zero_keeps_full_pattern() {
        let a = sgen::laplace2d_matrix(8, 8);
        let g_full = a.to_graph();
        let g_strength = strength_graph(&a, 0.0);
        assert_eq!(g_full, g_strength);
    }

    #[test]
    fn large_theta_drops_everything() {
        let a = sgen::laplace2d_matrix(8, 8);
        let g = strength_graph(&a, 10.0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn anisotropic_filtering_keeps_strong_direction() {
        // eps = 0.01: x-couplings are weak, y-couplings strong.
        let a = anisotropic2d_matrix(10, 10, 0.01);
        let g = strength_graph(&a, 0.1);
        // Every surviving edge is a y-neighbor (difference of nx = 10).
        for v in 0..g.num_vertices() as u32 {
            for &w in g.neighbors(v) {
                let diff = (v as i64 - w as i64).unsigned_abs();
                assert_eq!(diff, 10, "weak x-coupling survived: {v}-{w}");
            }
        }
        // Strong edges all survive: interior vertices keep 2 y-neighbors.
        assert!(g.avg_degree() > 1.5, "avg {}", g.avg_degree());
    }

    #[test]
    fn aggregation_on_strength_graph_aligns_with_anisotropy() {
        // Aggregates built on the filtered graph are vertical "line"
        // aggregates (all members share the x coordinate).
        let nx = 12;
        let a = anisotropic2d_matrix(nx, 12, 0.001);
        let g = strength_graph(&a, 0.1);
        let agg = crate::mis2_agg::mis2_aggregation(&g);
        agg.validate(&g).unwrap();
        for v in 0..g.num_vertices() {
            let root = agg.roots[agg.labels[v] as usize] as usize;
            assert_eq!(v % nx, root % nx, "aggregate crosses the weak direction");
        }
    }

    #[test]
    fn anisotropic_matrix_is_spd_like() {
        let a = anisotropic2d_matrix(6, 6, 0.1);
        assert!(a.is_symmetric(1e-14));
        let x: Vec<f64> = (0..36).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let ax = a.spmv(&x);
        assert!(mis2_sparse::kernels::dot(&x, &ax) > 0.0);
    }
}
