//! Algorithm 2 — basic MIS-2 coarsening (Bell et al. / ViennaCL scheme).
//!
//! Each MIS-2 vertex becomes a root; roots absorb their direct neighbors;
//! leftover vertices (at distance exactly 2 from some root, guaranteed by
//! maximality) join an adjacent aggregate "arbitrarily". For determinism we
//! resolve "arbitrarily" as the smallest adjacent aggregate id — Bell's GPU
//! implementation used whichever thread won the race.
//!
//! The paper notes (Section II) that this coarsening "tends to produce
//! irregularly shaped aggregates" on structured problems, increasing solver
//! iterations — which is what Algorithm 3 ([`crate::mis2_agg`]) fixes and
//! Table V quantifies (MIS2 Basic: 49 CG iterations vs MIS2 Agg: 22).

use crate::agg::{Aggregation, UNAGGREGATED};
use mis2_core::Mis2Result;
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::SharedMut;

/// Algorithm 2 with a freshly computed MIS-2.
pub fn mis2_basic(g: &CsrGraph) -> Aggregation {
    let m = mis2_core::mis2(g);
    mis2_basic_from(g, &m)
}

/// Algorithm 2 from a precomputed MIS-2 (so Figure 7 can time MIS-2 and
/// coarsening with either MIS-2 implementation).
pub fn mis2_basic_from(g: &CsrGraph, m: &Mis2Result) -> Aggregation {
    let n = g.num_vertices();
    let num_aggregates = m.in_set.len();
    let mut labels = vec![UNAGGREGATED; n];

    // Roots get aggregate ids in MIS order (sorted by vertex id —
    // deterministic).
    for (a, &r) in m.in_set.iter().enumerate() {
        labels[r as usize] = a as u32;
    }

    // Phase 1: neighbors of roots. Two roots are at distance >= 3, so no
    // vertex has two root neighbors: the assignment is conflict-free.
    {
        let lw = SharedMut::new(&mut labels);
        par::for_range(0..n as VertexId, |v| {
            // SAFETY: each vertex writes only its own slot; reads go to
            // root slots which were finalized before this region.
            let cur = unsafe { lw.read(v as usize) };
            if cur != UNAGGREGATED {
                return;
            }
            for &w in g.neighbors(v) {
                if m.is_in[w as usize] {
                    let root_label = unsafe { lw.read(w as usize) };
                    unsafe { lw.write(v as usize, root_label) };
                    return;
                }
            }
        });
    }

    // Phase 2: leftovers join the smallest adjacent aggregate. By MIS-2
    // maximality every leftover is at distance 2 from a root, i.e. adjacent
    // to a phase-1 vertex, so one pass reading the phase-1 labels suffices.
    let phase1 = labels.clone();
    {
        let lw = SharedMut::new(&mut labels);
        par::for_range(0..n as VertexId, |v| {
            if phase1[v as usize] != UNAGGREGATED {
                return;
            }
            let best = g
                .neighbors(v)
                .iter()
                .map(|&w| phase1[w as usize])
                .filter(|&l| l != UNAGGREGATED)
                .min();
            if let Some(l) = best {
                unsafe { lw.write(v as usize, l) };
            }
        });
    }

    Aggregation {
        labels,
        num_aggregates,
        roots: m.in_set.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn covers_path() {
        let g = gen::path(20);
        let a = mis2_basic(&g);
        a.validate(&g).unwrap();
        assert!(
            a.num_aggregates >= 4 && a.num_aggregates <= 7,
            "{}",
            a.num_aggregates
        );
    }

    #[test]
    fn covers_random() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(300, 900, seed);
            let a = mis2_basic(&g);
            a.validate(&g).unwrap();
        }
    }

    #[test]
    fn covers_grid() {
        let g = gen::laplace3d(8, 8, 8);
        let a = mis2_basic(&g);
        a.validate(&g).unwrap();
        // 7-pt stencil: aggregates are roughly root + 6 neighbors + a few
        // leftovers -> coarsening rate between 5 and 13.
        let rate = a.mean_size();
        assert!(rate > 4.0 && rate < 14.0, "rate {rate}");
    }

    #[test]
    fn roots_take_own_aggregate() {
        let g = gen::laplace2d(10, 10);
        let m = mis2_core::mis2(&g);
        let a = mis2_basic_from(&g, &m);
        for (idx, &r) in a.roots.iter().enumerate() {
            assert_eq!(a.labels[r as usize] as usize, idx);
        }
    }

    #[test]
    fn root_neighbors_join_root() {
        let g = gen::star(8);
        let a = mis2_basic(&g);
        a.validate(&g).unwrap();
        assert_eq!(a.num_aggregates, 1);
        assert!(a.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn deterministic() {
        let g = gen::erdos_renyi(500, 2000, 4);
        let a = mis2_basic(&g);
        let b = mis2_prim::pool::with_pool(1, || mis2_basic(&g));
        assert_eq!(a, b);
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let g = CsrGraph::empty(5);
        let a = mis2_basic(&g);
        a.validate(&g).unwrap();
        assert_eq!(a.num_aggregates, 5);
    }
}
