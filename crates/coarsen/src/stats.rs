//! Aggregate-quality statistics.
//!
//! The paper's Table V interprets solver iteration counts through aggregate
//! *shape*: "for structured problems, this coarsening tends to produce
//! irregularly shaped aggregates, increasing the number of solver
//! iterations" (on Algorithm 2, quoting Bell et al.). This module computes
//! the quantitative shape metrics behind that discussion so schemes can be
//! compared without running a solver.

use crate::agg::Aggregation;
use mis2_graph::{CsrGraph, VertexId};

/// Shape/quality metrics of an aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct AggStats {
    /// Number of aggregates.
    pub count: usize,
    /// Mean aggregate size (coarsening rate).
    pub mean_size: f64,
    /// Smallest and largest aggregate.
    pub min_size: usize,
    pub max_size: usize,
    /// Standard deviation of sizes (regularity; lower = more uniform).
    pub size_stddev: f64,
    /// Number of singleton aggregates.
    pub singletons: usize,
    /// Fraction of graph edges internal to aggregates (higher = better
    /// locality; this is 1 - normalized edge cut of the partition).
    pub internal_edge_fraction: f64,
    /// Maximum eccentricity of any root within its aggregate (BFS hops
    /// from the root to the farthest member; `None` for rootless
    /// aggregates). Algorithms 2/3 guarantee <= 2 by construction.
    pub max_root_radius: Option<usize>,
}

/// Compute quality metrics for an aggregation of `g`.
pub fn aggregate_stats(g: &CsrGraph, agg: &Aggregation) -> AggStats {
    let sizes = agg.sizes();
    let count = agg.num_aggregates;
    let n = agg.labels.len().max(1);
    let mean = n as f64 / count.max(1) as f64;
    let var = if count > 0 {
        sizes
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / count as f64
    } else {
        0.0
    };
    let internal = (0..g.num_vertices() as VertexId)
        .map(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&w| agg.labels[w as usize] == agg.labels[v as usize])
                .count()
        })
        .sum::<usize>();
    let total_directed = g.num_directed_edges().max(1);

    // Root radius via per-aggregate BFS restricted to the aggregate.
    let mut max_radius: Option<usize> = None;
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut queue = std::collections::VecDeque::new();
    for (a, &root) in agg.roots.iter().enumerate() {
        if root == VertexId::MAX || sizes[a] <= 1 {
            continue;
        }
        queue.clear();
        dist[root as usize] = 0;
        queue.push_back(root);
        let mut radius = 0usize;
        let mut visited = vec![root];
        while let Some(v) = queue.pop_front() {
            radius = radius.max(dist[v as usize] as usize);
            for &w in g.neighbors(v) {
                if agg.labels[w as usize] as usize == a && dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    visited.push(w);
                    queue.push_back(w);
                }
            }
        }
        for v in visited {
            dist[v as usize] = u32::MAX;
        }
        max_radius = Some(max_radius.unwrap_or(0).max(radius));
    }

    AggStats {
        count,
        mean_size: mean,
        min_size: sizes.iter().copied().min().unwrap_or(0),
        max_size: sizes.iter().copied().max().unwrap_or(0),
        size_stddev: var.sqrt(),
        singletons: sizes.iter().filter(|&&s| s == 1).count(),
        internal_edge_fraction: internal as f64 / total_directed as f64,
        max_root_radius: max_radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_graph::gen;

    #[test]
    fn stats_of_known_partition() {
        // Path 0-1-2-3, aggregates {0,1}, {2,3}: 2 internal edges of 3.
        let g = gen::path(4);
        let agg = Aggregation {
            labels: vec![0, 0, 1, 1],
            num_aggregates: 2,
            roots: vec![0, 2],
        };
        let s = aggregate_stats(&g, &agg);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_size, 2.0);
        assert_eq!(s.min_size, 2);
        assert_eq!(s.max_size, 2);
        assert_eq!(s.singletons, 0);
        assert!((s.internal_edge_fraction - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.max_root_radius, Some(1));
    }

    #[test]
    fn algorithms_2_and_3_have_radius_at_most_2() {
        let g = gen::laplace3d(8, 8, 8);
        for agg in [
            crate::basic::mis2_basic(&g),
            crate::mis2_agg::mis2_aggregation(&g),
        ] {
            let s = aggregate_stats(&g, &agg);
            assert!(
                s.max_root_radius.unwrap_or(0) <= 2,
                "aggregate radius {} > 2",
                s.max_root_radius.unwrap_or(0)
            );
        }
    }

    #[test]
    fn mis2_agg_more_regular_than_basic() {
        // The quantitative version of the paper's Table V narrative:
        // Algorithm 3 produces a tighter size distribution than Algorithm 2
        // on structured problems.
        let g = gen::laplace3d(10, 10, 10);
        let basic = aggregate_stats(&g, &crate::basic::mis2_basic(&g));
        let agg = aggregate_stats(&g, &crate::mis2_agg::mis2_aggregation(&g));
        assert!(
            agg.size_stddev <= basic.size_stddev,
            "MIS2 Agg stddev {:.2} vs Basic {:.2}",
            agg.size_stddev,
            basic.size_stddev
        );
        assert!(agg.max_size <= basic.max_size);
    }

    #[test]
    fn internal_fraction_high_for_good_coarsening() {
        let g = gen::laplace2d(20, 20);
        let agg = crate::mis2_agg::mis2_aggregation(&g);
        let s = aggregate_stats(&g, &agg);
        assert!(
            s.internal_edge_fraction > 0.4,
            "{}",
            s.internal_edge_fraction
        );
    }

    #[test]
    fn empty_graph() {
        let g = mis2_graph::CsrGraph::empty(0);
        let agg = Aggregation {
            labels: vec![],
            num_aggregates: 0,
            roots: vec![],
        };
        let s = aggregate_stats(&g, &agg);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_root_radius, None);
    }
}
