//! Prolongators for smoothed-aggregation AMG.
//!
//! * [`tentative_prolongator`] — piecewise-constant `P_tent`: column `a` is
//!   the (normalized) indicator vector of aggregate `a`.
//! * [`smoothed_prolongator`] — one weighted-Jacobi smoothing step,
//!   `P = (I − ω D⁻¹ A) P_tent`, the standard SA-AMG construction used by
//!   MueLu in the paper's Table V experiment (ω defaults to 2/3, divided by
//!   the usual spectral heuristic).

use crate::agg::Aggregation;
use mis2_prim::par;
use mis2_sparse::{add_scaled, scale_rows, spgemm, CsrMatrix};

/// Piecewise-constant tentative prolongator. With `normalize`, each column
/// has unit 2-norm (so `P_tentᵀ P_tent = I`).
pub fn tentative_prolongator(agg: &Aggregation, normalize: bool) -> CsrMatrix {
    let n = agg.labels.len();
    let sizes = agg.sizes();
    let rows: Vec<(Vec<u32>, Vec<f64>)> = par::map_range(0..n, |v| {
        let a = agg.labels[v];
        let w = if normalize {
            1.0 / (sizes[a as usize] as f64).sqrt()
        } else {
            1.0
        };
        (vec![a], vec![w])
    });
    CsrMatrix::from_sorted_rows(n, agg.num_aggregates, rows)
}

/// Smoothed prolongator `P = (I − ω D⁻¹ A) P_tent`.
///
/// `omega` is the damping parameter; passing `None` uses the classic
/// `4/(3 ρ̂)` with `ρ̂` estimated as the max over rows of the absolute row
/// sum of `D⁻¹ A` (a cheap, deterministic upper bound on the spectral
/// radius).
pub fn smoothed_prolongator(a: &CsrMatrix, p_tent: &CsrMatrix, omega: Option<f64>) -> CsrMatrix {
    let diag = a.diag();
    let dinv: Vec<f64> = diag
        .iter()
        .map(|&d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
        .collect();
    let dinv_a = scale_rows(&dinv, a);
    let omega = omega.unwrap_or_else(|| {
        // rho(D^-1 A) <= max_i sum_j |(D^-1 A)_ij|
        let rho_hat = par::map_reduce_range(
            0..dinv_a.nrows(),
            |r| {
                let (_, vals) = dinv_a.row(r);
                vals.iter().map(|v| v.abs()).sum::<f64>()
            },
            0.0,
            f64::max,
        )
        .max(1e-12);
        4.0 / (3.0 * rho_hat)
    });
    let dinv_a_p = spgemm(&dinv_a, p_tent);
    add_scaled(1.0, p_tent, -omega, &dinv_a_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregation;
    use mis2_graph::gen;
    use mis2_sparse::gen as sgen;

    fn toy_agg() -> Aggregation {
        Aggregation {
            labels: vec![0, 0, 1, 1, 1],
            num_aggregates: 2,
            roots: vec![0, 2],
        }
    }

    #[test]
    fn tentative_unnormalized_rows() {
        let p = tentative_prolongator(&toy_agg(), false);
        assert_eq!(p.nrows(), 5);
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.nnz(), 5);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(4, 1), 1.0);
        assert_eq!(p.get(0, 1), 0.0);
    }

    #[test]
    fn tentative_normalized_columns() {
        let p = tentative_prolongator(&toy_agg(), true);
        // Column norms: sqrt(sum of squares) == 1.
        let pt = p.transpose();
        for c in 0..2 {
            let (_, vals) = pt.row(c);
            let norm: f64 = vals.iter().map(|v| v * v).sum::<f64>();
            assert!((norm - 1.0).abs() < 1e-12, "column {c} norm {norm}");
        }
        // P^T P = I.
        let ptp = spgemm(&pt, &p);
        assert!((ptp.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((ptp.get(1, 1) - 1.0).abs() < 1e-12);
        assert!(ptp.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn smoothed_preserves_shape() {
        let g = gen::laplace2d(8, 8);
        let a = sgen::laplace2d_matrix(8, 8);
        let agg = crate::mis2_agg::mis2_aggregation(&g);
        let pt = tentative_prolongator(&agg, true);
        let p = smoothed_prolongator(&a, &pt, Some(2.0 / 3.0));
        assert_eq!(p.nrows(), 64);
        assert_eq!(p.ncols(), agg.num_aggregates);
        // Smoothing widens the stencil: strictly more nonzeros.
        assert!(p.nnz() > pt.nnz());
    }

    #[test]
    fn smoothed_interpolates_constants_interior() {
        // For the singular (Neumann-like) graph Laplacian, D^-1 A 1 = 0 on
        // interior rows, so smoothing leaves the constant vector's
        // interpolation intact there: P * (column sums of aggregates) keeps
        // interior entries equal to the tentative interpolation.
        let g = gen::laplace2d(6, 6);
        let a = mis2_sparse::gen::from_graph_with_diag(&g, 4.0);
        let agg = crate::basic::mis2_basic(&g);
        let pt = tentative_prolongator(&agg, false);
        let p = smoothed_prolongator(&a, &pt, Some(0.5));
        // x_c = all ones -> P x_c should stay close to 1 in the interior.
        let ones = vec![1.0; agg.num_aggregates];
        let px = p.spmv(&ones);
        // Interior vertex of the 6x6 grid: id 14 = (2,2).
        let v = 14usize;
        if g.degree(v as u32) == 4 {
            assert!(
                (px[v] - 1.0).abs() < 0.6,
                "interior interpolation {}",
                px[v]
            );
        }
    }

    #[test]
    fn auto_omega_is_finite_positive() {
        let a = sgen::laplace3d_matrix(4, 4, 4);
        let g = gen::laplace3d(4, 4, 4);
        let agg = crate::mis2_agg::mis2_aggregation(&g);
        let pt = tentative_prolongator(&agg, true);
        let p = smoothed_prolongator(&a, &pt, None);
        assert!(p.frobenius_norm().is_finite());
        assert!(p.nnz() > 0);
    }
}
