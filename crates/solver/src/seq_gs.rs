//! Sequential (natural-order) symmetric Gauss-Seidel.
//!
//! The convergence gold standard both multicolor variants are measured
//! against: the paper motivates cluster multicolor GS as "a preconditioner
//! with a number of iterations closer to sequential Gauss-Seidel" — this
//! type makes that comparison executable. It is deterministic but offers
//! no parallelism (the point of the coloring machinery is to recover it).

use crate::precond::Preconditioner;
use mis2_sparse::CsrMatrix;

/// Natural-order symmetric Gauss-Seidel preconditioner.
pub struct SeqSgs {
    a: CsrMatrix,
    dinv: Vec<f64>,
    sweeps: usize,
}

impl SeqSgs {
    pub fn new(a: &CsrMatrix) -> Self {
        let dinv = a
            .diag()
            .into_iter()
            .map(|d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
            .collect();
        SeqSgs {
            a: a.clone(),
            dinv,
            sweeps: 1,
        }
    }

    fn update_row(&self, i: usize, b: &[f64], x: &mut [f64]) {
        let (cols, vals) = self.a.row(i);
        let mut acc = b[i];
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != i {
                acc -= v * x[c as usize];
            }
        }
        x[i] = acc * self.dinv[i];
    }

    /// One symmetric sweep: rows ascending, then descending.
    pub fn sgs_sweep(&self, b: &[f64], x: &mut [f64]) {
        let n = self.a.nrows();
        for i in 0..n {
            self.update_row(i, b, x);
        }
        for i in (0..n).rev() {
            self.update_row(i, b, x);
        }
    }
}

impl Preconditioner for SeqSgs {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..self.sweeps {
            self.sgs_sweep(r, z);
        }
    }

    fn name(&self) -> &'static str {
        "sequential SGS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::SolveOpts;
    use crate::gmres::gmres;
    use crate::gs::{ClusterMcSgs, PointMcSgs};
    use mis2_coarsen::AggScheme;
    use mis2_sparse::gen as sgen;

    #[test]
    fn converges_as_richardson() {
        let a = sgen::laplace2d_matrix(10, 10);
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let gs = SeqSgs::new(&a);
        let mut z = vec![0.0; 100];
        for _ in 0..200 {
            let r = mis2_sparse::kernels::residual(&a, &x, &b);
            gs.apply(&r, &mut z);
            mis2_sparse::kernels::axpy(1.0, &z, &mut x);
        }
        let rel = mis2_sparse::kernels::norm2(&mis2_sparse::kernels::residual(&a, &x, &b))
            / mis2_sparse::kernels::norm2(&b);
        assert!(rel < 1e-8, "rel {rel}");
    }

    #[test]
    fn iteration_ordering_seq_le_cluster_le_pointish() {
        // The paper's Section III-C narrative: sequential GS converges best,
        // cluster multicolor sits between it and point multicolor.
        let a = sgen::laplace3d_matrix(8, 8, 8);
        let b = vec![1.0; 512];
        let opts = SolveOpts {
            tol: 1e-8,
            max_iters: 500,
        };
        let iters = |p: &dyn crate::precond::Preconditioner| {
            let (_, r) = gmres(&a, &b, p, 50, &opts);
            assert!(r.converged);
            r.iterations
        };
        let seq = iters(&SeqSgs::new(&a));
        let cluster = iters(&ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0));
        let point = iters(&PointMcSgs::new(&a, 0));
        assert!(seq <= cluster + 2, "seq {seq} vs cluster {cluster}");
        assert!(cluster <= point + 2, "cluster {cluster} vs point {point}");
    }
}
