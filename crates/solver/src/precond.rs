//! The preconditioner interface plus the trivial members (identity,
//! Jacobi). The interesting preconditioners live in [`crate::gs`]
//! (point/cluster multicolor Gauss-Seidel) and [`crate::amg`] (SA-AMG).

use mis2_prim::par;
use mis2_sparse::CsrMatrix;

/// Application of `z = M⁻¹ r` for a fixed matrix.
pub trait Preconditioner: Send + Sync {
    /// Apply the preconditioner.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "preconditioner"
    }
}

/// No preconditioning: `z = r`.
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Jacobi (diagonal) preconditioning: `z = D⁻¹ r`.
pub struct Jacobi {
    dinv: Vec<f64>,
}

impl Jacobi {
    /// Build from the matrix diagonal.
    pub fn new(a: &CsrMatrix) -> Self {
        let dinv = a
            .diag()
            .into_iter()
            .map(|d| if d.abs() > 1e-300 { 1.0 / d } else { 1.0 })
            .collect();
        Jacobi { dinv }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        par::for_each_mut_indexed(z, |i, z| *z = r[i] * self.dinv[i]);
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Weighted Jacobi smoothing sweeps: `x += ω D⁻¹ (b - A x)`, repeated
/// `sweeps` times. This is the smoother of the paper's Table V experiment
/// ("2 sweeps of the Jacobi method as a smoother").
pub struct JacobiSmoother {
    pub omega: f64,
    pub sweeps: usize,
    dinv: Vec<f64>,
}

impl JacobiSmoother {
    pub fn new(a: &CsrMatrix, omega: f64, sweeps: usize) -> Self {
        let dinv = a
            .diag()
            .into_iter()
            .map(|d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
            .collect();
        JacobiSmoother {
            omega,
            sweeps,
            dinv,
        }
    }

    /// Run the sweeps in place.
    pub fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        scratch.resize(x.len(), 0.0);
        for _ in 0..self.sweeps {
            a.spmv_into(x, scratch);
            let omega = self.omega;
            let ax: &[f64] = scratch;
            par::for_each_mut_indexed(x, |i, x| *x += omega * self.dinv[i] * (b[i] - ax[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_sparse::gen as sgen;

    #[test]
    fn identity_copies() {
        let mut z = vec![0.0; 3];
        Identity.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn jacobi_divides_by_diag() {
        let a = sgen::laplace2d_matrix(3, 3);
        let j = Jacobi::new(&a);
        let r = vec![4.0; 9];
        let mut z = vec![0.0; 9];
        j.apply(&r, &mut z);
        for &v in &z {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_smoother_reduces_residual() {
        let a = sgen::laplace2d_matrix(10, 10);
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let sm = JacobiSmoother::new(&a, 2.0 / 3.0, 5);
        let mut scratch = Vec::new();
        let r0 = mis2_sparse::kernels::norm2(&mis2_sparse::kernels::residual(&a, &x, &b));
        sm.smooth(&a, &b, &mut x, &mut scratch);
        let r1 = mis2_sparse::kernels::norm2(&mis2_sparse::kernels::residual(&a, &x, &b));
        assert!(r1 < r0 * 0.8, "residual {r0} -> {r1}");
    }
}
