//! Preconditioned conjugate gradient.
//!
//! The main solver of the paper's Table V experiment ("conjugate gradient
//! (CG) as the main solver", tolerance 1e-12). Deterministic: all
//! reductions are the fixed-block deterministic kernels.

use crate::precond::Preconditioner;
use mis2_sparse::kernels::{axpy, dot, norm2, residual, xpay};
use mis2_sparse::CsrMatrix;

/// Outcome of a Krylov solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative-residual tolerance was reached.
    pub converged: bool,
    /// Final true relative residual `||b - Ax|| / ||b||`.
    pub relative_residual: f64,
    /// Per-iteration (preconditioned recurrence) residual norms.
    pub history: Vec<f64>,
}

impl SolveResult {
    /// Approximate heap footprint in bytes (capacity of the residual
    /// history) for memory-bounded caches. The solution vector is owned by
    /// the caller and accounted separately.
    pub fn heap_bytes(&self) -> usize {
        self.history.capacity() * std::mem::size_of::<f64>()
    }
}

/// Solver options.
#[derive(Debug, Clone, Copy)]
pub struct SolveOpts {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for SolveOpts {
    fn default() -> Self {
        SolveOpts {
            tol: 1e-8,
            max_iters: 1000,
        }
    }
}

/// Preconditioned CG on an SPD system. Returns the solution and statistics.
///
/// ```
/// use mis2_solver::{pcg, Jacobi, SolveOpts};
/// let a = mis2_sparse::gen::laplace2d_matrix(8, 8);
/// let b = vec![1.0; 64];
/// let (x, res) = pcg(&a, &b, &Jacobi::new(&a), &SolveOpts::default());
/// assert!(res.converged);
/// assert_eq!(x.len(), 64);
/// ```
pub fn pcg(
    a: &CsrMatrix,
    b: &[f64],
    precond: &dyn Preconditioner,
    opts: &SolveOpts,
) -> (Vec<f64>, SolveResult) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut r = b.to_vec(); // r = b - A*0
    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut history = Vec::new();
    let mut q = vec![0.0; n];

    for it in 0..opts.max_iters {
        let rnorm = norm2(&r);
        history.push(rnorm / bnorm);
        if rnorm / bnorm < opts.tol {
            let true_rel = norm2(&residual(a, &x, b)) / bnorm;
            return (
                x,
                SolveResult {
                    iterations: it,
                    converged: true,
                    relative_residual: true_rel,
                    history,
                },
            );
        }
        a.spmv_into(&p, &mut q);
        let pq = dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            // Not SPD (or breakdown): bail out with the current iterate.
            break;
        }
        let alpha = rz / pq;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &q, &mut r);
        precond.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        xpay(&z, beta, &mut p);
    }

    let true_rel = norm2(&residual(a, &x, b)) / bnorm;
    let iterations = history.len();
    (
        x,
        SolveResult {
            iterations,
            converged: true_rel < opts.tol,
            relative_residual: true_rel,
            history,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Identity, Jacobi};
    use mis2_sparse::gen as sgen;

    #[test]
    fn solves_identity() {
        let a = CsrMatrix::identity(10);
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let (x, res) = pcg(&a, &b, &Identity, &SolveOpts::default());
        assert!(res.converged);
        for i in 0..10 {
            assert!((x[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_laplace2d() {
        let a = sgen::laplace2d_matrix(10, 10);
        let b = vec![1.0; 100];
        let (x, res) = pcg(
            &a,
            &b,
            &Identity,
            &SolveOpts {
                tol: 1e-10,
                max_iters: 500,
            },
        );
        assert!(res.converged, "rel {}", res.relative_residual);
        let check = mis2_sparse::kernels::residual(&a, &x, &b);
        assert!(mis2_sparse::kernels::norm2(&check) < 1e-8 * 10.0);
    }

    #[test]
    fn jacobi_preconditioning_helps_scaled_system() {
        // Continuously varying diagonal scaling (condition number ~1e6):
        // unpreconditioned CG crawls, Jacobi rescaling collapses the
        // spectrum back to the weakly-coupled tridiagonal's.
        let n = 300usize;
        let mut entries = Vec::new();
        for i in 0..n as u32 {
            let d = 10f64.powf(6.0 * i as f64 / n as f64);
            entries.push((i, i, d));
            if i + 1 < n as u32 {
                entries.push((i, i + 1, -0.01));
                entries.push((i + 1, i, -0.01));
            }
        }
        let a = CsrMatrix::from_coo(n, n, &entries);
        let b = vec![1.0; n];
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 5000,
        };
        let (_, plain) = pcg(&a, &b, &Identity, &opts);
        let (_, jac) = pcg(&a, &b, &Jacobi::new(&a), &opts);
        assert!(jac.converged);
        assert!(
            jac.iterations * 3 < plain.iterations.max(1),
            "jacobi {} vs identity {}",
            jac.iterations,
            plain.iterations
        );
    }

    #[test]
    fn history_is_monotoneish_and_final_small() {
        let a = sgen::laplace3d_matrix(6, 6, 6);
        let b = vec![1.0; 216];
        let (_, res) = pcg(
            &a,
            &b,
            &Identity,
            &SolveOpts {
                tol: 1e-12,
                max_iters: 600,
            },
        );
        assert!(res.converged);
        assert!(res.history.first().unwrap() > res.history.last().unwrap());
    }

    #[test]
    fn deterministic_across_threads() {
        let a = sgen::laplace2d_matrix(12, 12);
        let b: Vec<f64> = (0..144).map(|i| ((i % 7) as f64) - 3.0).collect();
        let (x1, r1) =
            mis2_prim::pool::with_pool(1, || pcg(&a, &b, &Jacobi::new(&a), &SolveOpts::default()));
        let (x2, r2) =
            mis2_prim::pool::with_pool(4, || pcg(&a, &b, &Jacobi::new(&a), &SolveOpts::default()));
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(x1, x2, "CG iterates diverged across thread counts");
    }

    #[test]
    fn max_iters_respected() {
        let a = sgen::laplace2d_matrix(20, 20);
        let b = vec![1.0; 400];
        let (_, res) = pcg(
            &a,
            &b,
            &Identity,
            &SolveOpts {
                tol: 1e-30,
                max_iters: 5,
            },
        );
        assert!(!res.converged);
        assert!(res.iterations <= 5);
    }
}
