//! Chebyshev polynomial smoother.
//!
//! MueLu's default device-side smoother alternative to Jacobi: a degree-k
//! Chebyshev polynomial in `D⁻¹A` targeting the upper part of the spectrum
//! `[λ_max / ratio, λ_max]`. Unlike Gauss-Seidel it is built entirely from
//! SpMV, so it parallelizes perfectly and — with our deterministic kernels
//! — keeps AMG applications bitwise reproducible. Offered as an `AmgConfig`
//! smoother option and benchmarked against Jacobi in the ablation bench.

use mis2_prim::par;
use mis2_sparse::kernels::axpy;
use mis2_sparse::CsrMatrix;

/// Chebyshev smoother state (diagonal + spectrum estimate).
pub struct ChebyshevSmoother {
    dinv: Vec<f64>,
    /// Estimated largest eigenvalue of `D⁻¹ A`.
    pub lambda_max: f64,
    /// Smoothing targets eigenvalues in `[lambda_max / eig_ratio, lambda_max]`.
    pub eig_ratio: f64,
    /// Polynomial degree (number of SpMVs per application).
    pub degree: usize,
}

impl ChebyshevSmoother {
    /// Build with a power-iteration estimate of `λ_max(D⁻¹A)`.
    pub fn new(a: &CsrMatrix, degree: usize, eig_ratio: f64) -> Self {
        let dinv: Vec<f64> = a
            .diag()
            .into_iter()
            .map(|d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
            .collect();
        // Deterministic power iteration (fixed start vector, fixed count).
        let n = a.nrows();
        let mut v: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -0.5 })
            .collect();
        let mut lambda = 1.0f64;
        let mut av = vec![0.0; n];
        for _ in 0..12 {
            a.spmv_into(&v, &mut av);
            par::for_each_mut_indexed(&mut av, |i, x| *x *= dinv[i]);
            let norm = mis2_sparse::kernels::norm2(&av).max(1e-300);
            lambda = norm / mis2_sparse::kernels::norm2(&v).max(1e-300);
            let inv = 1.0 / norm;
            par::for_each_mut_indexed(&mut v, |i, x| *x = av[i] * inv);
        }
        // Safety margin, as in MueLu.
        let lambda_max = lambda * 1.1;
        ChebyshevSmoother {
            dinv,
            lambda_max,
            eig_ratio,
            degree,
        }
    }

    /// Apply `degree` Chebyshev steps to `A x ≈ b`, updating `x` in place.
    /// Standard three-term recurrence on the interval
    /// `[lambda_max/eig_ratio, lambda_max]` of `D⁻¹A`.
    pub fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut [f64]) {
        let n = x.len();
        let lmax = self.lambda_max.max(1e-12);
        let lmin = lmax / self.eig_ratio.max(1.0 + 1e-12);
        let theta = 0.5 * (lmax + lmin);
        let delta = 0.5 * (lmax - lmin).max(1e-12);
        let sigma = theta / delta;
        let mut rho_old = 1.0 / sigma;

        // r = D^-1 (b - A x)
        let mut ax = vec![0.0; n];
        a.spmv_into(x, &mut ax);
        let mut r: Vec<f64> = par::map_range(0..n, |i| self.dinv[i] * (b[i] - ax[i]));
        // d = r / theta
        let mut d: Vec<f64> = par::map(&r, |&v| v / theta);

        for _k in 0..self.degree {
            axpy(1.0, &d, x);
            // r -= D^-1 A d
            a.spmv_into(&d, &mut ax);
            par::for_each_mut_indexed(&mut r, |i, r| *r -= self.dinv[i] * ax[i]);
            let rho = 1.0 / (2.0 * sigma - rho_old);
            let c1 = rho * rho_old;
            let c2 = 2.0 * rho / delta;
            par::for_each_mut_indexed(&mut d, |i, d| *d = c1 * *d + c2 * r[i]);
            rho_old = rho;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_sparse::gen as sgen;
    use mis2_sparse::kernels::{norm2, residual};

    #[test]
    fn lambda_estimate_reasonable_for_laplace() {
        // D^-1 A for the 2D Laplacian has eigenvalues in (0, 2).
        let a = sgen::laplace2d_matrix(16, 16);
        let ch = ChebyshevSmoother::new(&a, 2, 20.0);
        assert!(
            ch.lambda_max > 0.8 && ch.lambda_max < 2.5,
            "{}",
            ch.lambda_max
        );
    }

    #[test]
    fn smoothing_damps_rough_residual() {
        // A smoother targets the upper spectral band; a checkerboard RHS
        // is concentrated there and must shrink substantially.
        let a = sgen::laplace2d_matrix(12, 12);
        let b: Vec<f64> = (0..144)
            .map(|i| {
                if (i / 12 + i % 12) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let mut x = vec![0.0; 144];
        let ch = ChebyshevSmoother::new(&a, 3, 20.0);
        let r0 = norm2(&residual(&a, &x, &b));
        ch.smooth(&a, &b, &mut x);
        let r1 = norm2(&residual(&a, &x, &b));
        assert!(r1 < 0.55 * r0, "{r0} -> {r1}");
    }

    #[test]
    fn competitive_with_jacobi_inside_amg() {
        // The comparison that matters: as an AMG smoother, Chebyshev's
        // uniform band damping should give a V-cycle at least as strong as
        // damped Jacobi with the same sweep count (allowing small slack —
        // both are within a few CG iterations on a model Poisson problem).
        use crate::amg::{AmgConfig, AmgHierarchy, SmootherKind};
        use crate::cg::{pcg, SolveOpts};
        let a = sgen::laplace3d_matrix(10, 10, 10);
        let b = vec![1.0; 1000];
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 300,
        };
        let iters = |smoother: SmootherKind| {
            let amg = AmgHierarchy::build(
                &a,
                &AmgConfig {
                    min_coarse_size: 64,
                    smoother,
                    ..Default::default()
                },
            );
            let (_, res) = pcg(&a, &b, &amg, &opts);
            assert!(
                res.converged,
                "{smoother:?} failed: {}",
                res.relative_residual
            );
            res.iterations
        };
        let cheb = iters(SmootherKind::Chebyshev);
        let jac = iters(SmootherKind::Jacobi);
        assert!(cheb <= jac + 5, "chebyshev {cheb} vs jacobi {jac}");
    }

    #[test]
    fn amg_with_chebyshev_converges() {
        use crate::amg::{AmgConfig, AmgHierarchy, SmootherKind};
        use crate::cg::{pcg, SolveOpts};
        let a = sgen::laplace3d_matrix(8, 8, 8);
        let b = vec![1.0; 512];
        let amg = AmgHierarchy::build(
            &a,
            &AmgConfig {
                min_coarse_size: 40,
                smoother: SmootherKind::Chebyshev,
                ..Default::default()
            },
        );
        let (_, res) = pcg(
            &a,
            &b,
            &amg,
            &SolveOpts {
                tol: 1e-10,
                max_iters: 300,
            },
        );
        assert!(res.converged, "rel {}", res.relative_residual);
        assert!(res.iterations < 60, "{} iterations", res.iterations);
    }

    #[test]
    fn deterministic_across_threads() {
        let a = sgen::laplace2d_matrix(14, 14);
        let b = vec![1.0; 196];
        let run = |threads: usize| {
            mis2_prim::pool::with_pool(threads, || {
                let ch = ChebyshevSmoother::new(&a, 3, 20.0);
                let mut x = vec![0.0; 196];
                ch.smooth(&a, &b, &mut x);
                x
            })
        };
        let x1 = run(1);
        let x2 = run(4);
        assert!(x1.iter().zip(&x2).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
