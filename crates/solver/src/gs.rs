//! Point and cluster multicolor (symmetric) Gauss-Seidel.
//!
//! **Point multicolor GS** (Deveci et al., reference 11 of the paper — the Kokkos Kernels
//! production preconditioner): color the matrix graph; rows of one color
//! are independent and update in parallel, colors sweep sequentially.
//! Parallelism costs iterations vs. natural-order GS.
//!
//! **Cluster multicolor GS** (the paper's Algorithm 4): coarsen the graph
//! (Algorithm 3 by default), color the *coarse* graph, and sweep
//! color-by-color over *clusters*, processing the rows inside one cluster
//! sequentially — locally exact GS. This recovers much of sequential GS's
//! convergence while keeping parallelism across same-colored clusters, and
//! both setup (coloring a much smaller graph) and apply get faster
//! (Table VI).
//!
//! Both are exposed as symmetric preconditioners (forward sweep then
//! backward sweep; the cluster method also reverses the row order inside
//! each cluster on the backward pass, per the paper).

use crate::precond::Preconditioner;
use mis2_coarsen::{quotient_graph, AggScheme, Aggregation};
use mis2_color::{color_d1, ColorSets, Coloring};
use mis2_graph::{CsrGraph, VertexId};
use mis2_prim::par;
use mis2_prim::SharedMut;
use mis2_sparse::CsrMatrix;

/// How many forward(+backward) applications per preconditioner apply.
const DEFAULT_SWEEPS: usize = 1;

/// Sweep direction per preconditioner application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GsMode {
    /// Forward color sweep only (classical GS, Algorithm 4 as listed).
    Forward,
    /// Forward then backward (symmetric GS — required for CG, used for
    /// the paper's Table VI "SGS" experiments).
    #[default]
    Symmetric,
}

/// Point multicolor symmetric Gauss-Seidel.
pub struct PointMcSgs {
    a: CsrMatrix,
    sets: ColorSets,
    dinv: Vec<f64>,
    sweeps: usize,
    mode: GsMode,
    /// Setup wall time (seconds): graph extraction + coloring + sets.
    pub setup_seconds: f64,
    /// Colors used (determines the number of sequential sweep steps).
    pub num_colors: usize,
}

impl PointMcSgs {
    /// Color `a`'s graph and build the sweep schedule.
    pub fn new(a: &CsrMatrix, seed: u64) -> Self {
        let t = mis2_prim::timer::Timer::start();
        let g = a.to_graph();
        let coloring = color_d1(&g, seed);
        let sets = ColorSets::build(&coloring);
        let dinv: Vec<f64> = a
            .diag()
            .into_iter()
            .map(|d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
            .collect();
        let setup_seconds = t.elapsed_s();
        PointMcSgs {
            a: a.clone(),
            num_colors: sets.num_colors(),
            sets,
            dinv,
            sweeps: DEFAULT_SWEEPS,
            mode: GsMode::Symmetric,
            setup_seconds,
        }
    }

    /// Set the number of sweeps per application.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps.max(1);
        self
    }

    /// Set forward-only or symmetric sweeping.
    pub fn with_mode(mut self, mode: GsMode) -> Self {
        self.mode = mode;
        self
    }

    fn sweep_color(&self, members: &[VertexId], b: &[f64], x: &mut [f64]) {
        let a = &self.a;
        let dinv = &self.dinv;
        let xw = SharedMut::new(x);
        par::for_each_grain(members, 64, |&i| {
            let i = i as usize;
            let (cols, vals) = a.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize != i {
                    // SAFETY: rows of one color are pairwise non-adjacent,
                    // so no member of this parallel region writes slot c.
                    acc -= v * unsafe { xw.read(c as usize) };
                }
            }
            unsafe { xw.write(i, acc * dinv[i]) };
        });
    }

    /// One symmetric sweep (forward colors then backward colors).
    pub fn sgs_sweep(&self, b: &[f64], x: &mut [f64]) {
        for c in 0..self.sets.num_colors() {
            self.sweep_color(self.sets.members(c), b, x);
        }
        for c in (0..self.sets.num_colors()).rev() {
            self.sweep_color(self.sets.members(c), b, x);
        }
    }

    /// One forward sweep (colors in ascending order only).
    pub fn gs_sweep_forward(&self, b: &[f64], x: &mut [f64]) {
        for c in 0..self.sets.num_colors() {
            self.sweep_color(self.sets.members(c), b, x);
        }
    }
}

impl Preconditioner for PointMcSgs {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..self.sweeps {
            match self.mode {
                GsMode::Symmetric => self.sgs_sweep(r, z),
                GsMode::Forward => self.gs_sweep_forward(r, z),
            }
        }
    }

    fn name(&self) -> &'static str {
        "point multicolor SGS"
    }
}

/// Cluster multicolor symmetric Gauss-Seidel (Algorithm 4).
pub struct ClusterMcSgs {
    a: CsrMatrix,
    /// Rows of each cluster, concatenated; clusters of one color are
    /// contiguous ranges listed in `cluster_ranges` per color.
    cluster_rows: Vec<VertexId>,
    /// Per color: list of (start, end) ranges into `cluster_rows`.
    color_clusters: Vec<Vec<(usize, usize)>>,
    dinv: Vec<f64>,
    sweeps: usize,
    mode: GsMode,
    /// Setup wall time (seconds): aggregation + quotient graph + coloring.
    pub setup_seconds: f64,
    /// Colors on the coarse graph.
    pub num_colors: usize,
    /// Number of clusters (aggregates).
    pub num_clusters: usize,
}

impl ClusterMcSgs {
    /// Coarsen with `scheme` (the paper uses Algorithm 3), color the
    /// quotient graph, and group cluster rows by color.
    pub fn new(a: &CsrMatrix, scheme: AggScheme, seed: u64) -> Self {
        let t = mis2_prim::timer::Timer::start();
        let g = a.to_graph();
        let agg = scheme.aggregate(&g, seed);
        let coarse = quotient_graph(&g, &agg);
        let coloring = color_d1(&coarse, seed);
        let built = Self::from_parts(a, &g, &agg, &coloring);
        ClusterMcSgs {
            setup_seconds: t.elapsed_s(),
            ..built
        }
    }

    /// Assemble from precomputed parts (used by benchmarks that time the
    /// stages separately).
    pub fn from_parts(
        a: &CsrMatrix,
        _g: &CsrGraph,
        agg: &Aggregation,
        coloring: &Coloring,
    ) -> Self {
        // Bucket vertices by cluster (ascending row ids within a cluster —
        // the deterministic "natural" intra-cluster order).
        let nclusters = agg.num_aggregates;
        let (counts, cluster_rows) = mis2_prim::bucket::bucket_by_key(nclusters, &agg.labels);
        // Group clusters by coarse color.
        let num_colors = coloring.num_colors as usize;
        let mut color_clusters: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_colors];
        for cl in 0..nclusters {
            let color = coloring.colors[cl] as usize;
            color_clusters[color].push((counts[cl], counts[cl + 1]));
        }
        let dinv: Vec<f64> = a
            .diag()
            .into_iter()
            .map(|d| if d.abs() > 1e-300 { 1.0 / d } else { 0.0 })
            .collect();
        ClusterMcSgs {
            a: a.clone(),
            cluster_rows,
            color_clusters,
            dinv,
            sweeps: DEFAULT_SWEEPS,
            mode: GsMode::Symmetric,
            setup_seconds: 0.0,
            num_colors,
            num_clusters: nclusters,
        }
    }

    /// Set the number of sweeps per application.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps.max(1);
        self
    }

    /// Set forward-only or symmetric sweeping.
    pub fn with_mode(mut self, mode: GsMode) -> Self {
        self.mode = mode;
        self
    }

    #[inline]
    fn update_row(&self, i: usize, b: &[f64], xw: &SharedMut<'_, f64>) {
        let (cols, vals) = self.a.row(i);
        let mut acc = b[i];
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != i {
                // SAFETY: same-colored clusters are non-adjacent in the
                // quotient graph, so every off-cluster neighbor row is
                // stable during this color's parallel region; in-cluster
                // neighbors are updated by *this* task sequentially.
                acc -= v * unsafe { xw.read(c as usize) };
            }
        }
        unsafe { xw.write(i, acc * self.dinv[i]) };
    }

    /// One symmetric sweep: forward colors (rows in order inside each
    /// cluster), then backward colors (rows reversed inside each cluster).
    pub fn sgs_sweep(&self, b: &[f64], x: &mut [f64]) {
        let rows = &self.cluster_rows;
        {
            let xw = SharedMut::new(&mut *x);
            for color in 0..self.color_clusters.len() {
                par::for_each_grain(&self.color_clusters[color], 1, |&(lo, hi)| {
                    for &i in &rows[lo..hi] {
                        self.update_row(i as usize, b, &xw);
                    }
                });
            }
            for color in (0..self.color_clusters.len()).rev() {
                par::for_each_grain(&self.color_clusters[color], 1, |&(lo, hi)| {
                    for &i in rows[lo..hi].iter().rev() {
                        self.update_row(i as usize, b, &xw);
                    }
                });
            }
        }
    }

    /// One forward sweep (Algorithm 4 exactly as listed in the paper).
    pub fn gs_sweep_forward(&self, b: &[f64], x: &mut [f64]) {
        let rows = &self.cluster_rows;
        let xw = SharedMut::new(&mut *x);
        for color in 0..self.color_clusters.len() {
            par::for_each_grain(&self.color_clusters[color], 1, |&(lo, hi)| {
                for &i in &rows[lo..hi] {
                    self.update_row(i as usize, b, &xw);
                }
            });
        }
    }
}

impl Preconditioner for ClusterMcSgs {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..self.sweeps {
            match self.mode {
                GsMode::Symmetric => self.sgs_sweep(r, z),
                GsMode::Forward => self.gs_sweep_forward(r, z),
            }
        }
    }

    fn name(&self) -> &'static str {
        "cluster multicolor SGS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis2_sparse::gen as sgen;
    use mis2_sparse::kernels;

    fn run_richardson(precond: &dyn Preconditioner, a: &CsrMatrix, iters: usize) -> f64 {
        // x_{k+1} = x_k + M^{-1}(b - A x_k); returns final relative residual.
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut z = vec![0.0; n];
        for _ in 0..iters {
            let r = kernels::residual(a, &x, &b);
            precond.apply(&r, &mut z);
            kernels::axpy(1.0, &z, &mut x);
        }
        kernels::norm2(&kernels::residual(a, &x, &b)) / kernels::norm2(&b)
    }

    #[test]
    fn point_sgs_converges_on_laplace() {
        // GS-preconditioned Richardson converges at rate ~1 - O(h^2) on
        // Poisson; on an 8x8 grid 120 double sweeps drive the residual
        // far down.
        let a = sgen::laplace2d_matrix(8, 8);
        let gs = PointMcSgs::new(&a, 0);
        assert!(gs.num_colors >= 2);
        let rel = run_richardson(&gs, &a, 120);
        assert!(rel < 1e-6, "relative residual {rel}");
    }

    #[test]
    fn cluster_sgs_converges_on_laplace() {
        let a = sgen::laplace2d_matrix(8, 8);
        let gs = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0);
        assert!(gs.num_clusters > 1);
        let rel = run_richardson(&gs, &a, 120);
        assert!(rel < 1e-6, "relative residual {rel}");
    }

    #[test]
    fn cluster_at_least_as_fast_in_iterations() {
        // The paper's core claim for Algorithm 4: cluster SGS needs no more
        // iterations than point SGS (it is locally exact). Compare
        // Richardson residuals after a fixed iteration budget.
        let a = sgen::laplace2d_matrix(16, 16);
        let point = PointMcSgs::new(&a, 0);
        let cluster = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0);
        let rp = run_richardson(&point, &a, 25);
        let rc = run_richardson(&cluster, &a, 25);
        assert!(
            rc <= rp * 1.5,
            "cluster {rc} should not be much worse than point {rp}"
        );
    }

    #[test]
    fn both_deterministic_across_threads() {
        let a = sgen::laplace2d_matrix(10, 10);
        let r: Vec<f64> = (0..100).map(|i| ((i * 37) % 19) as f64 / 19.0).collect();
        for scheme in [AggScheme::Mis2Basic, AggScheme::Mis2Agg] {
            let z1 = mis2_prim::pool::with_pool(1, || {
                let gs = ClusterMcSgs::new(&a, scheme, 0);
                let mut z = vec![0.0; 100];
                gs.apply(&r, &mut z);
                z
            });
            let z2 = mis2_prim::pool::with_pool(4, || {
                let gs = ClusterMcSgs::new(&a, scheme, 0);
                let mut z = vec![0.0; 100];
                gs.apply(&r, &mut z);
                z
            });
            assert_eq!(z1, z2, "cluster SGS nondeterministic for {scheme:?}");
        }
        let z1 = mis2_prim::pool::with_pool(1, || {
            let gs = PointMcSgs::new(&a, 0);
            let mut z = vec![0.0; 100];
            gs.apply(&r, &mut z);
            z
        });
        let z2 = mis2_prim::pool::with_pool(4, || {
            let gs = PointMcSgs::new(&a, 0);
            let mut z = vec![0.0; 100];
            gs.apply(&r, &mut z);
            z
        });
        assert_eq!(z1, z2, "point SGS nondeterministic");
    }

    #[test]
    fn forward_mode_and_extra_sweeps_converge() {
        let a = sgen::laplace2d_matrix(10, 10);
        let b = vec![1.0; 100];
        let opts = crate::cg::SolveOpts {
            tol: 1e-8,
            max_iters: 600,
        };
        // Forward-only GS still preconditions GMRES effectively.
        let fwd = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0).with_mode(GsMode::Forward);
        let (_, rf) = crate::gmres::gmres(&a, &b, &fwd, 40, &opts);
        assert!(rf.converged);
        // Two symmetric sweeps cut GMRES iterations vs one.
        let one = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0);
        let two = ClusterMcSgs::new(&a, AggScheme::Mis2Agg, 0).with_sweeps(2);
        let (_, r1) = crate::gmres::gmres(&a, &b, &one, 40, &opts);
        let (_, r2) = crate::gmres::gmres(&a, &b, &two, 40, &opts);
        assert!(r1.converged && r2.converged);
        assert!(
            r2.iterations <= r1.iterations,
            "{} vs {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn single_cluster_is_sequential_gs() {
        // With one cluster containing everything, cluster SGS equals exact
        // sequential symmetric GS.
        let a = sgen::laplace2d_matrix(5, 5);
        let g = a.to_graph();
        let agg = Aggregation {
            labels: vec![0; 25],
            num_aggregates: 1,
            roots: vec![0],
        };
        let coloring = mis2_color::Coloring::from_colors(vec![0], 1);
        let gs = ClusterMcSgs::from_parts(&a, &g, &agg, &coloring);
        let b = vec![1.0; 25];
        let mut x = vec![0.0; 25];
        gs.sgs_sweep(&b, &mut x);
        // Reference sequential symmetric GS sweep.
        let mut y = [0.0; 25];
        let dinv: Vec<f64> = a.diag().iter().map(|d| 1.0 / d).collect();
        for i in 0..25 {
            let (cols, vals) = a.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize != i {
                    acc -= v * y[c as usize];
                }
            }
            y[i] = acc * dinv[i];
        }
        for i in (0..25).rev() {
            let (cols, vals) = a.row(i);
            let mut acc = b[i];
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize != i {
                    acc -= v * y[c as usize];
                }
            }
            y[i] = acc * dinv[i];
        }
        for i in 0..25 {
            assert!((x[i] - y[i]).abs() < 1e-12, "row {i}: {} vs {}", x[i], y[i]);
        }
    }
}
