//! Right-preconditioned restarted GMRES.
//!
//! The solver of the paper's Table VI experiment ("The SGS methods are used
//! as preconditioners for a GMRES solver ... converge to a tolerance of
//! 1e-8 within 800 iterations"). Arnoldi with modified Gram-Schmidt and
//! Givens rotations; right preconditioning so the residual norm tracked by
//! the rotations is the true unpreconditioned residual.

use crate::cg::{SolveOpts, SolveResult};
use crate::precond::Preconditioner;
use mis2_sparse::kernels::{axpy, dot, norm2, residual};
use mis2_sparse::CsrMatrix;

/// GMRES restart length.
pub const DEFAULT_RESTART: usize = 50;

/// Right-preconditioned GMRES(m).
///
/// ```
/// use mis2_solver::{gmres, Identity, SolveOpts};
/// let a = mis2_sparse::gen::laplace2d_matrix(6, 6);
/// let b = vec![1.0; 36];
/// let (_, res) = gmres(&a, &b, &Identity, 20, &SolveOpts::default());
/// assert!(res.converged);
/// ```
pub fn gmres(
    a: &CsrMatrix,
    b: &[f64],
    precond: &dyn Preconditioner,
    restart: usize,
    opts: &SolveOpts,
) -> (Vec<f64>, SolveResult) {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    let m = restart.max(1);
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![0.0; n];
    let mut history: Vec<f64> = Vec::new();
    let mut total_iters = 0usize;

    'outer: while total_iters < opts.max_iters {
        let r = residual(a, &x, b);
        let beta = norm2(&r);
        history.push(beta / bnorm);
        if beta / bnorm < opts.tol {
            break;
        }
        // Krylov basis (m+1 vectors) and Hessenberg in packed columns.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|x| x / beta).collect());
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
        let (mut cs, mut sn) = (vec![0.0f64; m], vec![0.0f64; m]);
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut z = vec![0.0; n];
        let mut k_used = 0usize;

        for j in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A M^{-1} v_j
            precond.apply(&v[j], &mut z);
            let mut w = a.spmv(&z);
            // Modified Gram-Schmidt.
            for i in 0..=j {
                let hij = dot(&w, &v[i]);
                h[i][j] = hij;
                axpy(-hij, &v[i], &mut w);
            }
            let hnext = norm2(&w);
            h[j + 1][j] = hnext;
            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation to kill h[j+1][j].
            let denom = (h[j][j] * h[j][j] + hnext * hnext).sqrt();
            if denom < 1e-300 {
                k_used = j;
                break;
            }
            cs[j] = h[j][j] / denom;
            sn[j] = hnext / denom;
            h[j][j] = denom;
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            k_used = j + 1;
            let rel = g[j + 1].abs() / bnorm;
            history.push(rel);
            if rel < opts.tol {
                break;
            }
            if hnext < 1e-300 {
                break; // lucky breakdown: exact solution in the space
            }
            v.push(w.iter().map(|x| x / hnext).collect());
        }

        // Solve the k_used x k_used triangular system H y = g.
        if k_used == 0 {
            break 'outer;
        }
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut acc = g[i];
            for j2 in (i + 1)..k_used {
                acc -= h[i][j2] * y[j2];
            }
            y[i] = acc / h[i][i];
        }
        // x += M^{-1} (V y)
        let mut vy = vec![0.0; n];
        for (j, &yj) in y.iter().enumerate() {
            axpy(yj, &v[j], &mut vy);
        }
        precond.apply(&vy, &mut z);
        axpy(1.0, &z, &mut x);

        let rel = norm2(&residual(a, &x, b)) / bnorm;
        if rel < opts.tol {
            break;
        }
    }

    let true_rel = norm2(&residual(a, &x, b)) / bnorm;
    (
        x,
        SolveResult {
            iterations: total_iters,
            converged: true_rel < opts.tol,
            relative_residual: true_rel,
            history,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{Identity, Jacobi};
    use mis2_sparse::gen as sgen;

    #[test]
    fn solves_identity_instantly() {
        let a = CsrMatrix::identity(5);
        let b = vec![2.0; 5];
        let (x, res) = gmres(&a, &b, &Identity, 10, &SolveOpts::default());
        assert!(res.converged);
        for v in x {
            assert!((v - 2.0).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_laplace2d() {
        let a = sgen::laplace2d_matrix(10, 10);
        let b = vec![1.0; 100];
        let (_, res) = gmres(
            &a,
            &b,
            &Identity,
            30,
            &SolveOpts {
                tol: 1e-10,
                max_iters: 400,
            },
        );
        assert!(res.converged, "rel {}", res.relative_residual);
    }

    #[test]
    fn solves_nonsymmetric() {
        // GMRES handles nonsymmetric systems (CG would break).
        let n = 50u32;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 4.0));
            if i + 1 < n {
                entries.push((i, i + 1, -1.5)); // upwind-ish asymmetry
                entries.push((i + 1, i, -0.5));
            }
        }
        let a = CsrMatrix::from_coo(n as usize, n as usize, &entries);
        let b = vec![1.0; n as usize];
        let (x, res) = gmres(
            &a,
            &b,
            &Identity,
            25,
            &SolveOpts {
                tol: 1e-10,
                max_iters: 300,
            },
        );
        assert!(res.converged);
        let r = mis2_sparse::kernels::residual(&a, &x, &b);
        assert!(mis2_sparse::kernels::norm2(&r) < 1e-8);
    }

    #[test]
    fn restart_still_converges() {
        let a = sgen::laplace2d_matrix(12, 12);
        let b = vec![1.0; 144];
        // Tiny restart forces multiple outer cycles.
        let (_, res) = gmres(
            &a,
            &b,
            &Jacobi::new(&a),
            5,
            &SolveOpts {
                tol: 1e-8,
                max_iters: 2000,
            },
        );
        assert!(res.converged, "rel {}", res.relative_residual);
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        // A rough RHS on a finer grid: unpreconditioned GMRES needs a large
        // Krylov space, SGS smooths it away quickly.
        let a = sgen::laplace2d_matrix(24, 24);
        let n = 24 * 24;
        let b: Vec<f64> = (0..n)
            .map(|i| {
                if mis2_prim::hash::splitmix64(i as u64).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let opts = SolveOpts {
            tol: 1e-8,
            max_iters: 600,
        };
        let (_, plain) = gmres(&a, &b, &Identity, 60, &opts);
        let gs = crate::gs::PointMcSgs::new(&a, 0);
        let (_, pre) = gmres(&a, &b, &gs, 60, &opts);
        assert!(pre.converged && plain.converged);
        assert!(
            pre.iterations < plain.iterations,
            "SGS {} vs identity {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn max_iters_respected() {
        let a = sgen::laplace2d_matrix(16, 16);
        let b = vec![1.0; 256];
        let (_, res) = gmres(
            &a,
            &b,
            &Identity,
            10,
            &SolveOpts {
                tol: 1e-30,
                max_iters: 7,
            },
        );
        assert!(res.iterations <= 10); // one restart cycle may finish
        assert!(!res.converged);
    }

    #[test]
    fn deterministic_across_threads() {
        let a = sgen::laplace2d_matrix(10, 10);
        let b: Vec<f64> = (0..100).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
        let opts = SolveOpts {
            tol: 1e-9,
            max_iters: 300,
        };
        let (x1, _) = mis2_prim::pool::with_pool(1, || gmres(&a, &b, &Jacobi::new(&a), 20, &opts));
        let (x2, _) = mis2_prim::pool::with_pool(4, || gmres(&a, &b, &Jacobi::new(&a), 20, &opts));
        assert_eq!(x1, x2);
    }
}
