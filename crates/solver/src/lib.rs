//! # mis2-solver — Krylov solvers and MIS-2-powered preconditioners
//!
//! The two solver use cases the paper builds on top of MIS-2 aggregation:
//!
//! * [`amg`] — smoothed-aggregation algebraic multigrid with a pluggable
//!   aggregation scheme (the Table V "MueLu" experiment);
//! * [`gs`] — point multicolor symmetric Gauss-Seidel (Deveci et al.) and
//!   the paper's **cluster multicolor Gauss-Seidel** (Algorithm 4, the
//!   Table VI experiment);
//! * [`cg`] / [`mod@gmres`] — deterministic preconditioned CG and restarted
//!   right-preconditioned GMRES;
//! * [`precond`] — the preconditioner trait, identity/Jacobi members and
//!   the weighted-Jacobi smoother.

pub mod amg;
pub mod cg;
pub mod chebyshev;
pub mod gmres;
pub mod gs;
pub mod precond;
pub mod seq_gs;

pub use amg::{AmgConfig, AmgHierarchy, AmgSetupStats, SmootherKind};
pub use cg::{pcg, SolveOpts, SolveResult};
pub use chebyshev::ChebyshevSmoother;
pub use gmres::{gmres, DEFAULT_RESTART};
pub use gs::{ClusterMcSgs, GsMode, PointMcSgs};
pub use precond::{Identity, Jacobi, JacobiSmoother, Preconditioner};
pub use seq_gs::SeqSgs;
