//! Smoothed-aggregation algebraic multigrid (SA-AMG).
//!
//! Reproduces the paper's Table V setup: "a multigrid V-cycle SA
//! preconditioner using the specified aggregation algorithm to coarsen at
//! all levels ... solve a Laplace3D problem to a tolerance of 1e-12, using
//! 2 sweeps of the Jacobi method as a smoother and conjugate gradient as
//! the main solver."
//!
//! Setup: aggregate (any [`AggScheme`]) → tentative prolongator → smoothed
//! prolongator `P = (I − ω D⁻¹ A) P_tent` → Galerkin `A_c = Pᵀ A P`,
//! recursively until the coarse system is small enough for a dense LU.
//! Apply: standard V-cycle with pre/post Jacobi smoothing.

use crate::chebyshev::ChebyshevSmoother;
use crate::precond::{JacobiSmoother, Preconditioner};
use mis2_coarsen::{smoothed_prolongator, tentative_prolongator, AggScheme};
use mis2_sparse::kernels::{axpy, sub};
use mis2_sparse::{galerkin_product, CsrMatrix, LuFactors};
use std::sync::Mutex;

/// Which smoother the V-cycle uses on every level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SmootherKind {
    /// Damped Jacobi (the paper's Table V setting: 2 sweeps, omega = 2/3).
    #[default]
    Jacobi,
    /// Chebyshev polynomial smoothing (MueLu's common device smoother);
    /// `smoother_sweeps` becomes the polynomial degree.
    Chebyshev,
}

/// AMG configuration. Defaults mirror the paper's Table V experiment.
#[derive(Debug, Clone, Copy)]
pub struct AmgConfig {
    /// Aggregation scheme used on every level.
    pub scheme: AggScheme,
    /// Stop coarsening below this many rows (dense LU takes over).
    pub min_coarse_size: usize,
    /// Maximum number of levels (including the finest).
    pub max_levels: usize,
    /// Jacobi smoother damping.
    pub omega: f64,
    /// Pre- and post-smoothing sweeps (the paper uses 2).
    pub smoother_sweeps: usize,
    /// Smoother selection.
    pub smoother: SmootherKind,
    /// Smooth the prolongator (plain aggregation AMG when false).
    pub smooth_prolongator: bool,
    /// Seed forwarded to the aggregation scheme.
    pub seed: u64,
}

impl Default for AmgConfig {
    fn default() -> Self {
        AmgConfig {
            scheme: AggScheme::Mis2Agg,
            min_coarse_size: 200,
            max_levels: 10,
            omega: 2.0 / 3.0,
            smoother_sweeps: 2,
            smoother: SmootherKind::Jacobi,
            smooth_prolongator: true,
            seed: 0,
        }
    }
}

/// Setup statistics (the paper's Table V columns "Agg." and "Setup").
#[derive(Debug, Clone)]
pub struct AmgSetupStats {
    /// Seconds spent in aggregation only (all levels).
    pub aggregation_seconds: f64,
    /// Total setup seconds (aggregation + prolongators + Galerkin + LU).
    pub setup_seconds: f64,
    /// Rows per level, finest first.
    pub level_sizes: Vec<usize>,
    /// Sum of nnz over all level operators divided by nnz of the finest —
    /// the standard operator-complexity quality metric.
    pub operator_complexity: f64,
}

enum LevelSmoother {
    Jacobi(JacobiSmoother),
    Chebyshev(ChebyshevSmoother),
}

impl LevelSmoother {
    fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut [f64], scratch: &mut Vec<f64>) {
        match self {
            LevelSmoother::Jacobi(s) => s.smooth(a, b, x, scratch),
            LevelSmoother::Chebyshev(s) => s.smooth(a, b, x),
        }
    }
}

struct AmgLevel {
    a: CsrMatrix,
    p: CsrMatrix,
    smoother: LevelSmoother,
}

/// An SA-AMG hierarchy usable as a preconditioner (one V-cycle per apply).
pub struct AmgHierarchy {
    levels: Vec<AmgLevel>,
    coarse_a: CsrMatrix,
    coarse_lu: Option<LuFactors>,
    /// Scratch buffers per level, protected for `&self` application.
    scratch: Mutex<Vec<LevelScratch>>,
    /// Setup statistics.
    pub stats: AmgSetupStats,
}

#[derive(Default, Clone)]
struct LevelScratch {
    r: Vec<f64>,
    tmp: Vec<f64>,
}

impl AmgHierarchy {
    /// Build the hierarchy for `a`.
    pub fn build(a: &CsrMatrix, cfg: &AmgConfig) -> Self {
        let t_total = mis2_prim::timer::Timer::start();
        let mut agg_seconds = 0.0f64;
        let mut levels: Vec<AmgLevel> = Vec::new();
        let mut level_sizes = vec![a.nrows()];
        let mut nnz_total = a.nnz() as f64;
        let fine_nnz = a.nnz() as f64;
        let mut cur = a.clone();

        while levels.len() + 1 < cfg.max_levels && cur.nrows() > cfg.min_coarse_size {
            let g = cur.to_graph();
            let t_agg = mis2_prim::timer::Timer::start();
            let agg = cfg.scheme.aggregate(&g, cfg.seed ^ levels.len() as u64);
            agg_seconds += t_agg.elapsed_s();
            if agg.num_aggregates >= cur.nrows() {
                break; // no coarsening progress (degenerate input)
            }
            let p_tent = tentative_prolongator(&agg, true);
            let p = if cfg.smooth_prolongator {
                smoothed_prolongator(&cur, &p_tent, Some(cfg.omega))
            } else {
                p_tent
            };
            let coarse = galerkin_product(&cur, &p);
            let smoother = match cfg.smoother {
                SmootherKind::Jacobi => {
                    LevelSmoother::Jacobi(JacobiSmoother::new(&cur, cfg.omega, cfg.smoother_sweeps))
                }
                // Band ratio ~ the coarsening rate: the coarse space
                // handles the lowest ~1/rate of the spectrum, the smoother
                // the rest. MIS-2 aggregation coarsens at ~8-13x.
                SmootherKind::Chebyshev => LevelSmoother::Chebyshev(ChebyshevSmoother::new(
                    &cur,
                    cfg.smoother_sweeps.max(1),
                    7.0,
                )),
            };
            level_sizes.push(coarse.nrows());
            nnz_total += coarse.nnz() as f64;
            levels.push(AmgLevel {
                a: cur,
                p,
                smoother,
            });
            cur = coarse;
        }

        let coarse_lu = cur.to_dense().lu().ok();
        let nlev = levels.len() + 1;
        let stats = AmgSetupStats {
            aggregation_seconds: agg_seconds,
            setup_seconds: t_total.elapsed_s(),
            level_sizes,
            operator_complexity: nnz_total / fine_nnz.max(1.0),
        };
        AmgHierarchy {
            levels,
            coarse_a: cur,
            coarse_lu,
            scratch: Mutex::new(vec![LevelScratch::default(); nlev]),
            stats,
        }
    }

    /// Number of levels (including the coarsest).
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    fn v_cycle(&self, level: usize, b: &[f64], x: &mut [f64], scratch: &mut [LevelScratch]) {
        if level == self.levels.len() {
            // Coarsest: direct solve (Jacobi fallback if LU failed).
            match &self.coarse_lu {
                Some(lu) => x.copy_from_slice(&lu.solve(b)),
                None => {
                    let sm = JacobiSmoother::new(&self.coarse_a, 0.667, 20);
                    let mut tmp = Vec::new();
                    x.iter_mut().for_each(|v| *v = 0.0);
                    sm.smooth(&self.coarse_a, b, x, &mut tmp);
                }
            }
            return;
        }
        let lvl = &self.levels[level];
        // Pre-smooth.
        {
            let s = &mut scratch[level];
            lvl.smoother.smooth(&lvl.a, b, x, &mut s.tmp);
        }
        // Residual, restrict.
        let (bc, mut xc);
        {
            let s = &mut scratch[level];
            s.r.resize(x.len(), 0.0);
            lvl.a.spmv_into(x, &mut s.r);
            let r = sub(b, &s.r);
            // bc = P^T r  (column-major gather via transpose-free spmv on P^T
            // is equivalent to spmv of transpose; we use the cached P and
            // compute P^T r per-entry).
            bc = transpose_spmv(&lvl.p, &r);
            xc = vec![0.0; bc.len()];
        }
        // Recurse.
        self.v_cycle(level + 1, &bc, &mut xc, scratch);
        // Prolong and correct.
        {
            let s = &mut scratch[level];
            s.tmp.resize(x.len(), 0.0);
            lvl.p.spmv_into(&xc, &mut s.tmp);
            let corr = s.tmp.clone();
            axpy(1.0, &corr, x);
            // Post-smooth.
            lvl.smoother.smooth(&lvl.a, b, x, &mut s.tmp);
        }
    }
}

/// `y = Aᵀ x` without materializing the transpose (deterministic: each
/// output entry accumulates sequentially over a fixed traversal order).
#[allow(clippy::needless_range_loop)]
fn transpose_spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; a.ncols()];
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        let xr = x[r];
        for (&c, &v) in cols.iter().zip(vals) {
            y[c as usize] += v * xr;
        }
    }
    y
}

impl Preconditioner for AmgHierarchy {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        let mut scratch = self.scratch.lock().unwrap();
        self.v_cycle(0, r, z, &mut scratch);
    }

    fn name(&self) -> &'static str {
        "SA-AMG V-cycle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{pcg, SolveOpts};
    use crate::precond::Identity;
    use mis2_sparse::gen as sgen;

    #[test]
    fn builds_multilevel_hierarchy() {
        let a = sgen::laplace3d_matrix(12, 12, 12);
        let amg = AmgHierarchy::build(
            &a,
            &AmgConfig {
                min_coarse_size: 50,
                ..Default::default()
            },
        );
        assert!(amg.num_levels() >= 2, "only {} levels", amg.num_levels());
        assert!(amg.stats.operator_complexity >= 1.0);
        assert!(amg.stats.level_sizes.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn amg_preconditioned_cg_beats_plain_cg() {
        // The Table V effect: AMG cuts CG iterations dramatically.
        let a = sgen::laplace3d_matrix(10, 10, 10);
        let b = vec![1.0; 1000];
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 600,
        };
        let (_, plain) = pcg(&a, &b, &Identity, &opts);
        let amg = AmgHierarchy::build(
            &a,
            &AmgConfig {
                min_coarse_size: 64,
                ..Default::default()
            },
        );
        let (_, pre) = pcg(&a, &b, &amg, &opts);
        assert!(
            pre.converged,
            "AMG-CG did not converge: rel {}",
            pre.relative_residual
        );
        assert!(
            pre.iterations * 2 < plain.iterations,
            "AMG {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn all_schemes_give_working_preconditioners() {
        let a = sgen::laplace3d_matrix(8, 8, 8);
        let b = vec![1.0; 512];
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 300,
        };
        for scheme in AggScheme::all() {
            let amg = AmgHierarchy::build(
                &a,
                &AmgConfig {
                    scheme,
                    min_coarse_size: 40,
                    ..Default::default()
                },
            );
            let (_, res) = pcg(&a, &b, &amg, &opts);
            assert!(
                res.converged,
                "{}: rel residual {}",
                scheme.label(),
                res.relative_residual
            );
        }
    }

    #[test]
    fn unsmoothed_prolongator_works_but_converges_slower() {
        let a = sgen::laplace3d_matrix(8, 8, 8);
        let b = vec![1.0; 512];
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 400,
        };
        let sa = AmgHierarchy::build(
            &a,
            &AmgConfig {
                min_coarse_size: 40,
                ..Default::default()
            },
        );
        let plain = AmgHierarchy::build(
            &a,
            &AmgConfig {
                min_coarse_size: 40,
                smooth_prolongator: false,
                ..Default::default()
            },
        );
        let (_, rs) = pcg(&a, &b, &sa, &opts);
        let (_, rp) = pcg(&a, &b, &plain, &opts);
        assert!(rs.converged && rp.converged);
        assert!(
            rs.iterations <= rp.iterations,
            "SA {} vs plain {}",
            rs.iterations,
            rp.iterations
        );
    }

    #[test]
    fn deterministic_across_threads() {
        let a = sgen::laplace2d_matrix(16, 16);
        let b = vec![1.0; 256];
        let opts = SolveOpts {
            tol: 1e-10,
            max_iters: 200,
        };
        let run = || {
            let amg = AmgHierarchy::build(
                &a,
                &AmgConfig {
                    min_coarse_size: 30,
                    ..Default::default()
                },
            );
            pcg(&a, &b, &amg, &opts)
        };
        let (x1, r1) = mis2_prim::pool::with_pool(1, run);
        let (x2, r2) = mis2_prim::pool::with_pool(4, run);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(x1, x2);
    }

    #[test]
    fn small_input_single_level() {
        let a = sgen::laplace2d_matrix(4, 4);
        let amg = AmgHierarchy::build(&a, &AmgConfig::default());
        assert_eq!(amg.num_levels(), 1); // 16 rows < min_coarse_size
        let b = vec![1.0; 16];
        let (_, res) = pcg(&a, &b, &amg, &SolveOpts::default());
        assert!(res.converged);
    }
}
