//! The graph registry: a **memory-bounded, cost-aware evicting cache** of
//! interned graphs, their derived artifacts, and the artifacts'
//! **serialized response bytes**.
//!
//! Graphs (suite workloads built at the registry's [`Scale`], or `.mtx`
//! files) are interned behind `Arc<CsrGraph>`; every derived artifact
//! (MIS-2 result, coarse hierarchy, solve result) is cached by
//! `(graph ref, `[`OpKey`]`)`; and alongside each artifact the registry
//! interns its rendered response body ([`RespBytes`], same key), so a
//! repeat request can be answered without re-serializing the artifact —
//! on the v3 binary protocol, without allocating a single payload byte
//! (the writer sends the shared `Arc`'d bytes directly).
//!
//! ## Cache semantics
//!
//! * **Single-flight everywhere.** Both graph interning and artifact
//!   computation use the same in-flight protocol: of N concurrent requests
//!   for a cold key, exactly one builds/computes while the rest wait on
//!   the in-flight marker — a cold burst for one graph pays **one** build
//!   (`graph_builds` counts the real builds). The marker is cleared by a
//!   panic-safe drop guard, so a failed or panicked flight never parks
//!   later requests forever; the next waiter simply takes over.
//! * **Canonical keys.** `.mtx` paths are canonicalized before keying
//!   ([`GraphRef::try_canonical`]), so `./g.mtx` and `g.mtx` intern one
//!   graph. Successful resolutions are memoized, so a spelling pays the
//!   filesystem lookup once and an interned graph keeps serving all its
//!   known spellings even after the backing file is deleted.
//! * **Computation happens outside the cache lock**, so a slow build never
//!   blocks requests for other graphs.
//! * **Memory budget.** [`Registry::with_budget`] bounds the approximate
//!   heap bytes of everything cached (`heap_bytes()` on [`CsrGraph`] and
//!   [`Artifact`]; 0 = unbounded, the [`Registry::new`] default). When an
//!   insert pushes `bytes` over the budget, entries are evicted until it
//!   fits again.
//! * **Cost-aware segmented LRU eviction.** Victims are chosen from three
//!   segments in order: *response bytes first* (a re-render from the
//!   still-cached artifact is the cheapest possible recovery), then
//!   *artifacts* (cheap to recompute from their still-interned graph),
//!   then *graphs* (a rebuild pays file I/O or generation, and usually
//!   invalidates nothing — artifacts outlive their graph's eviction).
//!   Evicting an artifact also drops its interned response bytes — the
//!   bytes are a rendering *of* that artifact, and must not outlive it.
//!   Within a segment the least-recently-used entry
//!   goes first. **Pinned entries are never dropped mid-use**: an entry
//!   whose `Arc` is still shared (in-flight compute, a response being
//!   rendered, a caller-held handle) is skipped, so `bytes` can
//!   transiently exceed the budget under concurrent load but settles back
//!   under it as handles drop (`stats()` re-enforces the budget before
//!   reporting).
//! * **Determinism is unaffected.** Every operation is deterministic, so
//!   a hit, a recompute after eviction, and a fresh compute are observably
//!   identical — the budget can change latency and the `evictions` /
//!   `graph_builds` / `misses` counters, never a response byte.

use crate::ops::{self, Artifact, OpKey};
use crate::proto::GraphRef;
use mis2_graph::{io, suite, CsrGraph, Scale};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Snapshot of the registry's counters for `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Graphs interned right now.
    pub graphs: usize,
    /// Artifacts cached right now.
    pub artifacts: usize,
    /// Artifact-cache hits.
    pub hits: u64,
    /// Artifact-cache misses (each one paid a compute).
    pub misses: u64,
    /// Approximate heap bytes of everything cached right now.
    pub bytes: usize,
    /// Memory budget in bytes (0 = unbounded).
    pub mem_budget: usize,
    /// Entries (graphs + artifacts) evicted so far.
    pub evictions: u64,
    /// Graphs actually built/loaded (interning is single-flight, so a
    /// cold burst of N identical requests bumps this by exactly 1).
    pub graph_builds: u64,
    /// Interned response-byte entries cached right now.
    pub resp: usize,
    /// Approximate heap bytes of the interned response bytes (a subset of
    /// `bytes`).
    pub resp_bytes: usize,
    /// Requests answered straight from interned response bytes — every
    /// `resp_hits` is also counted in `hits` (the artifact was logically
    /// reused), so `hits + misses` still equals the request count.
    pub resp_hits: u64,
}

/// The interned serialized response for one `(graph, op)` key: the body
/// text (everything after `OK `) as ready-to-send bytes, plus the wire
/// token it was rendered with. Response bodies embed the client's graph
/// spelling ([`GraphRef::token`]); cache keys are canonical — so a hit
/// under a *different* spelling of the same graph must re-render (token
/// mismatch), replacing the entry. In practice clients reuse one
/// spelling and every repeat is a zero-serialization hit.
pub struct RespBytes {
    /// The wire token the body embeds.
    pub token: String,
    /// The response body, ready for the wire.
    pub body: Box<[u8]>,
}

impl RespBytes {
    /// Approximate heap footprint charged against the memory budget.
    pub fn heap_bytes(&self) -> usize {
        self.token.capacity() + self.body.len()
    }
}

type ArtifactKey = (GraphRef, OpKey);

/// Maximum memoized `.mtx` spelling resolutions (see `State::aliases`).
const ALIAS_CAP: usize = 1024;

/// One cached value with its byte cost and LRU stamp.
struct Entry<T> {
    value: Arc<T>,
    bytes: usize,
    last_used: u64,
}

impl<T> Entry<T> {
    /// Evictable iff the registry holds the only reference — an `Arc`
    /// shared with an in-flight compute or an outstanding response is
    /// pinned and must not be dropped mid-use.
    fn evictable(&self) -> bool {
        Arc::strong_count(&self.value) == 1
    }
}

/// Both caches plus the keys currently being built (single-flight), under
/// one lock so the byte accounting and eviction see a consistent view.
struct State {
    graphs: HashMap<GraphRef, Entry<CsrGraph>>,
    artifacts: HashMap<ArtifactKey, Entry<Artifact>>,
    /// Interned response bytes, keyed like artifacts. No in-flight set:
    /// rendering from a cached artifact is cheap enough that a rare
    /// concurrent double-render (last insert wins, bytes identical) beats
    /// another wait/notify protocol.
    resp: HashMap<ArtifactKey, Entry<RespBytes>>,
    graphs_inflight: HashSet<GraphRef>,
    artifacts_inflight: HashSet<ArtifactKey>,
    /// Memoized spelling → canonical key resolutions (successful ones
    /// only). Keeps every known `.mtx` spelling serving cache hits with
    /// no per-request `fs::canonicalize` syscall — and keeps serving them
    /// even after the backing file vanishes, like any resident entry.
    /// Capped at [`ALIAS_CAP`] entries (cleared wholesale when full): the
    /// memo is a pure performance/resilience cache, and spellings are
    /// client-controlled, so letting it grow unbounded would reopen the
    /// very memory hole the budget closes.
    aliases: HashMap<GraphRef, GraphRef>,
    /// Sum of `bytes` over all three maps.
    bytes: usize,
    /// Sum of `bytes` over the `resp` map alone (the `resp_bytes` gauge).
    resp_bytes: usize,
    /// Monotonic access clock for LRU stamps.
    tick: u64,
}

impl State {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// See the module docs.
pub struct Registry {
    scale: Scale,
    /// Byte budget; 0 = unbounded.
    budget: usize,
    state: Mutex<State>,
    /// Signaled whenever an in-flight build/compute finishes (either way).
    inflight_done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    graph_builds: AtomicU64,
    resp_hits: AtomicU64,
}

/// Remove the least-recently-used *evictable* entry from one cache
/// segment, returning its key and the bytes it freed (`None`: empty or
/// all pinned). An O(n) scan — cache cardinality is the tenant/workload
/// count, not the graph size, so scanning under the lock stays cheaper
/// than maintaining an order structure that must also skip pinned entries.
fn pop_lru<K, T>(map: &mut HashMap<K, Entry<T>>) -> Option<(K, usize)>
where
    K: Clone + Eq + std::hash::Hash,
{
    let key = map
        .iter()
        .filter(|(_, e)| e.evictable())
        .min_by_key(|(_, e)| e.last_used)
        .map(|(k, _)| k.clone())?;
    let e = map.remove(&key).expect("victim key just observed");
    Some((key, e.bytes))
}

/// Drop guard clearing an in-flight marker even if the build panics (a
/// leaked marker would park every later request for this key forever; the
/// scheduler catches job panics, so the process lives on).
struct Flight<'a> {
    reg: &'a Registry,
    graph: Option<GraphRef>,
    artifact: Option<ArtifactKey>,
}

impl Drop for Flight<'_> {
    fn drop(&mut self) {
        let mut st = self.reg.state.lock().unwrap();
        if let Some(k) = self.graph.take() {
            st.graphs_inflight.remove(&k);
        }
        if let Some(k) = self.artifact.take() {
            st.artifacts_inflight.remove(&k);
        }
        drop(st);
        self.reg.inflight_done.notify_all();
    }
}

impl Registry {
    /// An unbounded registry whose suite workloads build at `scale`.
    pub fn new(scale: Scale) -> Registry {
        Registry::with_budget(scale, 0)
    }

    /// A registry bounding its cached bytes to `mem_budget` (0 =
    /// unbounded). See the module docs for the eviction policy.
    pub fn with_budget(scale: Scale, mem_budget: usize) -> Registry {
        Registry {
            scale,
            budget: mem_budget,
            state: Mutex::new(State {
                graphs: HashMap::new(),
                artifacts: HashMap::new(),
                resp: HashMap::new(),
                graphs_inflight: HashSet::new(),
                artifacts_inflight: HashSet::new(),
                aliases: HashMap::new(),
                bytes: 0,
                resp_bytes: 0,
                tick: 0,
            }),
            inflight_done: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            graph_builds: AtomicU64::new(0),
            resp_hits: AtomicU64::new(0),
        }
    }

    /// The scale suite workloads are built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The memory budget in bytes (0 = unbounded).
    pub fn mem_budget(&self) -> usize {
        self.budget
    }

    /// Resolve a request's graph reference to its cache key, memoizing
    /// successful `.mtx` resolutions. The memo means a spelling pays the
    /// `fs::canonicalize` syscall once, not per request — and once a graph
    /// is interned, its known spellings keep hitting the cache even after
    /// the backing file is deleted (resident entries don't need the
    /// file). Failed resolutions are *not* memoized (the file may appear
    /// later) and fall back to the literal spelling.
    fn canon_key(&self, gref: &GraphRef) -> GraphRef {
        if matches!(gref, GraphRef::Suite(_)) {
            return gref.clone();
        }
        if let Some(k) = self.state.lock().unwrap().aliases.get(gref) {
            return k.clone();
        }
        match gref.try_canonical() {
            Some(canon) => {
                let mut st = self.state.lock().unwrap();
                if st.aliases.len() >= ALIAS_CAP {
                    // Wholesale reset: the memo only saves a syscall per
                    // request, and evicting precisely would need its own
                    // LRU machinery for what is client-controlled input.
                    st.aliases.clear();
                }
                st.aliases.insert(gref.clone(), canon.clone());
                canon
            }
            None => gref.clone(),
        }
    }

    /// Intern (load or generate) a graph, single-flight: a cold burst of N
    /// identical requests pays exactly one build.
    pub fn graph(&self, gref: &GraphRef) -> Result<Arc<CsrGraph>, String> {
        let key = self.canon_key(gref);
        self.graph_canonical(key)
    }

    /// [`Registry::graph`] on an already-canonical key. Canonicalization
    /// happens exactly once per request, at the public entry points: a
    /// second `fs::canonicalize` here could resolve differently (the path
    /// re-pointed between the two calls) and file an artifact computed
    /// from one file under another file's key.
    fn graph_canonical(&self, key: GraphRef) -> Result<Arc<CsrGraph>, String> {
        {
            let mut st = self.state.lock().unwrap();
            loop {
                let tick = st.next_tick();
                if let Some(e) = st.graphs.get_mut(&key) {
                    e.last_used = tick;
                    return Ok(Arc::clone(&e.value));
                }
                if st.graphs_inflight.insert(key.clone()) {
                    break; // our flight: build below
                }
                st = self.inflight_done.wait(st).unwrap();
            }
        }
        let _flight = Flight {
            reg: self,
            graph: Some(key.clone()),
            artifact: None,
        };
        let built = match &key {
            GraphRef::Suite(name) => suite::try_build(name, self.scale)?,
            GraphRef::Mtx(path) => match io::read_graph_file(path) {
                Ok(g) => g,
                Err(e) => {
                    // The canonical path no longer reads (file deleted or
                    // a symlink repointed after the graph was evicted):
                    // drop every memoized spelling for it, so the next
                    // request re-canonicalizes fresh instead of being
                    // parked on this dead resolution forever.
                    self.state
                        .lock()
                        .unwrap()
                        .aliases
                        .retain(|_, canon| canon != &key);
                    return Err(format!("cannot read {path}: {e}"));
                }
            },
        };
        self.graph_builds.fetch_add(1, Ordering::Relaxed);
        let bytes = built.heap_bytes();
        let value = Arc::new(built);
        let mut st = self.state.lock().unwrap();
        let tick = st.next_tick();
        st.bytes += bytes;
        st.graphs.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                bytes,
                last_used: tick,
            },
        );
        self.enforce_budget(&mut st);
        Ok(value)
    }

    /// Get or compute the artifact for `(graph, op)`, single-flight: of N
    /// concurrent requests for a cold key, exactly one computes while the
    /// others wait for its insert (or for its failure, in which case the
    /// next waiter takes over the compute).
    pub fn artifact(&self, gref: &GraphRef, op: &OpKey) -> Result<Arc<Artifact>, String> {
        let key = (self.canon_key(gref), op.clone());
        self.artifact_keyed(key)
    }

    /// [`Registry::artifact`] on an already-canonical key — same contract
    /// as [`Registry::graph_canonical`]: canonicalization happens exactly
    /// once per request, at the public entry points.
    fn artifact_keyed(&self, key: ArtifactKey) -> Result<Arc<Artifact>, String> {
        let op = key.1.clone();
        {
            let mut st = self.state.lock().unwrap();
            loop {
                let tick = st.next_tick();
                if let Some(e) = st.artifacts.get_mut(&key) {
                    e.last_used = tick;
                    let value = Arc::clone(&e.value);
                    // The hit also counts as use of the underlying graph:
                    // without this touch, a graph served purely through
                    // artifact hits would look LRU-coldest and be evicted
                    // first — the hottest tenant paying the rebuilds.
                    if let Some(g) = st.graphs.get_mut(&key.0) {
                        g.last_used = tick;
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(value);
                }
                if st.artifacts_inflight.insert(key.clone()) {
                    break; // our flight: compute below
                }
                st = self.inflight_done.wait(st).unwrap();
            }
        }
        let _flight = Flight {
            reg: self,
            graph: None,
            artifact: Some(key.clone()),
        };
        let g = self.graph_canonical(key.0.clone())?;
        let computed = ops::compute(&g, &op);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let bytes = computed.heap_bytes();
        let value = Arc::new(computed);
        let mut st = self.state.lock().unwrap();
        let tick = st.next_tick();
        st.bytes += bytes;
        st.artifacts.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                bytes,
                last_used: tick,
            },
        );
        self.enforce_budget(&mut st);
        Ok(value)
    }

    /// Probe the interned response bytes for `(graph, op)`: `Some` iff the
    /// bytes are cached *and* were rendered with this request's wire token
    /// (response bodies echo the client's spelling). A hit counts in
    /// `hits` (the artifact was logically reused) and in `resp_hits`, and
    /// refreshes **all three** LRU stamps — response bytes, artifact, and
    /// graph — so a key served purely through byte hits never looks cold.
    ///
    /// This is the server's inline fast path: cheap enough (one lock, one
    /// probe) to run on the v3 reader thread before anything is scheduled.
    pub fn try_response(&self, gref: &GraphRef, op: &OpKey) -> Option<Arc<RespBytes>> {
        let key = (self.canon_key(gref), op.clone());
        self.try_response_keyed(&key, gref.token())
    }

    /// [`Registry::try_response`] on an already-canonical key.
    fn try_response_keyed(&self, key: &ArtifactKey, token: &str) -> Option<Arc<RespBytes>> {
        let mut st = self.state.lock().unwrap();
        let tick = st.next_tick();
        let e = st.resp.get_mut(key)?;
        if e.value.token != token {
            return None; // different spelling of the graph: re-render
        }
        e.last_used = tick;
        let value = Arc::clone(&e.value);
        if let Some(a) = st.artifacts.get_mut(key) {
            a.last_used = tick;
        }
        if let Some(g) = st.graphs.get_mut(&key.0) {
            g.last_used = tick;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.resp_hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    /// Get or render the interned response bytes for `(graph, op)`. A miss
    /// goes through the artifact cache (hit or single-flight compute, with
    /// the usual counters), renders the body once, and interns it —
    /// byte-costed against the memory budget like any entry. Every request
    /// bumps exactly one of `hits`/`misses`, whichever cache level served
    /// it, so the `hits + misses == requests` invariant is unchanged.
    pub fn response(&self, gref: &GraphRef, op: &OpKey) -> Result<Arc<RespBytes>, String> {
        let key = (self.canon_key(gref), op.clone());
        if let Some(r) = self.try_response_keyed(&key, gref.token()) {
            return Ok(r);
        }
        let artifact = self.artifact_keyed(key.clone())?;
        let body = ops::body(gref.token(), op, &artifact);
        let value = Arc::new(RespBytes {
            token: gref.token().to_string(),
            body: body.into_bytes().into_boxed_slice(),
        });
        let bytes = value.heap_bytes();
        let mut st = self.state.lock().unwrap();
        let tick = st.next_tick();
        if let Some(old) = st.resp.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                bytes,
                last_used: tick,
            },
        ) {
            // Replaced (token mismatch or a concurrent render): the old
            // entry's charge goes away with it.
            st.bytes -= old.bytes;
            st.resp_bytes -= old.bytes;
        }
        st.bytes += bytes;
        st.resp_bytes += bytes;
        self.enforce_budget(&mut st);
        Ok(value)
    }

    /// Evict until `bytes <= budget` or nothing evictable remains.
    /// Segmented LRU: least-recently-used *response bytes* first (a
    /// re-render from the cached artifact is nearly free), then artifacts
    /// (recomputable from their interned graph) — taking each evicted
    /// artifact's response bytes with it, since the bytes render that
    /// artifact and must not outlive it — then graphs; pinned entries
    /// (shared `Arc`s) are never dropped mid-use, except that an evicted
    /// artifact's response-byte sibling is removed unconditionally
    /// (invalidation, not a space decision; any outstanding `Arc` keeps
    /// its bytes alive until the response is written).
    fn enforce_budget(&self, st: &mut State) {
        if self.budget == 0 {
            return;
        }
        while st.bytes > self.budget {
            if let Some((_, freed)) = pop_lru(&mut st.resp) {
                st.bytes -= freed;
                st.resp_bytes -= freed;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if let Some((key, freed)) = pop_lru(&mut st.artifacts) {
                st.bytes -= freed;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(sib) = st.resp.remove(&key) {
                    st.bytes -= sib.bytes;
                    st.resp_bytes -= sib.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            if let Some((_, freed)) = pop_lru(&mut st.graphs) {
                st.bytes -= freed;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            break; // everything left is pinned; retried on the next insert
        }
    }

    /// Counter snapshot for `STATS`. Re-enforces the budget first, so
    /// entries unpinned since the last insert are collected and the
    /// reported `bytes` respects the budget whenever nothing is in use.
    pub fn stats(&self) -> RegistryStats {
        let mut st = self.state.lock().unwrap();
        self.enforce_budget(&mut st);
        RegistryStats {
            graphs: st.graphs.len(),
            artifacts: st.artifacts.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: st.bytes,
            mem_budget: self.budget,
            evictions: self.evictions.load(Ordering::Relaxed),
            graph_builds: self.graph_builds.load(Ordering::Relaxed),
            resp: st.resp.len(),
            resp_bytes: st.resp_bytes,
            resp_hits: self.resp_hits.load(Ordering::Relaxed),
        }
    }
}

/// Parse a `STATS key=value ...` body into its pairs, in line order.
/// Words without `=` (the leading `STATS` itself) and non-numeric values
/// are skipped, so the parser tolerates future gauges it doesn't know.
pub fn parse_stats_body(body: &str) -> Vec<(&str, u64)> {
    body.split_whitespace()
        .filter_map(|w| {
            let (k, v) = w.split_once('=')?;
            Some((k, v.parse::<u64>().ok()?))
        })
        .collect()
}

/// Merge per-shard `STATS` bodies into one cluster-wide line. Each shard
/// slot is `Some(body)` for a reachable shard or `None` for a dead one
/// (which contributes zeros).
///
/// The merged line keeps the single-server shape — every key a shard
/// reported, in first-seen order, with values **summed** across shards —
/// so existing greps (`bytes=`, `evictions=`, `inflight=`…) match the
/// cluster totals exactly as they match one server's. Cluster-only
/// gauges append at the END of the line, after every summed key:
///
/// ```text
/// shards=<N> shards_up=<K> shard_bytes=b0,b1,… shard_evictions=e0,e1,…
/// ```
///
/// where the comma lists give each shard's own `bytes` / `evictions` in
/// ring order (zeros for a dead shard), letting callers attribute load
/// per shard without a second round of per-shard STATS calls.
///
/// One key is not a sum: `uptime_s` takes the **minimum over live
/// shards** — "the cluster has been fully up for this long" — since
/// adding uptimes across processes is meaningless.
pub fn merge_stats_bodies(shards: &[Option<String>]) -> String {
    let parsed: Vec<Option<Vec<(&str, u64)>>> = shards
        .iter()
        .map(|b| b.as_deref().map(parse_stats_body))
        .collect();
    let mut keys: Vec<&str> = Vec::new();
    for pairs in parsed.iter().flatten() {
        for (k, _) in pairs {
            if !keys.contains(k) {
                keys.push(k);
            }
        }
    }
    let mut line = String::from("STATS");
    for key in &keys {
        let values = || {
            parsed
                .iter()
                .flatten()
                .flat_map(|pairs| pairs.iter().filter(|(k, _)| k == key).map(|(_, v)| *v))
        };
        let merged: u64 = if *key == "uptime_s" {
            values().min().unwrap_or(0)
        } else {
            values().sum()
        };
        line.push_str(&format!(" {key}={merged}"));
    }
    let per_shard = |key: &str| -> String {
        parsed
            .iter()
            .map(|p| {
                p.as_ref()
                    .and_then(|pairs| pairs.iter().find(|(k, _)| *k == key))
                    .map_or(0, |(_, v)| *v)
                    .to_string()
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let up = parsed.iter().filter(|p| p.is_some()).count();
    line.push_str(&format!(
        " shards={} shards_up={} shard_bytes={} shard_evictions={}",
        shards.len(),
        up,
        per_shard("bytes"),
        per_shard("evictions")
    ));
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_are_interned_once() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("ecology2".into());
        let a = reg.graph(&r).unwrap();
        let b = reg.graph(&r).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same Arc must be shared");
        let s = reg.stats();
        assert_eq!(s.graphs, 1);
        assert_eq!(s.graph_builds, 1);
        assert_eq!(s.bytes, a.heap_bytes());
    }

    #[test]
    fn artifacts_hit_after_first_compute() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("parabolic_fem".into());
        let a = reg.artifact(&r, &OpKey::Mis2).unwrap();
        let b = reg.artifact(&r, &OpKey::Mis2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.artifacts), (1, 1, 1));
        // A different op key is its own cache line.
        reg.artifact(&r, &OpKey::Coarsen { levels: 2 }).unwrap();
        assert_eq!(reg.stats().artifacts, 2);
    }

    #[test]
    fn cold_bursts_are_single_flight() {
        // 8 threads racing for the same cold key: exactly one compute
        // (misses == 1), everyone gets the same Arc.
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("ecology2".into());
        let arcs: Vec<Arc<Artifact>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| reg.artifact(&r, &OpKey::Mis2).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(arcs.iter().all(|a| Arc::ptr_eq(a, &arcs[0])));
        let st = reg.stats();
        assert_eq!(st.misses, 1, "burst must pay exactly one compute");
        assert_eq!(st.hits, 7);
    }

    #[test]
    fn graph_interning_is_single_flight() {
        // 8 threads racing to intern the same cold graph: exactly one
        // build (graph_builds == 1), everyone shares the Arc.
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("thermal2".into());
        let arcs: Vec<Arc<CsrGraph>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8).map(|_| s.spawn(|| reg.graph(&r).unwrap())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(arcs.iter().all(|a| Arc::ptr_eq(a, &arcs[0])));
        let st = reg.stats();
        assert_eq!(st.graph_builds, 1, "burst must pay exactly one build");
        assert_eq!(st.graphs, 1);
    }

    #[test]
    fn failed_flight_releases_the_key() {
        // A failing compute (unknown graph) must clear the in-flight
        // marker so later requests aren't parked forever.
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("not_a_matrix".into());
        assert!(reg.artifact(&r, &OpKey::Mis2).is_err());
        assert!(reg.artifact(&r, &OpKey::Mis2).is_err());
        assert!(reg.graph(&r).is_err());
        assert!(reg.graph(&r).is_err());
    }

    #[test]
    fn unknown_graphs_error_and_cache_nothing() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("not_a_matrix".into());
        assert!(reg.graph(&r).is_err());
        assert!(reg.artifact(&r, &OpKey::Mis2).is_err());
        let s = reg.stats();
        assert_eq!((s.graphs, s.artifacts), (0, 0));
        assert_eq!((s.bytes, s.graph_builds), (0, 0));
    }

    #[test]
    fn mtx_files_load_through_the_registry() {
        let g = mis2_graph::gen::erdos_renyi(30, 60, 3);
        let dir = std::env::temp_dir().join("mis2_svc_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        io::write_graph_file(&g, &path).unwrap();
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Mtx(path.to_str().unwrap().into());
        let loaded = reg.graph(&r).unwrap();
        assert_eq!(*loaded, g);
    }

    #[test]
    fn mtx_path_spellings_intern_one_graph() {
        // dir/g.mtx and dir/../dir/g.mtx name the same file: canonical
        // keying must yield one interned graph, one build, one cache entry.
        let g = mis2_graph::gen::erdos_renyi(24, 48, 9);
        let dir = std::env::temp_dir().join("mis2_svc_registry_canon");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        io::write_graph_file(&g, &path).unwrap();
        let plain = path.to_str().unwrap().to_string();
        let dotted = format!(
            "{}/../{}/g.mtx",
            dir.to_str().unwrap(),
            dir.file_name().unwrap().to_str().unwrap()
        );
        let reg = Registry::new(Scale::Tiny);
        let a = reg.graph(&GraphRef::Mtx(plain.clone())).unwrap();
        let b = reg.graph(&GraphRef::Mtx(dotted.clone())).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "spellings must share one Arc");
        let s = reg.stats();
        assert_eq!((s.graphs, s.graph_builds), (1, 1));
        // The artifact cache keys canonically too.
        reg.artifact(&GraphRef::Mtx(plain), &OpKey::Mis2).unwrap();
        reg.artifact(&GraphRef::Mtx(dotted), &OpKey::Mis2).unwrap();
        let s = reg.stats();
        assert_eq!((s.artifacts, s.hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn interned_mtx_graphs_survive_file_deletion() {
        // Once interned, a graph is served from memory: deleting the
        // backing file must not break cache hits for any known spelling
        // (the alias memo resolves without touching the filesystem).
        let g = mis2_graph::gen::erdos_renyi(20, 40, 5);
        let dir = std::env::temp_dir().join("mis2_svc_registry_unlink");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        io::write_graph_file(&g, &path).unwrap();
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Mtx(path.to_str().unwrap().into());
        let first = reg.graph(&r).unwrap();
        reg.artifact(&r, &OpKey::Mis2).unwrap();
        std::fs::remove_file(&path).unwrap();
        let after = reg.graph(&r).unwrap();
        assert!(
            Arc::ptr_eq(&first, &after),
            "resident graph must keep serving"
        );
        reg.artifact(&r, &OpKey::Mis2).unwrap();
        assert_eq!(reg.stats().hits, 1, "artifact must hit after deletion");
    }

    #[cfg(unix)]
    #[test]
    fn stale_alias_is_invalidated_when_its_canonical_path_dies() {
        // A memoized spelling→canonical resolution must not outlive the
        // canonical path: after the graph is evicted and the symlink the
        // spelling resolves through is repointed, the dead resolution is
        // dropped on the failed read and the next request re-canonicalizes
        // to the new target.
        let g1 = mis2_graph::gen::erdos_renyi(20, 40, 1);
        let g2 = mis2_graph::gen::erdos_renyi(25, 50, 2);
        let dir = std::env::temp_dir().join("mis2_svc_registry_repoint");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        io::write_graph_file(&g1, dir.join("v1.mtx")).unwrap();
        io::write_graph_file(&g2, dir.join("v2.mtx")).unwrap();
        let cur = dir.join("cur.mtx");
        std::os::unix::fs::symlink(dir.join("v1.mtx"), &cur).unwrap();

        // 1-byte budget: the graph is evicted as soon as it is unpinned.
        let reg = Registry::with_budget(Scale::Tiny, 1);
        let spelling = GraphRef::Mtx(cur.to_str().unwrap().into());
        assert_eq!(*reg.graph(&spelling).unwrap(), g1);
        assert_eq!(reg.stats().graphs, 0, "1-byte budget must evict");

        // Repoint the symlink and delete the old target.
        std::fs::remove_file(&cur).unwrap();
        std::os::unix::fs::symlink(dir.join("v2.mtx"), &cur).unwrap();
        std::fs::remove_file(dir.join("v1.mtx")).unwrap();

        // The stale alias makes this first request fail (it still names
        // the dead v1 path) but the failure must clear the memo...
        assert!(reg.graph(&spelling).is_err());
        // ...so the next request resolves fresh and serves v2.
        assert_eq!(*reg.graph(&spelling).unwrap(), g2);
    }

    /// Total cached bytes after computing MIS-2 artifacts for `names`.
    fn bytes_for(names: &[&str]) -> usize {
        let reg = Registry::new(Scale::Tiny);
        for n in names {
            reg.artifact(&GraphRef::Suite((*n).into()), &OpKey::Mis2)
                .unwrap();
        }
        reg.stats().bytes
    }

    #[test]
    fn eviction_respects_budget_and_stays_deterministic() {
        let names = ["ecology2", "parabolic_fem", "thermal2", "tmt_sym"];
        let unbounded = bytes_for(&names);
        // Budget for roughly half the working set: forces churn but always
        // fits any single graph+artifact pair.
        let budget = unbounded / 2;
        let reg = Registry::with_budget(Scale::Tiny, budget);
        let reference = Registry::new(Scale::Tiny);
        for round in 0..3 {
            for n in &names {
                let r = GraphRef::Suite((*n).into());
                let bounded =
                    ops::body("g", &OpKey::Mis2, &reg.artifact(&r, &OpKey::Mis2).unwrap());
                let want = ops::body(
                    "g",
                    &OpKey::Mis2,
                    &reference.artifact(&r, &OpKey::Mis2).unwrap(),
                );
                assert_eq!(
                    bounded, want,
                    "round {round} graph {n}: eviction changed bytes"
                );
                let s = reg.stats();
                assert!(
                    s.bytes <= budget,
                    "round {round} graph {n}: bytes {} over budget {budget}",
                    s.bytes
                );
            }
        }
        let s = reg.stats();
        assert!(s.evictions > 0, "churn over budget must evict: {s:?}");
        assert!(
            s.misses > names.len() as u64,
            "evicted artifacts must be recomputed on return: {s:?}"
        );
    }

    #[test]
    fn artifacts_evict_before_their_graphs() {
        // Budget sized so one graph + artifact fits but two artifacts
        // don't: requesting a second op on the same graph must evict the
        // first *artifact*, never the interned graph.
        let r = GraphRef::Suite("ecology2".into());
        let probe = Registry::new(Scale::Tiny);
        let g = probe.graph(&r).unwrap();
        let a = probe.artifact(&r, &OpKey::Mis2).unwrap();
        let budget = g.heap_bytes() + a.heap_bytes() + a.heap_bytes() / 2;
        drop((g, a));

        let reg = Registry::with_budget(Scale::Tiny, budget);
        reg.artifact(&r, &OpKey::Mis2).unwrap();
        let g_first = reg.graph(&r).unwrap();
        reg.artifact(&r, &OpKey::Coarsen { levels: 2 }).unwrap();
        let s = reg.stats();
        assert!(
            s.evictions > 0,
            "second artifact must force eviction: {s:?}"
        );
        assert_eq!(s.graphs, 1, "the graph segment must survive: {s:?}");
        assert!(
            Arc::ptr_eq(&g_first, &reg.graph(&r).unwrap()),
            "graph re-interned"
        );
        assert_eq!(reg.stats().graph_builds, 1, "graph must never be rebuilt");
    }

    #[test]
    fn pinned_entries_are_never_evicted_mid_use() {
        // Hold the Arc of the first artifact while churning well past the
        // budget: the held entry must survive (hit, same Arc), bytes may
        // transiently exceed the budget instead.
        let names = ["ecology2", "parabolic_fem", "thermal2", "tmt_sym"];
        let budget = bytes_for(&names[..1]) / 2; // smaller than one pair
        let reg = Registry::with_budget(Scale::Tiny, budget);
        let r0 = GraphRef::Suite(names[0].into());
        let held = reg.artifact(&r0, &OpKey::Mis2).unwrap();
        for n in &names[1..] {
            reg.artifact(&GraphRef::Suite((*n).into()), &OpKey::Mis2)
                .unwrap();
        }
        let again = reg.artifact(&r0, &OpKey::Mis2).unwrap();
        assert!(
            Arc::ptr_eq(&held, &again),
            "a pinned artifact must survive eviction pressure"
        );
        drop((held, again));
        // Unpinned now: the next stats() housekeeping collects it.
        let s = reg.stats();
        assert!(s.bytes <= budget, "{s:?}");
    }

    #[test]
    fn response_bytes_intern_and_hit() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("ecology2".into());
        let a = reg.response(&r, &OpKey::Mis2).unwrap();
        assert_eq!(a.token, "ecology2");
        assert!(a.body.starts_with(b"MIS2 ecology2 size="));
        let b = reg.response(&r, &OpKey::Mis2).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the interned Arc");
        let via_probe = reg.try_response(&r, &OpKey::Mis2).unwrap();
        assert!(Arc::ptr_eq(&a, &via_probe));
        let s = reg.stats();
        assert_eq!((s.resp, s.artifacts, s.graphs), (1, 1, 1));
        assert_eq!((s.hits, s.misses, s.resp_hits), (2, 1, 2));
        assert!(s.resp_bytes > 0 && s.resp_bytes < s.bytes, "{s:?}");
    }

    #[test]
    fn response_rerenders_on_token_mismatch_without_double_counting() {
        // Two spellings of one .mtx file: canonical keying shares the
        // artifact, but response bodies embed the wire token, so the
        // second spelling must re-render (artifact hit, not a byte hit)
        // and replace the interned entry without double-charging bytes.
        let g = mis2_graph::gen::erdos_renyi(26, 52, 11);
        let dir = std::env::temp_dir().join("mis2_svc_registry_resp_token");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        io::write_graph_file(&g, &path).unwrap();
        let plain = path.to_str().unwrap().to_string();
        let dotted = format!(
            "{}/../{}/g.mtx",
            dir.to_str().unwrap(),
            dir.file_name().unwrap().to_str().unwrap()
        );
        let reg = Registry::new(Scale::Tiny);
        let a = reg
            .response(&GraphRef::Mtx(plain.clone()), &OpKey::Mis2)
            .unwrap();
        assert_eq!(a.token, plain);
        let b = reg
            .response(&GraphRef::Mtx(dotted.clone()), &OpKey::Mis2)
            .unwrap();
        assert_eq!(b.token, dotted, "body must echo the request's spelling");
        let s = reg.stats();
        assert_eq!((s.resp, s.artifacts, s.graphs), (1, 1, 1));
        assert_eq!(
            (s.hits, s.misses, s.resp_hits),
            (1, 1, 0),
            "the re-render is an artifact hit, not a byte hit: {s:?}"
        );
        assert_eq!(s.resp_bytes, b.heap_bytes(), "old entry's charge must go");
        // The replacing spelling now owns the entry.
        assert!(reg
            .try_response(&GraphRef::Mtx(dotted), &OpKey::Mis2)
            .is_some());
        assert!(reg
            .try_response(&GraphRef::Mtx(plain), &OpKey::Mis2)
            .is_none());
    }

    #[test]
    fn response_bytes_evict_before_artifacts_and_graphs() {
        let r = GraphRef::Suite("ecology2".into());
        let ops3 = [
            OpKey::Mis2,
            OpKey::Coarsen { levels: 2 },
            OpKey::Coarsen { levels: 3 },
        ];
        let probe = Registry::new(Scale::Tiny);
        for op in &ops3 {
            probe.response(&r, op).unwrap();
        }
        // One byte under the full working set: the final insert must evict
        // exactly one entry, and the segmented order says it is the LRU
        // *response bytes* — never an artifact or the graph.
        let budget = probe.stats().bytes - 1;
        let reg = Registry::with_budget(Scale::Tiny, budget);
        for op in &ops3 {
            reg.response(&r, op).unwrap();
        }
        let s = reg.stats();
        assert!(s.evictions >= 1, "{s:?}");
        assert_eq!(
            (s.artifacts, s.graphs),
            (3, 1),
            "artifacts and the graph must survive while response bytes go: {s:?}"
        );
        assert!(s.resp < 3, "{s:?}");
        assert!(
            reg.try_response(&r, &ops3[0]).is_none(),
            "the LRU response entry must be the victim"
        );
    }

    #[test]
    fn response_hit_refreshes_artifact_and_graph_stamps() {
        // A key served purely through byte hits must not look LRU-cold at
        // the artifact segment: touch (op1) via try_response, then apply
        // enough pressure to drain the response segment and evict one
        // artifact — the victim must be the untouched op2, not op1.
        let r = GraphRef::Suite("ecology2".into());
        let (op1, op2, op3) = (
            OpKey::Mis2,
            OpKey::Coarsen { levels: 2 },
            OpKey::Coarsen { levels: 3 },
        );
        let probe = Registry::new(Scale::Tiny);
        for op in [&op1, &op2, &op3] {
            probe.artifact(&r, op).unwrap();
        }
        // Graph + all three artifacts minus one byte: holding every
        // artifact is over budget, so exactly one artifact must go (after
        // the small response entries drain first).
        let budget = probe.stats().bytes - 1;
        let reg = Registry::with_budget(Scale::Tiny, budget);
        reg.response(&r, &op1).unwrap();
        reg.response(&r, &op2).unwrap();
        assert!(reg.try_response(&r, &op1).is_some(), "refreshing hit");
        reg.artifact(&r, &op3).unwrap();
        let s = reg.stats();
        assert_eq!(s.resp, 0, "response segment must drain first: {s:?}");
        assert_eq!(s.artifacts, 2, "{s:?}");
        assert_eq!(s.graphs, 1, "the graph must survive: {s:?}");
        // op1 (refreshed by the byte hit) must be resident, op2 evicted.
        let (h0, m0) = (s.hits, s.misses);
        reg.artifact(&r, &op1).unwrap();
        let s = reg.stats();
        assert_eq!(
            (s.hits, s.misses),
            (h0 + 1, m0),
            "the byte-hit-refreshed artifact was evicted: {s:?}"
        );
        reg.artifact(&r, &op2).unwrap();
        assert_eq!(
            reg.stats().misses,
            m0 + 1,
            "the untouched artifact must have been the victim"
        );
    }

    #[test]
    fn response_bytes_are_invalidated_with_their_artifact() {
        // Invalidation, not a space decision: when an artifact is evicted
        // its interned response bytes go too, even while a response
        // holding the Arc is still in flight (the Arc keeps the bytes
        // alive; the cache just stops serving them).
        let reg = Registry::with_budget(Scale::Tiny, 1);
        let r = GraphRef::Suite("ecology2".into());
        let held = reg.response(&r, &OpKey::Mis2).unwrap(); // pins the entry
        let s = reg.stats(); // re-enforces: the unpinned artifact evicts
        assert_eq!(s.artifacts, 0, "{s:?}");
        assert_eq!(
            (s.resp, s.resp_bytes),
            (0, 0),
            "response bytes must be invalidated with their artifact: {s:?}"
        );
        assert!(
            reg.try_response(&r, &OpKey::Mis2).is_none(),
            "invalidated bytes must not serve"
        );
        assert!(held.body.starts_with(b"MIS2 "), "held Arc stays valid");
    }

    #[test]
    fn zero_budget_means_unbounded() {
        let reg = Registry::with_budget(Scale::Tiny, 0);
        for n in ["ecology2", "parabolic_fem", "thermal2"] {
            reg.artifact(&GraphRef::Suite(n.into()), &OpKey::Mis2)
                .unwrap();
        }
        let s = reg.stats();
        assert_eq!(s.evictions, 0);
        assert_eq!((s.graphs, s.artifacts), (3, 3));
    }

    #[test]
    fn stats_bodies_parse_and_skip_unknown_words() {
        let pairs = parse_stats_body("STATS graphs=2 bytes=100 note=x evictions=3");
        assert_eq!(pairs, vec![("graphs", 2), ("bytes", 100), ("evictions", 3)]);
    }

    #[test]
    fn merged_stats_sum_keys_and_append_cluster_gauges() {
        let shards = vec![
            Some("STATS graphs=2 bytes=100 evictions=1 inflight=0".to_string()),
            Some("STATS graphs=3 bytes=50 evictions=4 inflight=2".to_string()),
        ];
        let line = merge_stats_bodies(&shards);
        assert_eq!(
            line,
            "STATS graphs=5 bytes=150 evictions=5 inflight=2 \
             shards=2 shards_up=2 shard_bytes=100,50 shard_evictions=1,4"
        );
        // The grep contract: the FIRST `bytes=` / `evictions=` match on
        // the line is the cluster sum, exactly where a single server
        // puts its own.
        let first_bytes = line.split_whitespace().find(|w| w.starts_with("bytes="));
        assert_eq!(first_bytes, Some("bytes=150"));
    }

    #[test]
    fn dead_shards_contribute_zeros_to_merged_stats() {
        let shards = vec![
            Some("STATS graphs=2 bytes=100 evictions=1".to_string()),
            None,
            Some("STATS graphs=1 bytes=7 evictions=0".to_string()),
        ];
        let line = merge_stats_bodies(&shards);
        assert!(line.contains(" shards=3 shards_up=2 "), "{line}");
        assert!(line.ends_with("shard_bytes=100,0,7 shard_evictions=1,0,0"));
        assert!(line.starts_with("STATS graphs=3 bytes=107 evictions=1"));
    }

    #[test]
    fn merged_stats_take_min_uptime_over_live_shards() {
        let shards = vec![
            Some("STATS jobs=4 uptime_s=120 requests=10".to_string()),
            None, // dead shard must not drag uptime to zero
            Some("STATS jobs=6 uptime_s=35 requests=7".to_string()),
        ];
        let line = merge_stats_bodies(&shards);
        assert!(line.contains(" jobs=10 "), "{line}");
        assert!(line.contains(" uptime_s=35 "), "{line}");
        assert!(line.contains(" requests=17 "), "{line}");
    }
}
