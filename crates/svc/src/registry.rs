//! The graph registry: load or generate each graph once, intern it behind
//! an `Arc`, and cache every derived artifact keyed by
//! `(graph, op, params)`.
//!
//! ## Cache semantics
//!
//! * **Graphs** are interned forever: the first request naming a suite
//!   workload builds it at the registry's [`Scale`]; the first request
//!   naming a `.mtx` path reads the file. Later requests share the `Arc`.
//! * **Artifacts** (MIS-2 result, coarse hierarchy, solve result) are
//!   cached by `(graph ref, `[`OpKey`]`)`. Because every operation is
//!   deterministic, a cache hit is *observably identical* to recomputing —
//!   caching can change latency, never bytes.
//! * Computation happens **outside** the cache locks, so a slow build
//!   never blocks requests for other graphs — and it is **single-flight**:
//!   a burst of identical cold requests (the service's common shape) pays
//!   exactly one compute while the rest wait on the in-flight marker.
//! * Nothing is ever evicted. The registry serves a fixed suite (plus any
//!   `.mtx` files it is pointed at), and artifacts are small relative to
//!   their graphs; a server that must bound memory should front this with
//!   its own policy.

use crate::ops::{self, Artifact, OpKey};
use crate::proto::GraphRef;
use mis2_graph::{io, suite, CsrGraph, Scale};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Snapshot of the registry's counters for `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryStats {
    /// Graphs interned so far.
    pub graphs: usize,
    /// Artifacts cached so far.
    pub artifacts: usize,
    /// Artifact-cache hits.
    pub hits: u64,
    /// Artifact-cache misses (each one paid a compute).
    pub misses: u64,
}

type ArtifactKey = (GraphRef, OpKey);

/// Artifact cache plus the keys currently being computed (single-flight).
struct Artifacts {
    map: HashMap<ArtifactKey, Arc<Artifact>>,
    inflight: HashSet<ArtifactKey>,
}

/// See the module docs.
pub struct Registry {
    scale: Scale,
    graphs: Mutex<HashMap<GraphRef, Arc<CsrGraph>>>,
    artifacts: Mutex<Artifacts>,
    /// Signaled whenever an in-flight computation finishes (either way).
    inflight_done: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Registry {
    /// An empty registry whose suite workloads build at `scale`.
    pub fn new(scale: Scale) -> Registry {
        Registry {
            scale,
            graphs: Mutex::new(HashMap::new()),
            artifacts: Mutex::new(Artifacts {
                map: HashMap::new(),
                inflight: HashSet::new(),
            }),
            inflight_done: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The scale suite workloads are built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Intern (load or generate) a graph.
    pub fn graph(&self, gref: &GraphRef) -> Result<Arc<CsrGraph>, String> {
        if let Some(g) = self.graphs.lock().unwrap().get(gref) {
            return Ok(Arc::clone(g));
        }
        let built = match gref {
            GraphRef::Suite(name) => suite::try_build(name, self.scale)?,
            GraphRef::Mtx(path) => {
                io::read_graph_file(path).map_err(|e| format!("cannot read {path}: {e}"))?
            }
        };
        let mut graphs = self.graphs.lock().unwrap();
        let entry = graphs
            .entry(gref.clone())
            .or_insert_with(|| Arc::new(built));
        Ok(Arc::clone(entry))
    }

    /// Get or compute the artifact for `(graph, op)`, single-flight: of N
    /// concurrent requests for a cold key, exactly one computes while the
    /// others wait for its insert (or for its failure, in which case the
    /// next waiter takes over the compute).
    pub fn artifact(&self, gref: &GraphRef, op: &OpKey) -> Result<Arc<Artifact>, String> {
        let key = (gref.clone(), op.clone());
        {
            let mut st = self.artifacts.lock().unwrap();
            loop {
                if let Some(a) = st.map.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(a));
                }
                if st.inflight.insert(key.clone()) {
                    break; // our flight: compute below
                }
                st = self.inflight_done.wait(st).unwrap();
            }
        }
        // Clear the in-flight marker even if the compute panics (a leaked
        // marker would park every later request for this key forever; the
        // scheduler catches job panics, so the process lives on).
        struct Flight<'a> {
            reg: &'a Registry,
            key: ArtifactKey,
        }
        impl Drop for Flight<'_> {
            fn drop(&mut self) {
                let mut st = self.reg.artifacts.lock().unwrap();
                st.inflight.remove(&self.key);
                drop(st);
                self.reg.inflight_done.notify_all();
            }
        }
        let flight = Flight { reg: self, key };
        let g = self.graph(gref)?;
        let computed = Arc::new(ops::compute(&g, op));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut st = self.artifacts.lock().unwrap();
        st.map.insert(flight.key.clone(), Arc::clone(&computed));
        drop(st);
        Ok(computed)
    }

    /// Counter snapshot for `STATS`.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            graphs: self.graphs.lock().unwrap().len(),
            artifacts: self.artifacts.lock().unwrap().map.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphs_are_interned_once() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("ecology2".into());
        let a = reg.graph(&r).unwrap();
        let b = reg.graph(&r).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same Arc must be shared");
        assert_eq!(reg.stats().graphs, 1);
    }

    #[test]
    fn artifacts_hit_after_first_compute() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("parabolic_fem".into());
        let a = reg.artifact(&r, &OpKey::Mis2).unwrap();
        let b = reg.artifact(&r, &OpKey::Mis2).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = reg.stats();
        assert_eq!((s.hits, s.misses, s.artifacts), (1, 1, 1));
        // A different op key is its own cache line.
        reg.artifact(&r, &OpKey::Coarsen { levels: 2 }).unwrap();
        assert_eq!(reg.stats().artifacts, 2);
    }

    #[test]
    fn cold_bursts_are_single_flight() {
        // 8 threads racing for the same cold key: exactly one compute
        // (misses == 1), everyone gets the same Arc.
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("ecology2".into());
        let arcs: Vec<Arc<Artifact>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| reg.artifact(&r, &OpKey::Mis2).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(arcs.iter().all(|a| Arc::ptr_eq(a, &arcs[0])));
        let st = reg.stats();
        assert_eq!(st.misses, 1, "burst must pay exactly one compute");
        assert_eq!(st.hits, 7);
    }

    #[test]
    fn failed_flight_releases_the_key() {
        // A failing compute (unknown graph) must clear the in-flight
        // marker so later requests aren't parked forever.
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("not_a_matrix".into());
        assert!(reg.artifact(&r, &OpKey::Mis2).is_err());
        assert!(reg.artifact(&r, &OpKey::Mis2).is_err());
    }

    #[test]
    fn unknown_graphs_error_and_cache_nothing() {
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Suite("not_a_matrix".into());
        assert!(reg.graph(&r).is_err());
        assert!(reg.artifact(&r, &OpKey::Mis2).is_err());
        let s = reg.stats();
        assert_eq!((s.graphs, s.artifacts), (0, 0));
    }

    #[test]
    fn mtx_files_load_through_the_registry() {
        let g = mis2_graph::gen::erdos_renyi(30, 60, 3);
        let dir = std::env::temp_dir().join("mis2_svc_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        io::write_graph_file(&g, &path).unwrap();
        let reg = Registry::new(Scale::Tiny);
        let r = GraphRef::Mtx(path.to_str().unwrap().into());
        let loaded = reg.graph(&r).unwrap();
        assert_eq!(*loaded, g);
    }
}
