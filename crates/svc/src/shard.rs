//! Sharded serving: a consistent-hash ring over shard identities plus
//! the `mis2svc route` proxy that fronts N independent `mis2svc` server
//! processes, each owning a slice of the graph keyspace.
//!
//! ## Ownership rule
//!
//! Every compute request names exactly one graph; the graph's *canonical*
//! token ([`shard_key`] — suite names as-is, `.mtx` paths resolved the
//! same way the registry keys them) hashes onto the [`Ring`], and the
//! shard owning the first ring point at or after that hash serves the
//! request. Each shard contributes a fixed set of virtual-node points
//! derived only from its own identity, so growing or shrinking the shard
//! set moves only the keys whose owning arc changed — every other key
//! keeps its shard, its cache entries, and its responses.
//!
//! ## The router
//!
//! [`route`] runs a protocol-transparent proxy: downstream it speaks
//! v1/v2/v3 exactly like a single server (same hellos, same window
//! advertisement, same error strings), upstream it keeps one pipelined v3
//! connection per shard per downstream connection and remaps tags — a
//! downstream request takes a window slot, is assigned a per-shard
//! upstream tag, and the shard's response frame is translated back to the
//! downstream protocol under the original tag. Responses are therefore
//! byte-identical to a single unsharded server's, which the e2e tests and
//! the CI `shard-smoke` leg diff-prove across the full workload sweep.
//!
//! The router's advertised window is clamped to the smallest shard
//! window, so the per-shard in-flight count can never exceed what the
//! shard's own reader will drain — upstream writes never block on shard
//! backpressure while the per-shard lock is held.
//!
//! ## Failure semantics
//!
//! A dead shard fails fast and stays contained: the upstream reader (or a
//! failed upstream write) marks that shard dead, drains its in-flight
//! tags, and answers each with `ERR shard down` under the request's own
//! tag — exactly one answer (and one window-slot release) per poisoned
//! tag, because every insert/remove on the pending map happens under one
//! lock. Requests for keys the dead shard owns keep answering `ERR shard
//! down` immediately; surviving shards are untouched. The dead shard is
//! **redialed** as requests keep arriving for it — paced by capped
//! exponential backoff (50 ms doubling to 2 s) with uniform jitter so a
//! request stream never hot-loops TCP connects and parallel routers
//! don't redial in lockstep — and a successful redial restores service
//! on a fresh connection generation (in-flight tags of the dead one
//! still answer `ERR shard down` exactly once each).
//!
//! `STATS` through the router merges every shard's counters into one
//! cluster-wide line ([`crate::registry::merge_stats_bodies`]): each key
//! summed across shards in the single-server order, then the
//! cluster-only gauges `shards= shards_up= shard_bytes= shard_evictions=`
//! appended at the end.

use crate::client::Client;
use crate::codec;
use crate::metrics;
use crate::ops;
use crate::proto::{self, GraphRef, Request};
use crate::registry;
use crate::server::{
    acquire_slot, send_frame, send_line, writer_loop, ConnSlot, ConnTable, ConnWindow, Outgoing,
    SvcStats,
};
use mis2_prim::hash::{hash2, splitmix64};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Virtual-node points each shard contributes to the ring. Enough that
/// the largest shard's share of the keyspace stays within a few percent
/// of 1/N, few enough that building and searching the ring is trivial.
pub const VNODES: usize = 64;

/// Hash a key string onto the ring's `u64` circle: bytes folded through
/// `splitmix64` with the length mixed in last, so prefixes don't collide.
fn hash_key(key: &str) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15;
    for &b in key.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    splitmix64(h ^ key.len() as u64)
}

/// The cache-key form a graph reference shards on: suite names as-is,
/// `.mtx` paths canonicalized exactly like [`crate::registry`] keys them
/// (falling back to the literal spelling when the path doesn't resolve),
/// so one graph always lives on one shard no matter how it is spelled.
pub fn shard_key(graph: &GraphRef) -> String {
    graph
        .try_canonical()
        .unwrap_or_else(|| graph.clone())
        .token()
        .to_string()
}

/// A consistent-hash ring: [`VNODES`] points per shard, each derived
/// only from the shard's own identity string, sorted on a `u64` circle.
/// A key is owned by the shard holding the first point at or after the
/// key's hash (wrapping at the top).
///
/// Because a shard's points depend on nothing but its own identity,
/// adding or removing a shard inserts or deletes only *that shard's*
/// points: every key whose owning point survives keeps its owner, which
/// is the rebalancing guarantee the grow/shrink tests pin down.
pub struct Ring {
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build the ring over the given shard identities (typically their
    /// addresses). Panics on an empty shard set — a ring with no points
    /// cannot own anything.
    pub fn new<S: AsRef<str>>(shard_ids: &[S]) -> Ring {
        assert!(!shard_ids.is_empty(), "ring needs at least one shard");
        let mut points = Vec::with_capacity(shard_ids.len() * VNODES);
        for (idx, id) in shard_ids.iter().enumerate() {
            let base = hash_key(id.as_ref());
            for replica in 0..VNODES as u64 {
                points.push((hash2(splitmix64, base, replica), idx));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// Index (into the constructor's slice) of the shard owning `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        let h = hash_key(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }
}

/// Router configuration for [`route`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Upstream shard addresses, in ring order. Must be non-empty and
    /// every shard must answer a v3 hello at startup.
    pub shards: Vec<String>,
    /// Maximum concurrent downstream connections (0 = 1024).
    pub max_conns: usize,
    /// Downstream window cap (0 = 64); always clamped to the smallest
    /// shard-advertised window so per-shard in-flight never exceeds what
    /// the shard's reader will drain.
    pub max_inflight: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            max_conns: 0,
            max_inflight: 0,
        }
    }
}

/// A running router. Call [`RouterHandle::shutdown`] to stop it (tests)
/// or [`RouterHandle::wait`] to serve forever (the `mis2svc route` bin).
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    conn_table: Arc<ConnTable>,
    svc_stats: Arc<SvcStats>,
    max_inflight: usize,
}

impl RouterHandle {
    /// The address the router actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's wire counters (downstream window gauges).
    pub fn svc_stats(&self) -> &Arc<SvcStats> {
        &self.svc_stats
    }

    /// The downstream window cap after clamping to the shard windows.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Block forever serving.
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting, join the accept thread, and hard-close every live
    /// downstream connection so its handler (and that handler's upstream
    /// connections) wind down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.conn_table.kill_all();
    }
}

/// Probe one shard's v3 hello to learn its advertised window. The probe
/// connection is dropped immediately afterwards (the server treats the
/// EOF as a clean close).
fn probe_shard_window(addr: &str) -> io::Result<usize> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", codec::HELLO_V3)?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("shard {addr} closed during the hello"),
        ));
    }
    codec::parse_hello_ok(line.trim_end_matches(['\r', '\n']))
        .filter(|max| *max > 0)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shard {addr} rejected the V3 hello: {}", line.trim_end()),
            )
        })
}

/// Bind and start the shard router in background threads. Every shard
/// must answer its v3 hello at startup (the advertised windows bound the
/// router's own window); shards may die afterwards — that is the failure
/// mode the router contains per-shard.
pub fn route(cfg: RouterConfig) -> io::Result<RouterHandle> {
    if cfg.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one shard",
        ));
    }
    let mut shard_window = usize::MAX;
    for addr in &cfg.shards {
        shard_window = shard_window.min(probe_shard_window(addr)?);
    }
    let max_inflight = if cfg.max_inflight == 0 {
        64
    } else {
        cfg.max_inflight
    }
    .min(shard_window);
    let max_conns = if cfg.max_conns == 0 {
        1024
    } else {
        cfg.max_conns
    };
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let svc_stats = Arc::new(SvcStats::default());
    let conn_table = Arc::new(ConnTable::default());
    let ring = Arc::new(Ring::new(&cfg.shards));
    let shard_addrs: Arc<Vec<String>> = Arc::new(cfg.shards.clone());
    let accept = {
        let stop = Arc::clone(&stop);
        let svc_stats = Arc::clone(&svc_stats);
        let conn_table = Arc::clone(&conn_table);
        let conns = Arc::new(AtomicUsize::new(0));
        std::thread::Builder::new()
            .name("mis2-route-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else {
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    };
                    let _ = stream.set_nodelay(true);
                    // Same claim-then-check slot discipline as the
                    // server's accept loop; the drop guard releases the
                    // claim on every path.
                    let claimed = conns.fetch_add(1, Ordering::AcqRel) + 1;
                    let slot = ConnSlot::new(Arc::clone(&conns));
                    if claimed > max_conns {
                        let _ = writeln!(stream, "{}", proto::err("server busy"));
                        continue;
                    }
                    let slot = slot.track(&conn_table, &stream);
                    let svc_stats = Arc::clone(&svc_stats);
                    let ring = Arc::clone(&ring);
                    let shard_addrs = Arc::clone(&shard_addrs);
                    let _ = std::thread::Builder::new()
                        .name("mis2-route-conn".into())
                        .spawn(move || {
                            let _slot = slot;
                            let _ = handle_router_connection(
                                stream,
                                &shard_addrs,
                                &ring,
                                &svc_stats,
                                max_inflight,
                            );
                        });
                }
            })?
    };
    Ok(RouterHandle {
        addr,
        stop,
        accept: Some(accept),
        conn_table,
        svc_stats,
        max_inflight,
    })
}

/// How a shard's response frame is rendered back to the downstream
/// protocol: a bare v1 line, a tagged v2 line, or a v3 frame under the
/// downstream tag.
enum Reply {
    V1,
    V2(u64),
    V3(u64),
}

/// The lock-guarded half of one upstream shard connection. Every
/// transition of the pending map — insert on forward, remove on a
/// response, drain on death — happens under this one lock, which is what
/// makes delivery (and therefore window-slot release) exactly-once per
/// tag: a tag leaves the map exactly once, and whoever removes it owns
/// answering it.
struct UpState {
    /// In-flight upstream tags and how to answer each downstream.
    pending: HashMap<u64, Reply>,
    /// Next upstream tag (monotonically unique across reconnects, so a
    /// stale socket's late response can never alias a fresh tag).
    next_tag: u64,
    /// Write half of the current shard connection; `None` while the
    /// shard is dead — forwards answer `ERR shard down` immediately
    /// (fail-fast) and redial on the backoff cadence below.
    writer: Option<TcpStream>,
    /// Raw clone of the current socket, used only to `shutdown()` at
    /// downstream teardown, which unblocks the reader thread.
    teardown: Option<TcpStream>,
    /// Connection generation: bumped by every successful (re)dial. A
    /// dying reader poisons the shard only if its generation is still
    /// current — a newer socket may already be serving.
    gen: u64,
    /// Reader threads of every generation, joined at teardown.
    readers: Vec<std::thread::JoinHandle<()>>,
    /// Downstream teardown has begun: no further redials.
    closed: bool,
    /// Earliest instant the next redial may happen; `None` = dial freely
    /// (fresh shard, or first forward after a death).
    next_dial_at: Option<Instant>,
    /// Current backoff interval (zero until a dial fails; doubles per
    /// failure up to [`DIAL_BACKOFF_CAP`], resets on success).
    backoff: Duration,
    /// Total dial attempts, successful or not. Seeds the jitter and
    /// bounds the retry cadence under test.
    dials: u64,
}

/// One upstream shard connection owned by one downstream connection.
struct UpShard {
    addr: String,
    state: Mutex<UpState>,
}

impl UpShard {
    /// A shard slot with no connection yet: the first
    /// [`try_revive`] dials it eagerly.
    fn new(addr: &str) -> UpShard {
        UpShard {
            addr: addr.to_string(),
            state: Mutex::new(UpState {
                pending: HashMap::new(),
                next_tag: 0,
                writer: None,
                teardown: None,
                gen: 0,
                readers: Vec::new(),
                closed: false,
                next_dial_at: None,
                backoff: Duration::ZERO,
                dials: 0,
            }),
        }
    }
}

/// First retry interval after a failed shard dial.
const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Retry interval ceiling: a shard that stays down is probed at most
/// every two seconds per downstream connection, forever.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(2000);

/// Dial and v3-upgrade one upstream shard socket, returning
/// `(writer, teardown clone, reader)` halves.
fn dial(addr: &str) -> io::Result<(TcpStream, TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let teardown = stream.try_clone()?;
    let mut writer = stream;
    writeln!(writer, "{}", codec::HELLO_V3)?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shard closed during the hello",
        ));
    }
    codec::parse_hello_ok(line.trim_end_matches(['\r', '\n']))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shard rejected the V3 hello"))?;
    Ok((writer, teardown, reader))
}

/// Record a dial attempt and schedule the earliest next one:
/// exponential backoff doubling to [`DIAL_BACKOFF_CAP`], jittered
/// uniformly into `[backoff/2, backoff]` so N downstream connections
/// (or N routers) chasing one dead shard don't redial in lockstep.
/// Every attempt is paced, even ones whose connect+hello succeed — a
/// flapping shard that accepts and instantly dies must not be redialed
/// per request. Only a delivered response frame (proof of a live shard,
/// see [`upstream_reader`]) resets the cadence.
fn pace_dial(st: &mut UpState, addr: &str) {
    st.dials += 1;
    st.backoff = if st.backoff.is_zero() {
        DIAL_BACKOFF_BASE
    } else {
        (st.backoff * 2).min(DIAL_BACKOFF_CAP)
    };
    let nanos = st.backoff.as_nanos() as u64;
    // splitmix64 over (addr, attempt, wall clock): deterministic inputs
    // alone would synchronize identical routers started together.
    let wall = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0);
    let addr_hash = addr.bytes().fold(0u64, |h, b| splitmix64(h ^ u64::from(b)));
    let r = splitmix64(hash2(splitmix64, addr_hash, st.dials) ^ wall);
    let jittered = nanos / 2 + r % (nanos / 2 + 1);
    st.next_dial_at = Some(Instant::now() + Duration::from_nanos(jittered));
}

/// Try to (re)connect `shard`. On success the fresh socket is installed
/// under a new generation, its reader thread spawned, and the backoff
/// reset; on failure the next attempt is scheduled by
/// [`pace_dial`]. The dial itself runs without the shard lock —
/// responses and poisoning on other generations proceed meanwhile.
fn try_revive(
    shard: &Arc<UpShard>,
    tx: &SyncSender<Outgoing>,
    win: &Arc<ConnWindow>,
    stats: &Arc<SvcStats>,
) {
    match dial(&shard.addr) {
        Ok((writer, teardown, reader)) => {
            let mut st = shard.state.lock().unwrap();
            if st.closed {
                return; // downstream teardown raced the dial: drop it
            }
            // The fresh socket is still paced like a failure until it
            // proves itself with a response frame (the reader resets
            // the cadence then) — so a flapping shard stays backed off.
            pace_dial(&mut st, &shard.addr);
            st.gen += 1;
            let gen = st.gen;
            let up = Arc::clone(shard);
            let (tx, win, stats) = (tx.clone(), Arc::clone(win), Arc::clone(stats));
            if let Ok(h) = std::thread::Builder::new()
                .name("mis2-route-up".into())
                .spawn(move || upstream_reader(reader, up, gen, tx, win, stats))
            {
                st.writer = Some(writer);
                st.teardown = Some(teardown);
                st.readers.push(h);
            }
            // else: no reader, no connection — stay dead, retry later.
        }
        Err(_) => {
            let mut st = shard.state.lock().unwrap();
            pace_dial(&mut st, &shard.addr);
        }
    }
}

/// Render one upstream response (or synthesized error) downstream under
/// an already-held window slot.
fn deliver(
    reply: Reply,
    status: u8,
    payload: &[u8],
    tx: &SyncSender<Outgoing>,
    win: &ConnWindow,
    stats: &SvcStats,
) {
    let line = || {
        let prefix = if status == codec::STATUS_OK {
            "OK "
        } else {
            "ERR "
        };
        format!("{prefix}{}", String::from_utf8_lossy(payload))
    };
    match reply {
        Reply::V1 => send_line(line(), tx, win, stats),
        Reply::V2(tag) => send_line(proto::tagged(tag, &line()), tx, win, stats),
        Reply::V3(tag) => send_frame(
            tag,
            ops::Response::from_wire(status, payload),
            tx,
            win,
            stats,
        ),
    }
}

/// Forward one request line to `shard` under an already-held window
/// slot. A dead shard (or a write that kills it) answers `ERR shard
/// down` for this request — and, on a fresh death, for every other tag
/// that was in flight on the shard, exactly once each (the reader thread
/// finds an already-empty map when it notices the same death). Requests
/// hitting a dead shard also pace its revival: at most one redial per
/// jittered backoff interval ([`pace_dial`]), never a connect
/// per request.
fn forward(
    shard: &Arc<UpShard>,
    line: &str,
    reply: Reply,
    tx: &SyncSender<Outgoing>,
    win: &Arc<ConnWindow>,
    stats: &Arc<SvcStats>,
) {
    let mut st = shard.state.lock().unwrap();
    if st.writer.is_none() && !st.closed && st.next_dial_at.is_none_or(|at| Instant::now() >= at) {
        drop(st);
        try_revive(shard, tx, win, stats);
        st = shard.state.lock().unwrap();
    }
    if st.writer.is_none() {
        drop(st);
        deliver(reply, codec::STATUS_ERR, b"shard down", tx, win, stats);
        return;
    }
    let tag = st.next_tag;
    st.next_tag += 1;
    st.pending.insert(tag, reply);
    let wrote = codec::write_frame(
        st.writer.as_mut().expect("checked above"),
        tag,
        codec::STATUS_OK,
        line.as_bytes(),
    );
    if wrote.is_err() {
        // The shard died under our pen: poison it here. Taking back our
        // own entry and draining the rest under the same lock keeps the
        // reader thread (which will notice the death next) from ever
        // seeing these tags — one answer, one slot release, per tag.
        st.writer = None;
        let mine = st.pending.remove(&tag);
        let drained: Vec<Reply> = st.pending.drain().map(|(_, r)| r).collect();
        drop(st);
        for r in mine.into_iter().chain(drained) {
            deliver(r, codec::STATUS_ERR, b"shard down", tx, win, stats);
        }
    }
}

/// The per-shard upstream reader: translates response frames back to the
/// downstream protocol, and on shard death (EOF, read error, or teardown
/// shutdown) poisons only this shard — every tag still pending gets `ERR
/// shard down` and its window slot back, the connection keeps serving
/// other shards.
fn upstream_reader(
    mut reader: BufReader<TcpStream>,
    shard: Arc<UpShard>,
    gen: u64,
    tx: SyncSender<Outgoing>,
    win: Arc<ConnWindow>,
    stats: Arc<SvcStats>,
) {
    let mut payload: Vec<u8> = Vec::new();
    let mut proven = false;
    while let Ok(Some((tag, status))) = codec::read_frame_into(&mut reader, &mut payload) {
        let reply = {
            let mut st = shard.state.lock().unwrap();
            // First response frame: the shard is demonstrably alive, so
            // reset the redial cadence it would get on its next death.
            if !proven && st.gen == gen {
                proven = true;
                st.backoff = Duration::ZERO;
                st.next_dial_at = None;
            }
            st.pending.remove(&tag)
        };
        // An unknown tag means the forwarder already answered it (shard
        // died under the write, then revived enough to respond) — it
        // holds no slot, so drop it.
        if let Some(reply) = reply {
            deliver(reply, status, &payload, &tx, &win, &stats);
        }
    }
    let drained: Vec<Reply> = {
        let mut st = shard.state.lock().unwrap();
        // Poison only our own connection generation: if a redial already
        // installed a fresh socket, its tags are not ours to drain.
        if st.gen != gen {
            return;
        }
        st.writer = None;
        st.pending.drain().map(|(_, r)| r).collect()
    };
    for reply in drained {
        deliver(reply, codec::STATUS_ERR, b"shard down", &tx, &win, &stats);
    }
}

/// Fetch every shard's `STATS` over short-lived v1 connections and merge
/// them into the cluster line. A shard that cannot be reached (or
/// answers garbage) contributes zeros and drops out of `shards_up=`.
fn cluster_stats(shard_addrs: &[String]) -> String {
    let fetch = |addr: &String| -> Option<String> {
        let mut c = Client::connect(addr.as_str()).ok()?;
        c.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
        let line = c.request("STATS").ok()?;
        let body = line.strip_prefix("OK ")?.to_string();
        let _ = c.quit();
        Some(body)
    };
    let bodies: Vec<Option<String>> = shard_addrs.iter().map(fetch).collect();
    registry::merge_stats_bodies(&bodies)
}

/// Fetch every shard's `METRICS` exposition and merge bucket-wise
/// ([`crate::metrics::merge_expositions`]): counters and histogram
/// buckets sum, `mis2_uptime_seconds` takes the minimum over live
/// shards, and each shard's slow-request entries pass through with the
/// `shard` label rewritten to the shard's cluster index. The body comes
/// back in the same escaped single-line form the server emits.
fn cluster_metrics(shard_addrs: &[String]) -> String {
    let fetch = |addr: &String| -> Option<String> {
        let mut c = Client::connect(addr.as_str()).ok()?;
        c.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
        let line = c.request("METRICS").ok()?;
        let body = line.strip_prefix("OK METRICS ")?.to_string();
        let _ = c.quit();
        Some(metrics::unescape_body(&body))
    };
    let bodies: Vec<Option<String>> = shard_addrs.iter().map(fetch).collect();
    let merged = metrics::merge_expositions(&bodies);
    format!("METRICS {}", metrics::escape_body(&merged))
}

/// Serve one downstream connection: the router-side mirror of the
/// server's reader/writer split. The writer half is literally the
/// server's [`writer_loop`]; the reader parses downstream requests and
/// forwards compute to the owning shard instead of a scheduler.
fn handle_router_connection(
    stream: TcpStream,
    shard_addrs: &[String],
    ring: &Ring,
    stats: &Arc<SvcStats>,
    max_inflight: usize,
) -> io::Result<()> {
    let write_stream = stream.try_clone()?;
    let win = Arc::new(ConnWindow::new());
    // Capacity = window cap: the same bound that makes the server's
    // completion sends non-blocking makes the upstream readers' sends
    // non-blocking here.
    let (tx, rx) = sync_channel::<Outgoing>(max_inflight);
    let writer = {
        let win = Arc::clone(&win);
        let stats = Arc::clone(stats);
        std::thread::Builder::new()
            .name("mis2-route-write".into())
            .spawn(move || writer_loop(rx, write_stream, &win, &stats, None))?
    };
    // One eager upstream connection per shard, plus its reader thread.
    // A shard that can't be dialed starts dead (its keys answer `ERR
    // shard down`) and is redialed on the backoff cadence as requests
    // keep arriving for it.
    let mut shards: Vec<Arc<UpShard>> = Vec::with_capacity(shard_addrs.len());
    for addr in shard_addrs {
        let up = Arc::new(UpShard::new(addr));
        try_revive(&up, &tx, &win, stats);
        shards.push(up);
    }
    let result = router_read_loop(
        stream,
        &shards,
        shard_addrs,
        ring,
        stats,
        max_inflight,
        &win,
        &tx,
    );
    // Teardown: mark every shard closed (no further redials), hard-close
    // the upstream sockets so their readers unblock, join the readers of
    // every generation, and drop their tx clones; then our own sender
    // drops and the writer drains out. The join happens outside the
    // shard lock — a dying reader takes it to drain its pending tags.
    for shard in &shards {
        let (socket, readers) = {
            let mut st = shard.state.lock().unwrap();
            st.closed = true;
            (st.teardown.take(), std::mem::take(&mut st.readers))
        };
        if let Some(s) = socket {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in readers {
            let _ = h.join();
        }
    }
    drop(tx);
    let _ = writer.join();
    result
}

/// Downstream framing mode, as in the server's reader.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    V1,
    V2,
}

/// The downstream reader: the same line discipline, hellos, window
/// slots, and error strings as the server's [`read_loop`] — but compute
/// requests are consistent-hashed to their owning shard and forwarded,
/// `STATS` answers the merged cluster line, and `PING` answers locally.
///
/// [`read_loop`]: crate::server
#[allow(clippy::too_many_arguments)]
fn router_read_loop(
    stream: TcpStream,
    shards: &[Arc<UpShard>],
    shard_addrs: &[String],
    ring: &Ring,
    stats: &Arc<SvcStats>,
    max_inflight: usize,
    win: &Arc<ConnWindow>,
    tx: &SyncSender<Outgoing>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut mode = Mode::V1;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let n = (&mut reader)
            .take(proto::MAX_LINE as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(());
        }
        let cap = match mode {
            Mode::V1 => 1,
            Mode::V2 => max_inflight,
        };
        let frame_unframeable = |e: String| match mode {
            Mode::V1 => e,
            Mode::V2 => proto::tagged_unknown(&e),
        };
        if n > proto::MAX_LINE && buf.last() != Some(&b'\n') {
            acquire_slot(win, cap, stats);
            send_line(
                frame_unframeable(proto::err("line too long")),
                tx,
                win,
                stats,
            );
            return Ok(());
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            acquire_slot(win, cap, stats);
            send_line(
                frame_unframeable(proto::err("invalid utf-8")),
                tx,
                win,
                stats,
            );
            continue;
        };
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let (tag, parsed) = match mode {
            Mode::V1 if trimmed == proto::HELLO_V2 => {
                mode = Mode::V2;
                acquire_slot(win, cap, stats);
                send_line(proto::hello_ok(max_inflight), tx, win, stats);
                continue;
            }
            Mode::V1 if trimmed == codec::HELLO_V3 => {
                acquire_slot(win, cap, stats);
                send_line(codec::hello_ok(max_inflight), tx, win, stats);
                return router_v3_read_loop(
                    &mut reader,
                    shards,
                    shard_addrs,
                    ring,
                    stats,
                    max_inflight,
                    win,
                    tx,
                );
            }
            Mode::V1 => (None, Request::parse(trimmed)),
            Mode::V2 => match proto::split_tagged(trimmed) {
                Err(e) => {
                    acquire_slot(win, cap, stats);
                    send_line(proto::tagged_unknown(&proto::err(&e)), tx, win, stats);
                    continue;
                }
                Ok((tag, rest)) => (Some(tag), Request::parse(rest)),
            },
        };
        let frame = move |response: String| match tag {
            Some(t) => proto::tagged(t, &response),
            None => response,
        };
        match parsed {
            Err(e) => {
                acquire_slot(win, cap, stats);
                send_line(frame(proto::err(&e)), tx, win, stats);
            }
            Ok(Request::Ping) => {
                acquire_slot(win, cap, stats);
                send_line(frame(proto::ok("PONG")), tx, win, stats);
            }
            Ok(Request::Stats) => {
                acquire_slot(win, cap, stats);
                let body = cluster_stats(shard_addrs);
                send_line(frame(proto::ok(&body)), tx, win, stats);
            }
            Ok(Request::Metrics) => {
                acquire_slot(win, cap, stats);
                let body = cluster_metrics(shard_addrs);
                send_line(frame(proto::ok(&body)), tx, win, stats);
            }
            Ok(Request::Quit) => {
                win.wait_empty();
                acquire_slot(win, cap, stats);
                send_line(frame(proto::ok("BYE")), tx, win, stats);
                return Ok(());
            }
            Ok(req) => {
                acquire_slot(win, cap, stats);
                let reply = match tag {
                    Some(t) => Reply::V2(t),
                    None => Reply::V1,
                };
                route_request(&req, shards, ring, reply, tx, win, stats);
            }
        }
    }
}

/// The downstream v3 reader: the server's `v3_read_loop` shape with
/// forwarding in place of compute.
#[allow(clippy::too_many_arguments)]
fn router_v3_read_loop(
    reader: &mut BufReader<TcpStream>,
    shards: &[Arc<UpShard>],
    shard_addrs: &[String],
    ring: &Ring,
    stats: &Arc<SvcStats>,
    max_inflight: usize,
    win: &Arc<ConnWindow>,
    tx: &SyncSender<Outgoing>,
) -> io::Result<()> {
    let mut payload: Vec<u8> = Vec::new();
    loop {
        let Some(hdr) = codec::read_header(reader)? else {
            return Ok(());
        };
        let (tag, len, _status) = codec::decode_header(&hdr);
        let len = len as usize;
        if len > codec::MAX_PAYLOAD {
            acquire_slot(win, max_inflight, stats);
            send_frame(tag, ops::Response::err("frame too long"), tx, win, stats);
            return Ok(());
        }
        payload.resize(len, 0);
        reader.read_exact(&mut payload)?;
        let Ok(text) = std::str::from_utf8(&payload) else {
            acquire_slot(win, max_inflight, stats);
            send_frame(tag, ops::Response::err("invalid utf-8"), tx, win, stats);
            continue;
        };
        match Request::parse(text.trim_end_matches(['\r', '\n'])) {
            Err(e) => {
                acquire_slot(win, max_inflight, stats);
                send_frame(tag, ops::Response::err(&e), tx, win, stats);
            }
            Ok(Request::Ping) => {
                acquire_slot(win, max_inflight, stats);
                send_frame(tag, ops::Response::ok_text("PONG".into()), tx, win, stats);
            }
            Ok(Request::Stats) => {
                acquire_slot(win, max_inflight, stats);
                let body = cluster_stats(shard_addrs);
                send_frame(tag, ops::Response::ok_text(body), tx, win, stats);
            }
            Ok(Request::Metrics) => {
                acquire_slot(win, max_inflight, stats);
                let body = cluster_metrics(shard_addrs);
                send_frame(tag, ops::Response::ok_text(body), tx, win, stats);
            }
            Ok(Request::Quit) => {
                win.wait_empty();
                acquire_slot(win, max_inflight, stats);
                send_frame(tag, ops::Response::ok_text("BYE".into()), tx, win, stats);
                return Ok(());
            }
            Ok(req) => {
                acquire_slot(win, max_inflight, stats);
                route_request(&req, shards, ring, Reply::V3(tag), tx, win, stats);
            }
        }
    }
}

/// Consistent-hash one parsed compute request to its owning shard and
/// forward it (under an already-held window slot).
fn route_request(
    req: &Request,
    shards: &[Arc<UpShard>],
    ring: &Ring,
    reply: Reply,
    tx: &SyncSender<Outgoing>,
    win: &Arc<ConnWindow>,
    stats: &Arc<SvcStats>,
) {
    let Some((graph, _)) = ops::request_op(req) else {
        // PING/STATS/QUIT are handled before routing; nothing else
        // parses, so this is unreachable in practice — answer anyway
        // rather than poison anything.
        deliver(
            reply,
            codec::STATUS_ERR,
            b"not a compute request",
            tx,
            win,
            stats,
        );
        return;
    };
    let idx = ring.shard_of(&shard_key(graph));
    forward(&shards[idx], &req.to_line(), reply, tx, win, stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:90{i:02}")).collect()
    }

    fn keys() -> Vec<String> {
        (0..512).map(|i| format!("graph_{i}.mtx")).collect()
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let ring = Ring::new(&ids(3));
        let again = Ring::new(&ids(3));
        for k in keys() {
            let s = ring.shard_of(&k);
            assert!(s < 3);
            assert_eq!(s, again.shard_of(&k), "ownership must be deterministic");
        }
    }

    #[test]
    fn ring_spreads_keys_across_all_shards() {
        let ring = Ring::new(&ids(3));
        let mut counts = [0usize; 3];
        for k in keys() {
            counts[ring.shard_of(&k)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > keys().len() / 10,
                "shard {i} owns {c} of {} keys — far off a fair split {counts:?}",
                keys().len()
            );
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        let three = ids(3);
        let mut four = ids(3);
        four.push("127.0.0.1:9999".into());
        let before = Ring::new(&three);
        let after = Ring::new(&four);
        let mut moved = 0;
        for k in keys() {
            let old = after.shard_of(&k);
            if old != before.shard_of(&k) {
                assert_eq!(
                    four[old], "127.0.0.1:9999",
                    "a key may only move to the shard that joined"
                );
                moved += 1;
            }
        }
        assert!(moved > 0, "the new shard must own something");
        assert!(
            moved < keys().len() / 2,
            "growing by one shard must not reshuffle the world ({moved} moved)"
        );
    }

    #[test]
    fn shrinking_the_ring_only_moves_the_dead_shards_keys() {
        let three = ids(3);
        let two: Vec<String> = vec![three[0].clone(), three[2].clone()];
        let before = Ring::new(&three);
        let after = Ring::new(&two);
        for k in keys() {
            let owner_before = three[before.shard_of(&k)].clone();
            let owner_after = two[after.shard_of(&k)].clone();
            if owner_before != three[1] {
                assert_eq!(
                    owner_before, owner_after,
                    "a surviving shard's keys must not move when another shard leaves"
                );
            }
        }
    }

    #[test]
    fn shard_keys_are_canonical_across_spellings() {
        // Suite names are their own canonical form.
        let a = shard_key(&GraphRef::Suite("ecology2".into()));
        assert_eq!(a, "ecology2");
        // Two spellings of one existing path must shard identically.
        let dir = std::env::temp_dir().join("mis2_shard_key_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.mtx");
        std::fs::write(&path, b"stub").unwrap();
        let plain = path.to_str().unwrap().to_string();
        let dotted = format!(
            "{}/../{}/g.mtx",
            dir.to_str().unwrap(),
            dir.file_name().unwrap().to_str().unwrap()
        );
        assert_eq!(
            shard_key(&GraphRef::Mtx(plain)),
            shard_key(&GraphRef::Mtx(dotted))
        );
        // A missing path falls back to its literal spelling.
        assert_eq!(
            shard_key(&GraphRef::Mtx("no/such/file.mtx".into())),
            "no/such/file.mtx"
        );
    }

    #[test]
    fn router_refuses_an_empty_shard_set() {
        match route(RouterConfig::default()) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("an empty shard set must be refused"),
        }
    }
}
