//! `mis2svc` — the graph-service daemon and its command-line client.
//!
//! ```text
//! mis2svc serve  [--addr HOST:PORT] [--threads N] [--workers K]
//!                [--queue-cap N] [--scale tiny|small|paper]
//!                [--mem-budget BYTES[k|m|g]] [--max-inflight N]
//!                [--max-conns N] [--slow-ms MS]
//!                [--io-backend epoll|threads]
//! mis2svc route  --shard HOST:PORT [--shard HOST:PORT ...]
//!                [--addr HOST:PORT] [--max-inflight N] [--max-conns N]
//! mis2svc client --addr HOST:PORT REQUEST...
//! mis2svc workloads [--addr HOST:PORT --pipeline N [--proto v2|v3]]
//! ```
//!
//! `--mem-budget` bounds the registry's cached bytes (graphs, artifacts,
//! and interned response bytes; 0 or absent = unbounded): over budget,
//! response bytes evict before artifacts before graphs in LRU order, and
//! responses stay byte-identical either way. `--max-inflight` caps how
//! many pipelined (v2/v3) requests one connection may keep outstanding
//! (absent = 64). Zero is a usage error for every flag whose zero value
//! the server cannot honor (`--threads`, `--workers`, `--queue-cap`,
//! `--max-conns`, `--max-inflight`): the explicit `0` would silently
//! become a default — worse, a `--max-inflight 0` hello would advertise
//! a window no client accepts — so the daemon refuses it up front,
//! mirroring the client's `max_inflight=0` hello rejection. `--slow-ms`
//! sets the slow-request ring's capture threshold (default 500); `0` is
//! legal and captures **every** request — the knob CI uses to prove the
//! ring works. `--io-backend` selects the connection engine: `epoll`
//! (one nonblocking readiness loop, the Linux default) or `threads`
//! (reader+writer thread per connection, the portable fallback and the
//! default elsewhere). Responses are bitwise-identical either way; an
//! explicit `epoll` on a non-Linux host is a usage error rather than a
//! silent downgrade.
//!
//! `serve` binds the loopback listener, prints `mis2svc listening on ADDR`
//! and serves until killed. `client` sends one request line (the remaining
//! arguments joined by spaces), prints the response, and exits 0 iff the
//! response is `OK ...`. `workloads` lists the suite graph names — used by
//! the CI smoke leg to sweep every workload through a running server.
//! With `--addr` and `--pipeline N` it instead runs the whole sweep
//! (MIS2 + COARSEN 2 per workload, plus two SOLVEs) through a
//! [`PipelinedClient`] with an N-deep window — or, with `--proto v3`, a
//! binary-frame [`V3Client`] — printing one response per line in request
//! order, tags stripped and frames rendered back to text, so the output
//! of every protocol is directly comparable to a sequential v1 sweep.
//! That is exactly what the CI pipelined and v3 smoke legs diff.
//!
//! `route` runs the shard router: each `--shard` names one running
//! `mis2svc serve` process, requests are consistent-hashed to the shard
//! owning their graph, and the router is protocol-transparent — `client`
//! and `workloads --pipeline N [--proto v2|v3]` work against it
//! unchanged, with responses byte-identical to a single unsharded
//! server's. `STATS` through the router answers the merged cluster line
//! (every counter summed across shards, plus `shards= shards_up=
//! shard_bytes= shard_evictions=` at the end); a dead shard fails fast
//! with `ERR shard down` on its keys only.

use mis2_graph::{suite, Scale};
use mis2_svc::{client::Client, client::PipelinedClient, client::V3Client, server, shard};

fn usage() -> ! {
    eprintln!(
        "usage: mis2svc serve  [--addr HOST:PORT] [--threads N] [--workers K]\n\
         \x20                     [--queue-cap N] [--scale tiny|small|paper]\n\
         \x20                     [--mem-budget BYTES[k|m|g]] [--max-inflight N]\n\
         \x20                     [--max-conns N] [--slow-ms MS]\n\
         \x20                     [--io-backend epoll|threads]\n\
         \x20      mis2svc route  --shard HOST:PORT [--shard HOST:PORT ...]\n\
         \x20                     [--addr HOST:PORT] [--max-inflight N] [--max-conns N]\n\
         \x20      mis2svc client --addr HOST:PORT REQUEST...\n\
         \x20      mis2svc workloads [--addr HOST:PORT --pipeline N [--proto v2|v3]]"
    );
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => cmd_serve(&argv[1..]),
        Some("route") => cmd_route(&argv[1..]),
        Some("client") => cmd_client(&argv[1..]),
        Some("workloads") => cmd_workloads(&argv[1..]),
        _ => usage(),
    }
}

/// A positive count. An explicit `0` is a usage error: it would silently
/// become the flag's default — or, for `--max-inflight`, a hello
/// advertising a window no client accepts — so the daemon refuses it up
/// front instead of serving with a value the operator didn't ask for.
fn parse_nonzero(flag: &str, s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(0) => {
            eprintln!("error: {flag} must be at least 1 (got 0)");
            usage();
        }
        Ok(v) => v,
        Err(_) => {
            eprintln!("error: {flag} expects a positive integer, got {s:?}");
            usage();
        }
    }
}

/// A count where `0` is a legal, meaningful value (`--slow-ms 0` =
/// capture every request) — unlike [`parse_nonzero`].
fn parse_u64(flag: &str, s: &str) -> u64 {
    s.parse::<u64>().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a non-negative integer, got {s:?}");
        usage()
    })
}

/// `--io-backend epoll|threads`. An explicit `epoll` on a host without
/// the syscall is refused up front (the config layer would silently
/// degrade a *defaulted* epoll to threads, but an operator who typed the
/// flag should learn the machine can't honor it).
fn parse_io_backend(s: &str) -> server::IoBackend {
    let backend: server::IoBackend = s.parse().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    if backend == server::IoBackend::Epoll && !cfg!(target_os = "linux") {
        eprintln!("error: --io-backend epoll is Linux-only; use --io-backend threads");
        usage();
    }
    backend
}

/// Byte count with an optional binary suffix: `4m` = 4 MiB, `200k`, `1g`.
/// `0` is legal here (documented as "unbounded"); overflow is not.
fn parse_bytes(flag: &str, s: &str) -> usize {
    let (digits, shift) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 20),
        Some(b'g' | b'G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    digits
        .parse::<usize>()
        .ok()
        .and_then(|v| v.checked_shl(shift).filter(|b| *b >> shift == v))
        .unwrap_or_else(|| {
            eprintln!("error: {flag} expects BYTES[k|m|g] within the machine's usize, got {s:?}");
            usage()
        })
}

fn cmd_serve(argv: &[String]) {
    let mut cfg = server::ServerConfig::default();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> &str {
            *i += 1;
            argv.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => cfg.addr = take(&mut i).to_string(),
            "--threads" => cfg.threads = parse_nonzero("--threads", take(&mut i)),
            "--workers" => cfg.workers = parse_nonzero("--workers", take(&mut i)),
            "--queue-cap" => cfg.queue_cap = parse_nonzero("--queue-cap", take(&mut i)),
            "--max-conns" => cfg.max_conns = parse_nonzero("--max-conns", take(&mut i)),
            "--mem-budget" => cfg.mem_budget = parse_bytes("--mem-budget", take(&mut i)),
            "--max-inflight" => cfg.max_inflight = parse_nonzero("--max-inflight", take(&mut i)),
            "--slow-ms" => cfg.slow_ms = parse_u64("--slow-ms", take(&mut i)),
            "--io-backend" => cfg.io_backend = parse_io_backend(take(&mut i)),
            "--scale" => cfg.scale = Scale::parse(take(&mut i)).unwrap_or_else(|| usage()),
            _ => usage(),
        }
        i += 1;
    }
    match server::serve(cfg) {
        Ok(handle) => {
            println!("mis2svc listening on {}", handle.addr());
            handle.wait();
        }
        Err(e) => {
            eprintln!("error: cannot serve: {e}");
            std::process::exit(1);
        }
    }
}

/// `route`: front N running `mis2svc serve` shards with the
/// consistent-hash router of [`shard::route`]. Prints the bound address
/// (`mis2svc routing on ADDR`) and serves until killed; every shard must
/// answer a v3 hello at startup, and the advertised downstream window is
/// clamped to the smallest shard window.
fn cmd_route(argv: &[String]) {
    let mut cfg = shard::RouterConfig::default();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> &str {
            *i += 1;
            argv.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => cfg.addr = take(&mut i).to_string(),
            "--shard" => cfg.shards.push(take(&mut i).to_string()),
            "--max-conns" => cfg.max_conns = parse_nonzero("--max-conns", take(&mut i)),
            "--max-inflight" => cfg.max_inflight = parse_nonzero("--max-inflight", take(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    if cfg.shards.is_empty() {
        eprintln!("error: route needs at least one --shard");
        usage();
    }
    match shard::route(cfg) {
        Ok(handle) => {
            println!("mis2svc routing on {}", handle.addr());
            handle.wait();
        }
        Err(e) => {
            eprintln!("error: cannot route: {e}");
            std::process::exit(1);
        }
    }
}

/// The sweep the CI smoke legs run: MIS2 + COARSEN 2 per suite workload
/// (Table II plus the R-MAT power-law extras), plus one solve per method.
fn sweep_lines() -> Vec<String> {
    let mut lines: Vec<String> = Vec::new();
    for w in suite::all_workloads() {
        lines.push(format!("MIS2 {}", w.name));
        lines.push(format!("COARSEN {} 2", w.name));
    }
    lines.push("SOLVE ecology2 cg".into());
    lines.push("SOLVE tmt_sym gmres".into());
    lines
}

/// `workloads`: list the suite graph names; with `--addr` + `--pipeline N`
/// run the full sweep through an N-deep window instead — a tagged-line v2
/// connection by default, a binary-frame v3 connection with `--proto v3` —
/// printing the responses in request order (tags stripped, frames rendered
/// back to text), byte-comparable to a sequential v1 sweep.
fn cmd_workloads(argv: &[String]) {
    let mut addr: Option<String> = None;
    let mut pipeline: Option<usize> = None;
    let mut proto = "v2".to_string();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> &str {
            *i += 1;
            argv.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--addr" => addr = Some(take(&mut i).to_string()),
            "--pipeline" => pipeline = Some(parse_nonzero("--pipeline", take(&mut i))),
            "--proto" => proto = take(&mut i).to_string(),
            _ => usage(),
        }
        i += 1;
    }
    let (addr, window) = match (addr, pipeline) {
        (None, None) => {
            for w in suite::all_workloads() {
                println!("{}", w.name);
            }
            return;
        }
        (Some(addr), Some(window)) => (addr, window),
        _ => usage(), // --addr and --pipeline only make sense together
    };
    let lines = sweep_lines();
    let (responses, latencies_ns) = match proto.as_str() {
        "v2" => {
            let mut client = PipelinedClient::connect(&addr, window).unwrap_or_else(|e| {
                eprintln!("error: cannot connect to {addr}: {e}");
                std::process::exit(1);
            });
            let responses = client.request_many(&lines).unwrap_or_else(|e| {
                eprintln!("error: pipelined sweep failed: {e}");
                std::process::exit(1);
            });
            let latencies = client.last_latencies_ns().to_vec();
            let _ = client.quit();
            (responses, latencies)
        }
        "v3" => {
            let mut client = V3Client::connect(&addr, window).unwrap_or_else(|e| {
                eprintln!("error: cannot connect to {addr}: {e}");
                std::process::exit(1);
            });
            let responses = client.request_many(&lines).unwrap_or_else(|e| {
                eprintln!("error: v3 sweep failed: {e}");
                std::process::exit(1);
            });
            let latencies = client.last_latencies_ns().to_vec();
            let _ = client.quit();
            (responses, latencies)
        }
        _ => usage(),
    };
    print_sweep_percentiles(&lines, &latencies_ns);
    let mut failed = false;
    for response in &responses {
        println!("{response}");
        failed |= !response.starts_with("OK ");
    }
    if failed {
        std::process::exit(1);
    }
}

/// Per-op client-observed p50/p95/p99 of the sweep, to **stderr** —
/// stdout stays byte-comparable across protocols (the CI smoke legs
/// sort+diff it), and timings would never diff clean.
fn print_sweep_percentiles(lines: &[String], latencies_ns: &[u64]) {
    for op in ["MIS2", "COARSEN", "SOLVE"] {
        let mut sample: Vec<u64> = lines
            .iter()
            .zip(latencies_ns)
            .filter(|(l, _)| l.split_whitespace().next() == Some(op))
            .map(|(_, ns)| *ns)
            .collect();
        if sample.is_empty() {
            continue;
        }
        sample.sort_unstable();
        let p = |q| mis2_svc::metrics::percentile_ns(&sample, q) / 1_000;
        eprintln!(
            "workloads/latency: op={op} n={} p50_us={} p95_us={} p99_us={}",
            sample.len(),
            p(0.50),
            p(0.95),
            p(0.99)
        );
    }
}

fn cmd_client(argv: &[String]) {
    let mut addr: Option<String> = None;
    let mut words: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                i += 1;
                addr = Some(argv.get(i).cloned().unwrap_or_else(|| usage()));
            }
            w => words.push(w),
        }
        i += 1;
    }
    let (Some(addr), false) = (addr, words.is_empty()) else {
        usage()
    };
    let request = words.join(" ");
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    match client.request(&request) {
        Ok(response) => {
            // A METRICS body arrives as one escaped line; print the real
            // multi-line exposition. Anything else prints verbatim. The
            // exit code keys off the original response either way.
            match response.strip_prefix("OK METRICS ") {
                Some(body) => println!("{}", mis2_svc::metrics::unescape_body(body)),
                None => println!("{response}"),
            }
            if !response.starts_with("OK ") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: request failed: {e}");
            std::process::exit(1);
        }
    }
}
