//! # mis2-svc — the graph-service subsystem
//!
//! Serves the workspace's MIS-2 / coarsening / solver operations to many
//! concurrent clients from one warm process, std-only. Three layers:
//!
//! * [`registry`] — loads or generates each graph once (suite workload
//!   names or `.mtx` paths, canonicalized), interns it behind
//!   `Arc<CsrGraph>`, and caches every derived artifact keyed by
//!   `(graph, op, params)`. Multilevel pipelines re-coarsen the same
//!   graphs over and over (Schulz, *Scalable Graph Algorithms*); the
//!   registry turns the repeats into cache hits. Both caches are
//!   **memory-bounded** (`--mem-budget`): approximate heap bytes are
//!   accounted per entry and segmented-LRU eviction (artifacts before
//!   graphs, pinned entries never) keeps the working set under the
//!   budget without changing a single response byte. Graph interning and
//!   artifact computes are both single-flight.
//! * [`sched`] — a bounded MPMC job queue drained by a few worker-leader
//!   threads, each running its job on a pool **sub-team**
//!   (`mis2_prim::pool` sub-team dispatch), so K concurrent jobs split the
//!   parked workers instead of serializing on one team. Per-job queue-wait
//!   and run-time statistics feed the `STATS` request.
//! * [`server`] / [`client`] — a loopback TCP server speaking the
//!   line-oriented protocol of [`proto`] (`MIS2 g`, `COARSEN g L`,
//!   `SOLVE g cg|gmres`, `STATS`, `PING`, `QUIT`), plus the matching
//!   blocking client.
//!
//! The determinism contract of the underlying algorithms lifts to the
//! service: a response is **bitwise-identical** to a direct library call,
//! for every client, concurrency level, sub-team size and backend —
//! `tests/svc_e2e.rs` at the workspace root asserts exactly that with 16
//! concurrent clients. [`ops`] is the single definition of each request's
//! semantics that both paths share.
//!
//! ```no_run
//! use mis2_svc::{client::Client, server};
//!
//! let handle = server::serve(server::ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let reply = client.request("MIS2 ecology2").unwrap();
//! assert!(reply.starts_with("OK MIS2 ecology2 size="));
//! handle.shutdown();
//! ```

pub mod client;
pub mod ops;
pub mod proto;
pub mod registry;
pub mod sched;
pub mod server;

pub use client::Client;
pub use ops::OpKey;
pub use proto::{GraphRef, Method, Request};
pub use registry::Registry;
pub use sched::{SchedConfig, Scheduler};
pub use server::{serve, ServerConfig, ServerHandle};
