//! # mis2-svc — the graph-service subsystem
//!
//! Serves the workspace's MIS-2 / coarsening / solver operations to many
//! concurrent clients from one warm process, std-only. Three layers:
//!
//! * [`registry`] — loads or generates each graph once (suite workload
//!   names or `.mtx` paths, canonicalized), interns it behind
//!   `Arc<CsrGraph>`, and caches every derived artifact keyed by
//!   `(graph, op, params)`. Multilevel pipelines re-coarsen the same
//!   graphs over and over (Schulz, *Scalable Graph Algorithms*); the
//!   registry turns the repeats into cache hits. Both caches are
//!   **memory-bounded** (`--mem-budget`): approximate heap bytes are
//!   accounted per entry and segmented-LRU eviction (artifacts before
//!   graphs, pinned entries never) keeps the working set under the
//!   budget without changing a single response byte. Graph interning and
//!   artifact computes are both single-flight.
//! * [`sched`] — a bounded MPMC job queue drained by a few worker-leader
//!   threads, each running its job on a pool **sub-team**
//!   (`mis2_prim::pool` sub-team dispatch), so K concurrent jobs split the
//!   parked workers instead of serializing on one team. The scheduler's
//!   primitive is **completion delivery** (`submit_with`): the leader that
//!   finishes a job hands the response to a callback instead of parking a
//!   waiter (blocking `submit` remains as a thin adapter). Per-job
//!   queue-wait and run-time statistics feed the `STATS` request.
//! * [`server`] / [`client`] — a loopback TCP server speaking the
//!   line-oriented protocol of [`proto`] (`MIS2 g`, `COARSEN g L`,
//!   `SOLVE g cg|gmres`, `STATS`, `PING`, `QUIT`). Connections start in
//!   blocking v1 framing; the `V2` hello upgrades to **pipelined tagged
//!   frames**: every request carries a client-chosen tag, the per-request
//!   reader keeps parsing while earlier jobs run (up to the
//!   `max_inflight` window), and a per-connection writer thread emits
//!   responses in *completion* order, tags letting the client reassemble.
//!   The `V3` hello upgrades instead to the **binary frame** protocol of
//!   [`codec`] — fixed 13-byte little-endian headers, response bytes
//!   interned in the registry and served zero-serialization on cache
//!   hits, and the per-connection writer coalescing each batch into one
//!   vectored write. [`client::Client`] is the blocking v1 client;
//!   [`client::PipelinedClient`] drives a v2 window and
//!   [`client::V3Client`] a v3 window, both with `request_many(..)`
//!   reassembling by tag. All three protocols mix freely on one server.
//!   Connections are fronted by one of two interchangeable **I/O
//!   backends** ([`IoBackend`], `--io-backend epoll|threads`): the
//!   portable thread-per-conn path (reader + writer thread each), or —
//!   default on Linux — the `evloop` readiness loop, one thread
//!   multiplexing every connection over raw `epoll` with an `eventfd`
//!   doorbell for scheduler completions. Both drive the same sans-I/O
//!   connection state machine in [`server`], so responses are
//!   bitwise-identical between backends; the epoll loop buys connection
//!   *scale* (thousands of idle clients cost an fd each, not threads —
//!   `tests/svc_c10k.rs` is the proof).
//! * [`metrics`] — full-stack request observability, recorded on every
//!   protocol: lock-free log2-bucket latency histograms per op ×
//!   outcome, per-stage spans (parse → probe → queue → run → write), a
//!   lock-free ring of the last 64 slow requests (`--slow-ms`), and the
//!   versioned `METRICS` text exposition that the router merges
//!   bucket-wise across a cluster ([`metrics::merge_expositions`]).
//! * [`shard`] — cluster scale: a consistent-hash [`shard::Ring`] over
//!   shard identities, the `mis2svc route` proxy ([`shard::route`])
//!   fronting N server processes with one pipelined v3 upstream per
//!   shard, tag remapping, fail-fast `ERR shard down` containment when a
//!   shard dies, and per-shard `STATS` merged into one cluster line
//!   ([`registry::merge_stats_bodies`]); [`client::ShardedClient`] is
//!   the client-side equivalent of the router.
//!
//! The determinism contract of the underlying algorithms lifts to the
//! service: a response's *payload* is **bitwise-identical** to a direct
//! library call, for every client, concurrency level, arrival order,
//! sub-team size and backend — `tests/svc_e2e.rs` and
//! `tests/svc_pipeline.rs` at the workspace root assert exactly that with
//! concurrent blocking and pipelined clients. [`ops`] is the single
//! definition of each request's semantics that both paths share.
//!
//! ```no_run
//! use mis2_svc::{client::Client, server};
//!
//! let handle = server::serve(server::ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let reply = client.request("MIS2 ecology2").unwrap();
//! assert!(reply.starts_with("OK MIS2 ecology2 size="));
//! handle.shutdown();
//! ```

pub mod client;
pub mod codec;
#[cfg(target_os = "linux")]
pub(crate) mod evloop;
pub mod metrics;
pub mod ops;
pub mod proto;
pub mod registry;
pub mod sched;
pub mod server;
pub mod shard;

pub use client::{Client, PipelinedClient, ShardedClient, V3Client};
pub use ops::OpKey;
pub use proto::{GraphRef, Method, Request};
pub use registry::Registry;
pub use sched::{SchedConfig, Scheduler};
pub use server::{serve, IoBackend, ServerConfig, ServerHandle};
pub use shard::{route, Ring, RouterConfig, RouterHandle};
