//! The loopback TCP server: accepts line-protocol connections and
//! multiplexes their compute requests onto the batching scheduler.
//!
//! One OS thread per connection reads request lines; `PING`/`STATS`/`QUIT`
//! are answered inline, compute requests are submitted to the shared
//! [`Scheduler`] (blocking the connection on the bounded queue when the
//! service is saturated — per-connection backpressure instead of unbounded
//! buffering). Responses preserve request order within a connection.

use crate::proto::{self, Request};
use crate::registry::Registry;
use crate::sched::{SchedConfig, Scheduler};
use mis2_graph::Scale;
use mis2_prim::pool;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the default — read
    /// the actual address from [`ServerHandle::addr`]).
    pub addr: String,
    /// Thread budget shared by concurrently running jobs (0 = all CPUs).
    pub threads: usize,
    /// Scheduler worker-leaders (0 = auto).
    pub workers: usize,
    /// Bounded job-queue capacity (0 = default).
    pub queue_cap: usize,
    /// Maximum concurrent connections; one past the cap is accepted only
    /// to be told `ERR server busy` and dropped (0 = 1024).
    pub max_conns: usize,
    /// Scale suite workloads are built at.
    pub scale: Scale,
    /// Registry memory budget in bytes (0 = unbounded): approximate heap
    /// bytes of interned graphs + cached artifacts; over-budget entries
    /// are evicted artifacts-first in LRU order (see [`Registry`]).
    pub mem_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            workers: 0,
            queue_cap: 0,
            max_conns: 0,
            scale: Scale::Tiny,
            mem_budget: 0,
        }
    }
}

/// Owned claim on one connection slot: releases the slot on drop, so the
/// count stays correct on every exit path — handler return, handler
/// *panic*, failed thread spawn, or an over-cap rejection. (Before this
/// guard, a panicking handler skipped its `fetch_sub` and each panic
/// permanently shrank the usable cap until the server wedged at 0.)
struct ConnSlot(Arc<AtomicUsize>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`] (the
/// `mis2svc` bin).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    sched: Arc<Scheduler>,
    registry: Arc<Registry>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared graph/artifact registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Block forever serving (the accept loop never returns on its own).
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting, stop the scheduler (in-flight jobs finish, queued
    /// ones are rejected, later submits get `ERR`), and join the accept
    /// thread. Connection handler threads exit as their clients
    /// disconnect; any still alive only ever see the shut-down scheduler.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.sched.shutdown();
    }
}

/// Bind and start serving in background threads.
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let registry = Arc::new(Registry::with_budget(cfg.scale, cfg.mem_budget));
    let sched = Arc::new(Scheduler::new(SchedConfig {
        threads: cfg.threads,
        workers: cfg.workers,
        queue_cap: cfg.queue_cap,
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let max_conns = if cfg.max_conns == 0 {
        1024
    } else {
        cfg.max_conns
    };
    let accept = {
        let registry = Arc::clone(&registry);
        let sched = Arc::clone(&sched);
        let stop = Arc::clone(&stop);
        let conns = Arc::new(AtomicUsize::new(0));
        std::thread::Builder::new()
            .name("mis2-svc-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else {
                        // Transient (often fd-exhaustion) accept failure:
                        // back off instead of spinning the core; existing
                        // connections keep their handler threads.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    };
                    // Claim the slot *first*, then check the claim against
                    // the cap. The old load-then-fetch_add shape is a
                    // TOCTOU: any concurrent decision based on the loaded
                    // value (or a future second acceptor) can land two
                    // accepts under one observed count and exceed the cap.
                    // A claimed slot travels as a drop guard so every
                    // path — over-cap rejection, spawn failure, handler
                    // return, handler panic — releases exactly once.
                    let claimed = conns.fetch_add(1, Ordering::AcqRel) + 1;
                    let slot = ConnSlot(Arc::clone(&conns));
                    if claimed > max_conns {
                        let _ = writeln!(stream, "{}", proto::err("server busy"));
                        continue; // drop the stream; `slot` releases the claim
                    }
                    let registry = Arc::clone(&registry);
                    let sched = Arc::clone(&sched);
                    // On spawn failure the closure (and `slot` inside it)
                    // is dropped by Builder::spawn, releasing the claim.
                    let _ = std::thread::Builder::new()
                        .name("mis2-svc-conn".into())
                        .spawn(move || {
                            let _slot = slot;
                            let _ = handle_connection(stream, &registry, &sched);
                        });
                }
            })?
    };
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        sched,
        registry,
    })
}

/// Serve one connection until EOF, error, or `QUIT`.
fn handle_connection(
    stream: TcpStream,
    registry: &Arc<Registry>,
    sched: &Scheduler,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        // Test-only fault injection: lets the unit tests prove a panicking
        // handler thread still releases its connection slot (drop guard).
        #[cfg(test)]
        if trimmed == "PANIC" {
            panic!("injected connection-handler panic (test hook)");
        }
        let response = match Request::parse(trimmed) {
            Err(e) => proto::err(&e),
            Ok(Request::Ping) => proto::ok("PONG"),
            Ok(Request::Quit) => {
                writeln!(writer, "{}", proto::ok("BYE"))?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Stats) => proto::ok(&stats_body(registry, sched)),
            Ok(req) => {
                // Compute request: batch it onto the scheduler and block
                // this connection until its response line is ready.
                let registry = Arc::clone(registry);
                sched
                    .submit(Box::new(move || crate::ops::execute(&registry, &req)))
                    .wait()
            }
        };
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
}

/// The `STATS` response body: registry, scheduler and pool counters.
fn stats_body(registry: &Registry, sched: &Scheduler) -> String {
    let r = registry.stats();
    let s = sched.stats();
    format!(
        "STATS graphs={} artifacts={} hits={} misses={} bytes={} mem_budget={} evictions={} \
         graph_builds={} jobs={} queue_wait_us={} run_us={} \
         panics={} workers={} team={} pool_spawned={} pool_contended={}",
        r.graphs,
        r.artifacts,
        r.hits,
        r.misses,
        r.bytes,
        r.mem_budget,
        r.evictions,
        r.graph_builds,
        s.jobs.load(Ordering::Relaxed),
        s.queue_wait_us.load(Ordering::Relaxed),
        s.run_us.load(Ordering::Relaxed),
        s.panics.load(Ordering::Relaxed),
        sched.workers(),
        sched.team(),
        pool::spawned_workers(),
        pool::contended_regions(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn ping_stats_quit_roundtrip() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        let stats = c.request("STATS").unwrap();
        assert!(stats.starts_with("OK STATS graphs=0"), "{stats}");
        assert_eq!(c.request("QUIT").unwrap(), "OK BYE");
        h.shutdown();
    }

    #[test]
    fn malformed_lines_get_err_and_connection_survives() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert!(c.request("NONSENSE").unwrap().starts_with("ERR "));
        assert!(c.request("COARSEN g 0").unwrap().starts_with("ERR "));
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        h.shutdown();
    }

    #[test]
    fn connections_beyond_cap_get_busy_and_dropped() {
        let h = serve(ServerConfig {
            max_conns: 1,
            ..Default::default()
        })
        .unwrap();
        let mut first = Client::connect(h.addr()).unwrap();
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        // Second connection is over the cap: it gets the busy line (read
        // raw — request() would also succeed, but the connection then
        // closes) and the first connection keeps working.
        {
            use std::io::{BufRead, BufReader};
            let s = std::net::TcpStream::connect(h.addr()).unwrap();
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "ERR server busy");
        }
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        first.quit().unwrap();
        h.shutdown();
    }

    /// Read the single `ERR server busy` line an over-cap connection gets.
    fn read_busy_line(addr: std::net::SocketAddr) -> String {
        let s = std::net::TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn over_cap_rejection_releases_its_claimed_slot() {
        // Claim-then-verify accounting: a rejected connection must give
        // its claimed slot back, or every rejection would permanently
        // shrink the cap. Reject many times at cap 1, then free the slot
        // and verify a new connection is accepted.
        let h = serve(ServerConfig {
            max_conns: 1,
            ..Default::default()
        })
        .unwrap();
        let mut first = Client::connect(h.addr()).unwrap();
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        for _ in 0..8 {
            assert_eq!(read_busy_line(h.addr()), "ERR server busy");
        }
        first.quit().unwrap();
        // The freed slot must become claimable again (the handler exits
        // asynchronously after QUIT, so poll briefly).
        let mut ok = false;
        for _ in 0..100 {
            let mut c = Client::connect(h.addr()).unwrap();
            if matches!(c.request("PING").as_deref(), Ok("OK PONG")) {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ok, "slot never became claimable after rejections + QUIT");
        h.shutdown();
    }

    #[test]
    fn panicking_handler_releases_its_connection_slot() {
        // A handler thread that panics mid-connection must still release
        // its slot via the drop guard; before the guard, each panic
        // skipped the decrement and wedged the server at the cap.
        let h = serve(ServerConfig {
            max_conns: 1,
            ..Default::default()
        })
        .unwrap();
        // Each round must reclaim the single slot the previous round's
        // panicked handler held (its release is asynchronous: poll). If a
        // panic leaked the slot, every later round sees only `server busy`
        // and the poll below exhausts — the pre-guard wedge.
        for round in 0..3 {
            let mut reclaimed = false;
            for _ in 0..200 {
                let mut c = Client::connect(h.addr()).unwrap();
                if matches!(c.request("PING").as_deref(), Ok("OK PONG")) {
                    // The injected panic kills the handler before it can
                    // respond: the client sees EOF/reset, the slot must
                    // still come back for the next round.
                    let _ = c.request("PANIC");
                    reclaimed = true;
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(
                reclaimed,
                "round {round}: slot leaked by a panicking handler; server wedged at cap"
            );
        }
        h.shutdown();
    }

    #[test]
    fn mem_budget_threads_through_to_the_registry() {
        let h = serve(ServerConfig {
            mem_budget: 123_456,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(h.registry().mem_budget(), 123_456);
        let mut c = Client::connect(h.addr()).unwrap();
        let stats = c.request("STATS").unwrap();
        assert!(stats.contains("mem_budget=123456"), "{stats}");
        h.shutdown();
    }

    #[test]
    fn compute_request_served_and_cached() {
        let h = serve(ServerConfig {
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        let first = c.request("MIS2 ecology2").unwrap();
        assert!(first.starts_with("OK MIS2 ecology2 size="), "{first}");
        let second = c.request("MIS2 ecology2").unwrap();
        assert_eq!(first, second, "cache hit must be byte-identical");
        let stats = c.request("STATS").unwrap();
        assert!(stats.contains("hits=1 misses=1"), "{stats}");
        h.shutdown();
    }
}
