//! The loopback TCP server: accepts line-protocol (v1/v2) and binary
//! (v3) connections and pipelines their compute requests through the
//! batching scheduler.
//!
//! # One state machine, two I/O backends
//!
//! Protocol behavior lives in ONE place — the shared **connection state
//! machine** ([`FrameDecoder`] + [`ConnMachine`]): hello negotiation
//! (`V2`/`V3` upgrades), v1/v2 line framing and v3 binary framing,
//! per-request window-slot accounting, inline `PING`/`STATS`/`METRICS`,
//! the v3 zero-serialization cache probe and hot-key parse memo, parse
//! and framing errors, and the draining `QUIT`. The machine is sans-I/O:
//! it consumes framed items extracted from a byte buffer and emits
//! effects through the small [`ConnIo`] seam (acquire a window slot,
//! enqueue a response, mint a [`CompletionSink`] for a scheduler
//! completion). Two backends drive it ([`ServerConfig::io_backend`]):
//!
//! * **threads** (this module; the portable fallback and the only
//!   backend off Linux) — a **reader** thread per connection feeds the
//!   machine from blocking reads, and a **writer** thread joined by a
//!   bounded response channel retires batches; scheduler completions
//!   send into the channel.
//! * **epoll** (the [`crate::evloop`] module; the Linux default) — one
//!   nonblocking readiness loop drives every connection's machine from
//!   `epoll` events; scheduler completions post to a per-loop `eventfd`
//!   and become write-readiness work instead of channel sends.
//!
//! Both backends produce **bitwise-identical** wire bytes for every
//! request — the e2e suites assert it — because every response byte is
//! rendered by the shared machine and the shared batch encoder.
//!
//! # The threads backend
//!
//! Each connection gets a **reader** thread (the handler) and a **writer**
//! thread joined by a bounded response channel. The reader parses request
//! lines (or, after the `V3` hello, binary frames — see [`crate::codec`])
//! and keeps going while earlier jobs run: `PING`/`STATS` are answered
//! inline (never queued behind compute), `QUIT` drains and says goodbye,
//! and compute requests are submitted to the shared [`Scheduler`] in
//! completion mode — the worker-leader that finishes a job pushes its
//! response straight into the writer channel, so responses are written in
//! *completion* order (tagged, on v2/v3 connections, so the client can
//! reassemble; v1 connections cap the window at 1, which preserves the
//! classic request-order contract). On v3 connections a request whose
//! serialized response bytes are already interned in the [`Registry`]
//! never touches the scheduler at all: the reader probes
//! [`Registry::try_response`] and forwards the shared bytes directly —
//! the zero-serialization fast path.
//!
//! The writer is a **batcher**: it drains the response channel greedily
//! and flushes everything it found with one coalesced vectored write, so
//! a window's worth of responses retires in O(syscalls), not
//! O(responses). Interned v3 response bytes are written straight from
//! their `Arc` — a cache hit is a 13-byte header stamp plus an iovec
//! entry pointing at the registry's bytes.
//!
//! Backpressure is layered: a per-connection in-flight **window**
//! ([`ServerConfig::max_inflight`]) stops the reader when too many
//! responses are outstanding, and the scheduler's bounded queue stops it
//! globally when the whole service is saturated. The window-slot protocol
//! also guarantees scheduler completions never block on the response
//! channel: a slot is acquired per request before anything may be sent,
//! and released by the writer only after the response leaves the channel
//! (per batch, after its write — every channel item's slot is still held,
//! so occupancy can never reach capacity (= the window cap) while a send
//! is in flight). Teardown (EOF, error, `QUIT`, over-long line) drops the
//! reader's sender and joins the writer, which drains every in-flight
//! completion — nothing leaks the connection slot and nothing wedges the
//! scheduler.

use crate::codec;
use crate::metrics::{self, Metrics};
use crate::ops;
use crate::proto::{self, Request};
use crate::registry::{Registry, RespBytes};
use crate::sched::{SchedConfig, Scheduler};
use mis2_graph::Scale;
use mis2_prim::pool;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Which I/O engine drives connections. Both backends run the same
/// connection state machine and produce bitwise-identical wire bytes;
/// they differ only in how readiness and completion delivery are
/// scheduled (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// One nonblocking `epoll` readiness loop for every connection
    /// (Linux only; falls back to [`IoBackend::Threads`] elsewhere).
    Epoll,
    /// Reader + writer thread per connection — the portable fallback.
    Threads,
}

impl IoBackend {
    /// The default backend for this platform: epoll where the kernel has
    /// it, threads everywhere else.
    pub fn platform_default() -> IoBackend {
        if cfg!(target_os = "linux") {
            IoBackend::Epoll
        } else {
            IoBackend::Threads
        }
    }

    /// The backend that will actually run: requesting epoll off Linux
    /// silently degrades to threads (the `mis2svc` bin additionally
    /// rejects an *explicit* `--io-backend epoll` there, so silent
    /// degradation only happens for defaulted configs).
    pub fn effective(self) -> IoBackend {
        if cfg!(target_os = "linux") {
            self
        } else {
            IoBackend::Threads
        }
    }

    /// Stable lowercase name, as accepted by `--io-backend` and reported
    /// in the `STATS` tail (`io_backend=`).
    pub fn name(self) -> &'static str {
        match self {
            IoBackend::Epoll => "epoll",
            IoBackend::Threads => "threads",
        }
    }
}

impl Default for IoBackend {
    fn default() -> Self {
        IoBackend::platform_default()
    }
}

impl std::str::FromStr for IoBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<IoBackend, String> {
        match s {
            "epoll" => Ok(IoBackend::Epoll),
            "threads" => Ok(IoBackend::Threads),
            other => Err(format!("unknown io backend: {other} (epoll|threads)")),
        }
    }
}

impl std::fmt::Display for IoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the default — read
    /// the actual address from [`ServerHandle::addr`]).
    pub addr: String,
    /// Thread budget shared by concurrently running jobs (0 = all CPUs).
    pub threads: usize,
    /// Scheduler worker-leaders (0 = auto).
    pub workers: usize,
    /// Bounded job-queue capacity (0 = default).
    pub queue_cap: usize,
    /// Maximum concurrent connections; one past the cap is accepted only
    /// to be told `ERR server busy` and dropped (0 = 1024).
    pub max_conns: usize,
    /// Scale suite workloads are built at.
    pub scale: Scale,
    /// Registry memory budget in bytes (0 = unbounded): approximate heap
    /// bytes of interned graphs + cached artifacts; over-budget entries
    /// are evicted artifacts-first in LRU order (see [`Registry`]).
    pub mem_budget: usize,
    /// Per-connection in-flight window: how many requests a pipelined
    /// v2/v3 connection may have outstanding (accepted but response not
    /// yet written) before its reader stops accepting more (0 = 64). v1
    /// connections always run with a window of 1.
    pub max_inflight: usize,
    /// Requests whose total latency (read-complete → write-retired)
    /// meets or exceeds this many milliseconds are captured into the
    /// metrics slow-request ring. 0 captures *every* request (useful
    /// for smoke tests); the default is 500.
    pub slow_ms: u64,
    /// Record per-request metrics (latency histograms, stage spans, the
    /// slow ring). On by default; `benches/svc_pipeline.rs` turns it
    /// off on a second server to A/B the recording overhead.
    pub metrics: bool,
    /// The I/O engine driving connections (`--io-backend`). Defaults to
    /// [`IoBackend::platform_default`]; requesting epoll off Linux runs
    /// threads instead (see [`IoBackend::effective`]).
    pub io_backend: IoBackend,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            workers: 0,
            queue_cap: 0,
            max_conns: 0,
            scale: Scale::Tiny,
            mem_budget: 0,
            max_inflight: 0,
            slow_ms: 500,
            metrics: true,
            io_backend: IoBackend::platform_default(),
        }
    }
}

/// Service-wide wire counters for the pipelined protocol, surfaced through
/// `STATS` next to the scheduler's job counters.
#[derive(Debug, Default)]
pub struct SvcStats {
    /// Requests accepted whose response has not yet been written, summed
    /// over all connections (the `STATS` line subtracts the in-progress
    /// `STATS` request itself, so an idle server reports 0).
    pub inflight: AtomicU64,
    /// Deepest per-connection window ever observed.
    pub peak_inflight: AtomicU64,
    /// Coalesced writer flushes: each is one batch of responses retired
    /// with a single vectored-write loop (≥ 1 response per batch; deep
    /// windows drive this far below the response count).
    pub writev_batches: AtomicU64,
    /// Response bytes written to sockets, summed over all connections.
    pub bytes_tx: AtomicU64,
}

/// Owned claim on one connection slot: releases the slot on drop, so the
/// count stays correct on every exit path — handler return, handler
/// *panic*, failed thread spawn, or an over-cap rejection. (Before this
/// guard, a panicking handler skipped its `fetch_sub` and each panic
/// permanently shrank the usable cap until the server wedged at 0.)
///
/// A slot may additionally be *tracked* in a [`ConnTable`]: the same drop
/// guard then also deregisters the connection's socket, so the live-socket
/// table and the slot count can never disagree — the property
/// [`ServerHandle::kill`] (and the shard router's accounting) relies on.
pub(crate) struct ConnSlot {
    conns: Arc<AtomicUsize>,
    tracked: Option<(Arc<ConnTable>, u64)>,
}

impl ConnSlot {
    pub(crate) fn new(conns: Arc<AtomicUsize>) -> ConnSlot {
        ConnSlot {
            conns,
            tracked: None,
        }
    }

    /// Register `stream` in `table` and tie its deregistration to this
    /// guard's drop. A failed `try_clone` (fd exhaustion) just leaves the
    /// connection untracked — `kill()` then can't hard-close it, but slot
    /// accounting is unaffected.
    pub(crate) fn track(mut self, table: &Arc<ConnTable>, stream: &TcpStream) -> ConnSlot {
        if let Some(id) = table.register(stream) {
            self.tracked = Some((Arc::clone(table), id));
        }
        self
    }
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        if let Some((table, id)) = self.tracked.take() {
            table.deregister(id);
        }
        self.conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Sockets of every live connection, keyed by an id minted at accept.
/// Entries leave through the owning [`ConnSlot`]'s drop, so the table
/// tracks exactly the connections still holding a slot; [`kill_all`]
/// hard-closes whatever is left so handler threads unblock from their
/// reads and wind down.
///
/// [`kill_all`]: ConnTable::kill_all
#[derive(Default)]
pub(crate) struct ConnTable {
    next: AtomicU64,
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
}

impl ConnTable {
    pub(crate) fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().unwrap().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().unwrap().remove(&id);
    }

    pub(crate) fn kill_all(&self) {
        for (_, stream) in self.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`] (the
/// `mis2svc` bin).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    sched: Arc<Scheduler>,
    registry: Arc<Registry>,
    svc_stats: Arc<SvcStats>,
    metrics: Arc<Metrics>,
    conn_table: Arc<ConnTable>,
    io_backend: IoBackend,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The I/O backend actually driving connections (after the
    /// off-Linux fallback).
    pub fn io_backend(&self) -> IoBackend {
        self.io_backend
    }

    /// The shared graph/artifact registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The service-wide wire counters (in-flight window gauges).
    pub fn svc_stats(&self) -> &Arc<SvcStats> {
        &self.svc_stats
    }

    /// The request-observability registry (histograms, slow ring).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Block forever serving (the accept loop never returns on its own).
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting, stop the scheduler (in-flight jobs finish, queued
    /// ones are rejected, later submits get `ERR`), and join the accept
    /// thread. Connection handler threads exit as their clients
    /// disconnect; any still alive only ever see the shut-down scheduler.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.sched.shutdown();
    }

    /// Hard stop, simulating a crashed shard process in-process: stop
    /// accepting, then `shutdown(Both)` every live connection socket so
    /// handler reads hit EOF and in-flight peers (the shard router among
    /// them) see the connection die mid-window instead of winding down
    /// cleanly. Used by the kill-one-shard tests; a standalone `mis2svc`
    /// process gets the same effect from SIGKILL.
    pub fn kill(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.conn_table.kill_all();
        self.sched.shutdown();
    }
}

/// Everything a connection's state machine needs from the server:
/// shared services, the service-wide gauges, the live-connection count
/// (for the `STATS` tail), and the resolved limits. One `Arc<ConnShared>`
/// per server, shared by every connection on either backend.
pub(crate) struct ConnShared {
    pub(crate) registry: Arc<Registry>,
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) stats: Arc<SvcStats>,
    pub(crate) mx: Arc<Metrics>,
    /// Live connection-slot claims (the `--max-conns` counter).
    pub(crate) conns: Arc<AtomicUsize>,
    pub(crate) max_inflight: usize,
    pub(crate) backend: IoBackend,
}

/// Record a connection-level failure (over-cap `ERR server busy`, accept
/// error) into the metrics registry as an `other` × `error` outcome —
/// these never travel the request path, so without this they would be
/// invisible to `METRICS`.
pub(crate) fn record_conn_error(mx: &Metrics, key: &str) {
    if !mx.enabled() {
        return;
    }
    let now = Instant::now();
    if let Some(span) =
        metrics::Span::fast(Some(now), metrics::Op::Other, metrics::Outcome::Error, key)
    {
        mx.record(&span, now);
    }
}

/// Bind and start serving in background threads.
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let registry = Arc::new(Registry::with_budget(cfg.scale, cfg.mem_budget));
    let sched = Arc::new(Scheduler::new(SchedConfig {
        threads: cfg.threads,
        workers: cfg.workers,
        queue_cap: cfg.queue_cap,
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let svc_stats = Arc::new(SvcStats::default());
    let mx = Arc::new(if cfg.metrics {
        Metrics::new(cfg.slow_ms)
    } else {
        Metrics::disabled(cfg.slow_ms)
    });
    let max_conns = if cfg.max_conns == 0 {
        1024
    } else {
        cfg.max_conns
    };
    let max_inflight = if cfg.max_inflight == 0 {
        64
    } else {
        cfg.max_inflight
    };
    let conn_table = Arc::new(ConnTable::default());
    let backend = cfg.io_backend.effective();
    let cx = Arc::new(ConnShared {
        registry: Arc::clone(&registry),
        sched: Arc::clone(&sched),
        stats: Arc::clone(&svc_stats),
        mx: Arc::clone(&mx),
        conns: Arc::new(AtomicUsize::new(0)),
        max_inflight,
        backend,
    });
    let accept = match backend {
        #[cfg(target_os = "linux")]
        IoBackend::Epoll => crate::evloop::spawn(
            listener,
            Arc::clone(&cx),
            Arc::clone(&stop),
            Arc::clone(&conn_table),
            max_conns,
        )?,
        #[cfg(not(target_os = "linux"))]
        IoBackend::Epoll => unreachable!("IoBackend::effective falls back to threads off Linux"),
        IoBackend::Threads => spawn_threads_accept(
            listener,
            Arc::clone(&cx),
            Arc::clone(&stop),
            Arc::clone(&conn_table),
            max_conns,
        )?,
    };
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        sched,
        registry,
        svc_stats,
        metrics: mx,
        conn_table,
        io_backend: backend,
    })
}

/// The thread-per-connection accept loop: one blocking `accept`, one
/// handler (reader) thread and one writer thread per admitted connection.
fn spawn_threads_accept(
    listener: TcpListener,
    cx: Arc<ConnShared>,
    stop: Arc<AtomicBool>,
    conn_table: Arc<ConnTable>,
    max_conns: usize,
) -> io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("mis2-svc-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else {
                    // Transient (often fd-exhaustion) accept failure:
                    // back off instead of spinning the core; existing
                    // connections keep their handler threads.
                    record_conn_error(&cx.mx, "accept");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                };
                // Pipelined responses are many small back-to-back
                // writes; without TCP_NODELAY, Nagle + delayed ACK
                // stalls each batch ~40ms (v1's strict ping-pong
                // never tripped this). The writer's batched vectored
                // writes already coalesce per-batch, so disabling
                // Nagle costs nothing on large responses.
                let _ = stream.set_nodelay(true);
                // Claim the slot *first*, then check the claim against
                // the cap. The old load-then-fetch_add shape is a
                // TOCTOU: any concurrent decision based on the loaded
                // value (or a future second acceptor) can land two
                // accepts under one observed count and exceed the cap.
                // A claimed slot travels as a drop guard so every
                // path — over-cap rejection, spawn failure, handler
                // return, handler panic — releases exactly once.
                let claimed = cx.conns.fetch_add(1, Ordering::AcqRel) + 1;
                let slot = ConnSlot::new(Arc::clone(&cx.conns));
                if claimed > max_conns {
                    record_conn_error(&cx.mx, "busy");
                    let _ = writeln!(stream, "{}", proto::err("server busy"));
                    continue; // drop the stream; `slot` releases the claim
                }
                // Only admitted connections enter the kill table; the
                // same drop guard that releases the slot deregisters
                // the socket, so table and count stay in lockstep.
                let slot = slot.track(&conn_table, &stream);
                let cx = Arc::clone(&cx);
                // On spawn failure the closure (and `slot` inside it)
                // is dropped by Builder::spawn, releasing the claim.
                let _ = std::thread::Builder::new()
                    .name("mis2-svc-conn".into())
                    .spawn(move || {
                        let _slot = slot;
                        let _ = handle_connection(stream, &cx);
                    });
            }
        })
}

/// Per-connection in-flight window: counts requests accepted whose
/// response has not yet been written to the socket. The reader acquires a
/// slot per request (blocking at the cap — that is the per-connection
/// backpressure); the writer releases a slot per response it dequeues.
///
/// The slot protocol is what makes scheduler completions safe: a
/// completion only ever sends while its request's slot is held, and the
/// response channel's capacity equals the window cap, so occupancy is
/// always strictly below capacity at the moment of a send — completions
/// (which run on scheduler worker-leaders) can never block on a full
/// channel, no matter how slow or dead the client is.
pub(crate) struct ConnWindow {
    inflight: Mutex<usize>,
    changed: Condvar,
}

impl ConnWindow {
    pub(crate) fn new() -> ConnWindow {
        ConnWindow {
            inflight: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    /// Block until the window has room under `cap`, then take a slot.
    /// Returns the depth after acquisition (for peak tracking).
    fn acquire(&self, cap: usize) -> usize {
        let mut n = self.inflight.lock().unwrap();
        while *n >= cap {
            n = self.changed.wait(n).unwrap();
        }
        *n += 1;
        *n
    }

    fn release(&self) {
        let mut n = self.inflight.lock().unwrap();
        *n -= 1;
        self.changed.notify_all();
    }

    /// Block until every outstanding response has been written (used by
    /// `QUIT` so `BYE` is the last line on the wire).
    pub(crate) fn wait_empty(&self) {
        let mut n = self.inflight.lock().unwrap();
        while *n > 0 {
            n = self.changed.wait(n).unwrap();
        }
    }
}

/// One response travelling from the reader (inline answers) or a
/// scheduler completion into the connection's writer: the wire payload
/// plus the request's metrics span (if recording), which the writer
/// retires after the bytes hit the socket.
pub(crate) struct Outgoing {
    pub(crate) payload: Payload,
    pub(crate) span: Option<metrics::Span>,
}

/// The wire form of one outgoing response.
pub(crate) enum Payload {
    /// A v1/v2 text line, written with a trailing `\n`.
    Line(String),
    /// A v3 response: 13-byte binary header stamped by the writer,
    /// payload either rendered text or interned registry bytes (written
    /// straight from the shared `Arc` — zero copy, zero serialization).
    Frame { tag: u64, resp: ops::Response },
}

/// One contiguous byte range of a writer batch: either a span of the
/// batch's scratch buffer (headers, text lines) or one interned response
/// body borrowed from the registry.
pub(crate) enum Piece {
    Scratch { off: usize, len: usize },
    Shared(usize),
}

/// Append one outgoing response to the batch under construction. Scratch
/// spans are recorded as offsets (the buffer may still reallocate while
/// the batch grows — slices are materialized only at write time), and
/// adjacent scratch spans are merged so a batch of text responses
/// coalesces into few iovecs.
fn encode_outgoing(
    item: Payload,
    scratch: &mut Vec<u8>,
    pieces: &mut Vec<Piece>,
    shared: &mut Vec<Arc<RespBytes>>,
) {
    fn push_scratch(pieces: &mut Vec<Piece>, off: usize, len: usize) {
        if let Some(Piece::Scratch { off: po, len: pl }) = pieces.last_mut() {
            if *po + *pl == off {
                *pl += len;
                return;
            }
        }
        pieces.push(Piece::Scratch { off, len });
    }
    match item {
        Payload::Line(line) => {
            let off = scratch.len();
            scratch.extend_from_slice(line.as_bytes());
            scratch.push(b'\n');
            push_scratch(pieces, off, scratch.len() - off);
        }
        Payload::Frame { tag, resp } => {
            // An over-MAX_PAYLOAD body cannot be framed: the header's u32
            // length would truncate (or advertise a length the peer
            // rejects as Oversized and poisons the connection on). Swap
            // in a per-tag ERR so only this request fails and the stream
            // stays framed.
            let resp = if resp.body_bytes().len() > codec::MAX_PAYLOAD {
                ops::Response::err("response too large")
            } else {
                resp
            };
            let (status, body) = resp.into_parts();
            match body {
                ops::Body::Text(text) => {
                    let off = scratch.len();
                    let hdr = codec::encode_header(tag, text.len() as u32, status);
                    scratch.extend_from_slice(&hdr);
                    scratch.extend_from_slice(text.as_bytes());
                    push_scratch(pieces, off, scratch.len() - off);
                }
                ops::Body::Interned(bytes) => {
                    let off = scratch.len();
                    let hdr = codec::encode_header(tag, bytes.body.len() as u32, status);
                    scratch.extend_from_slice(&hdr);
                    push_scratch(pieces, off, codec::HEADER_LEN);
                    pieces.push(Piece::Shared(shared.len()));
                    shared.push(bytes);
                }
            }
        }
    }
}

/// Cap on iovecs handed to one `write_vectored` call — comfortably under
/// every platform's `IOV_MAX` (POSIX guarantees ≥ 16; Linux allows 1024).
pub(crate) const MAX_IOVECS: usize = 64;

/// Write every span, in order, with as few syscalls as the kernel allows:
/// up to [`MAX_IOVECS`] spans per vectored write, resuming after partial
/// writes. Returns the total bytes written.
fn write_all_spans(w: &mut TcpStream, spans: &[&[u8]]) -> io::Result<usize> {
    let mut total = 0usize;
    let mut idx = 0; // first span not yet fully written
    let mut offset = 0; // bytes of spans[idx] already written
    let mut bufs: Vec<IoSlice<'_>> = Vec::with_capacity(spans.len().min(MAX_IOVECS));
    while idx < spans.len() {
        bufs.clear();
        bufs.push(IoSlice::new(&spans[idx][offset..]));
        for s in spans[idx + 1..].iter().take(MAX_IOVECS - 1) {
            bufs.push(IoSlice::new(s));
        }
        let n = match w.write_vectored(&bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes of a response batch",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        total += n;
        let mut advanced = n;
        while idx < spans.len() {
            let remaining = spans[idx].len() - offset;
            if advanced >= remaining {
                advanced -= remaining;
                idx += 1;
                offset = 0;
            } else {
                offset += advanced;
                break;
            }
        }
    }
    Ok(total)
}

/// Peel one channel item into the batch under construction: the span
/// (if any) is parked until the batch's write retires, the payload is
/// encoded into the scratch/pieces/shared triple.
pub(crate) fn stage_outgoing(
    item: Outgoing,
    scratch: &mut Vec<u8>,
    pieces: &mut Vec<Piece>,
    shared: &mut Vec<Arc<RespBytes>>,
    spans: &mut Vec<metrics::Span>,
) {
    if let Some(span) = item.span {
        spans.push(span);
    }
    encode_outgoing(item.payload, scratch, pieces, shared);
}

/// The writer half of a connection: drains the bounded response channel
/// in greedy batches — one blocking `recv`, then everything `try_recv`
/// yields — encodes the whole batch (text lines and/or binary frames),
/// and retires it with one coalesced vectored-write loop. Window slots
/// are released per batch *after* its write, which both preserves the
/// completion-send safety argument (every channel item's slot is still
/// held) and keeps `QUIT`'s drain honest (`wait_empty` cannot pass until
/// the bytes are on the socket). Responses already queued behind a broken
/// socket are still dequeued and their slots released, so the reader and
/// in-flight completions wind down instead of wedging.
///
/// On the first write failure the whole socket is shut down: the reader
/// may be parked in a read happily accepting new requests for a client
/// that can no longer receive a byte, and the shutdown is what turns its
/// next read into EOF so the connection winds down instead of burning
/// scheduler compute on undeliverable responses.
pub(crate) fn writer_loop(
    rx: Receiver<Outgoing>,
    stream: TcpStream,
    win: &ConnWindow,
    stats: &SvcStats,
    mx: Option<&Metrics>,
) {
    let mut out = stream;
    let mut broken = false;
    let mut scratch: Vec<u8> = Vec::new();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut shared: Vec<Arc<RespBytes>> = Vec::new();
    let mut spans: Vec<metrics::Span> = Vec::new();
    let mut disconnected = false;
    while !disconnected {
        // Park until the next response (or until every sender is gone,
        // which is the teardown signal).
        let Ok(first) = rx.recv() else { break };
        scratch.clear();
        pieces.clear();
        shared.clear();
        spans.clear();
        let mut batch = 1usize;
        stage_outgoing(first, &mut scratch, &mut pieces, &mut shared, &mut spans);
        loop {
            match rx.try_recv() {
                Ok(next) => {
                    batch += 1;
                    stage_outgoing(next, &mut scratch, &mut pieces, &mut shared, &mut spans);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // Retire the batch from the in-flight *gauge* before the write:
        // a client that has read its last response (e.g. BYE) must not
        // observe a stale non-zero gauge just because this thread hasn't
        // run its post-write bookkeeping yet. The window slots — the
        // accounting QUIT's drain actually waits on — are still released
        // only after the bytes are on the socket.
        stats.inflight.fetch_sub(batch as u64, Ordering::Relaxed);
        if !broken {
            let wire_spans: Vec<&[u8]> = pieces
                .iter()
                .filter_map(|p| {
                    let s: &[u8] = match p {
                        Piece::Scratch { off, len } => &scratch[*off..*off + *len],
                        Piece::Shared(i) => &shared[*i].body,
                    };
                    (!s.is_empty()).then_some(s)
                })
                .collect();
            match write_all_spans(&mut out, &wire_spans) {
                Ok(n) => {
                    stats.writev_batches.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_tx.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(_) => {
                    broken = true;
                    let _ = out.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        if broken {
            // Responses that never reached the socket drop their spans
            // unrecorded: the client never observed them, so the
            // histograms don't either.
            spans.clear();
        }
        for _ in 0..batch {
            win.release();
        }
        // Retire the batch's metric spans with ONE clock read as the
        // shared write-retired stamp — per-response clocks would put a
        // syscall-ish cost back on the path the batching exists to
        // amortize; the batch form also coalesces runs of identical
        // cache hits into single histogram adds. Recording runs *after*
        // the window slots are released so it overlaps with the
        // reader's next burst instead of gating admission.
        if let Some(m) = mx {
            if !spans.is_empty() {
                m.record_batch(&mut spans, Instant::now());
            }
        }
    }
}

/// How bytes on the wire are framed right now: newline-terminated lines
/// (v1 and v2) or 13-byte-header binary frames (after the `V3` hello).
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum WireMode {
    Lines,
    Frames,
}

/// One framed inbound item extracted from a connection's byte stream,
/// borrowing the decoder's buffer (zero copy).
pub(crate) enum Inbound<'a> {
    /// A complete line, terminating newline stripped (a trailing `\r`
    /// stays attached — the machine trims it, as the old reader did).
    Line(&'a [u8]),
    /// More than [`proto::MAX_LINE`] bytes arrived without a newline:
    /// unframeable, the connection must close after the error.
    OverlongLine,
    /// A complete v3 frame (header already decoded).
    Frame { tag: u64, payload: &'a [u8] },
    /// A v3 header advertising more than [`codec::MAX_PAYLOAD`] bytes:
    /// hostile — nothing past it can be trusted to frame.
    OversizedFrame { tag: u64 },
}

/// Incremental framer shared by both I/O backends: raw socket bytes in,
/// framed [`Inbound`] items out. Framing is byte-based and runs before
/// any UTF-8 validation, so the over-long check fires even when the cap
/// lands mid-codepoint — exactly the semantics the old bounded
/// `take(MAX_LINE+1).read_until` reader had.
pub(crate) struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    pub(crate) fn new() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Bytes buffered but not yet consumed (the epoll backend's read
    /// high-water check).
    pub(crate) fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Append freshly read bytes, compacting consumed ones first so the
    /// buffer holds at most one burst plus one partial item.
    pub(crate) fn push(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extract the next complete item under `mode`, or `None` when more
    /// bytes are needed.
    pub(crate) fn next(&mut self, mode: WireMode) -> Option<Inbound<'_>> {
        let avail = &self.buf[self.pos..];
        match mode {
            WireMode::Lines => {
                // One byte past MAX_LINE without a newline is the proof
                // of an over-long line; a newline inside the window
                // keeps even an exactly-MAX_LINE line served.
                let scan = &avail[..avail.len().min(proto::MAX_LINE + 1)];
                match scan.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        let start = self.pos;
                        self.pos += i + 1;
                        Some(Inbound::Line(&self.buf[start..start + i]))
                    }
                    None if avail.len() > proto::MAX_LINE => {
                        self.pos = self.buf.len();
                        Some(Inbound::OverlongLine)
                    }
                    None => None,
                }
            }
            WireMode::Frames => {
                if avail.len() < codec::HEADER_LEN {
                    return None;
                }
                let hdr: [u8; codec::HEADER_LEN] = avail[..codec::HEADER_LEN]
                    .try_into()
                    .expect("header length");
                let (tag, len, _status) = codec::decode_header(&hdr);
                let len = len as usize;
                if len > codec::MAX_PAYLOAD {
                    self.pos = self.buf.len();
                    return Some(Inbound::OversizedFrame { tag });
                }
                if avail.len() < codec::HEADER_LEN + len {
                    return None;
                }
                let start = self.pos + codec::HEADER_LEN;
                self.pos = start + len;
                Some(Inbound::Frame {
                    tag,
                    payload: &self.buf[start..start + len],
                })
            }
        }
    }

    /// The unterminated final line at EOF, if any — the old blocking
    /// reader served it (`read_until` returns what it got), so both
    /// backends do too. Partial v3 frames die with the connection.
    pub(crate) fn take_remainder(&mut self, mode: WireMode) -> Option<Inbound<'_>> {
        if mode != WireMode::Lines || self.pending() == 0 {
            return None;
        }
        let start = self.pos;
        self.pos = self.buf.len();
        Some(Inbound::Line(&self.buf[start..]))
    }
}

/// Serve one connection until EOF, error, or `QUIT` — the **reader** side
/// of the threads backend.
///
/// The reader feeds the shared [`ConnMachine`] and keeps accepting while
/// earlier jobs run; every response (inline or completed) flows through
/// the bounded channel into the writer thread. On exit the reader drops
/// its sender and joins the writer, which finishes once the last
/// in-flight completion has delivered — so teardown drains naturally and
/// the connection slot (held by this thread) is released only after
/// everything is accounted for.
fn handle_connection(stream: TcpStream, cx: &Arc<ConnShared>) -> io::Result<()> {
    let write_stream = stream.try_clone()?;
    let win = Arc::new(ConnWindow::new());
    // Capacity = window cap: see ConnWindow for why this bound makes
    // completion sends non-blocking.
    let (tx, rx) = sync_channel::<Outgoing>(cx.max_inflight);
    let writer = {
        let win = Arc::clone(&win);
        let stats = Arc::clone(&cx.stats);
        let mx = Arc::clone(&cx.mx);
        std::thread::Builder::new()
            .name("mis2-svc-write".into())
            .spawn(move || writer_loop(rx, write_stream, &win, &stats, Some(&mx)))?
    };
    let result = read_loop(stream, cx, &win, &tx);
    // Teardown: drop our sender; in-flight completions still hold clones,
    // so the writer keeps draining until the last one delivers, then
    // exits. Joining it is the "drain" in drain-or-cancel: responses the
    // client can still read are written, the rest die with the socket.
    drop(tx);
    let _ = writer.join();
    result
}

/// Acquire one window slot (blocking at `cap` — the per-connection
/// backpressure) and record it in the service-wide gauges.
pub(crate) fn acquire_slot(win: &ConnWindow, cap: usize, stats: &SvcStats) {
    let depth = win.acquire(cap);
    stats.inflight.fetch_add(1, Ordering::Relaxed);
    stats
        .peak_inflight
        .fetch_max(depth as u64, Ordering::Relaxed);
}

/// Send one response into the writer channel under an already-acquired
/// slot. The send cannot block (see [`ConnWindow`]); a send error means
/// the writer is already gone, so the slot is released directly to keep
/// accounting exact (the span dies with the item — an undeliverable
/// response is not recorded).
fn send_response(item: Outgoing, tx: &SyncSender<Outgoing>, win: &ConnWindow, stats: &SvcStats) {
    if tx.send(item).is_err() {
        win.release();
        stats.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// [`send_response`] for a v1/v2 text line without a metrics span (the
/// shard router's sends — the router doesn't record request metrics).
pub(crate) fn send_line(
    line: String,
    tx: &SyncSender<Outgoing>,
    win: &ConnWindow,
    stats: &SvcStats,
) {
    send_line_span(line, None, tx, win, stats);
}

/// [`send_response`] for a v1/v2 text line carrying its request's span.
pub(crate) fn send_line_span(
    line: String,
    span: Option<metrics::Span>,
    tx: &SyncSender<Outgoing>,
    win: &ConnWindow,
    stats: &SvcStats,
) {
    send_response(
        Outgoing {
            payload: Payload::Line(line),
            span,
        },
        tx,
        win,
        stats,
    );
}

/// [`send_response`] for a v3 frame under `tag` without a metrics span.
pub(crate) fn send_frame(
    tag: u64,
    resp: ops::Response,
    tx: &SyncSender<Outgoing>,
    win: &ConnWindow,
    stats: &SvcStats,
) {
    send_frame_span(tag, resp, None, tx, win, stats);
}

/// [`send_response`] for a v3 frame carrying its request's span.
pub(crate) fn send_frame_span(
    tag: u64,
    resp: ops::Response,
    span: Option<metrics::Span>,
    tx: &SyncSender<Outgoing>,
    win: &ConnWindow,
    stats: &SvcStats,
) {
    send_response(
        Outgoing {
            payload: Payload::Frame { tag, resp },
            span,
        },
        tx,
        win,
        stats,
    );
}

/// Map a parsed request to its metrics op label and graph key.
fn req_span_parts(req: &Request) -> (metrics::Op, &str) {
    match req {
        Request::Mis2 { graph } => (metrics::Op::Mis2, graph.token()),
        Request::Coarsen { graph, .. } => (metrics::Op::Coarsen, graph.token()),
        Request::Solve { graph, .. } => (metrics::Op::Solve, graph.token()),
        Request::Stats => (metrics::Op::Stats, ""),
        Request::Metrics => (metrics::Op::Metrics, ""),
        Request::Ping | Request::Quit => (metrics::Op::Other, ""),
    }
}

/// Build a span for an inline (never-queued) response; `None` when
/// recording is off (`t0` is `None`). Clock-free — inline answers are
/// single-stage, so only their end-to-end total is worth a histogram.
fn inline_span(
    t0: Option<Instant>,
    op: metrics::Op,
    outcome: metrics::Outcome,
    key: &str,
) -> Option<metrics::Span> {
    metrics::Span::fast(t0, op, outcome, key)
}

/// How one response is framed back to the client.
#[derive(Clone, Copy)]
pub(crate) enum Framing {
    /// v1: the bare response line.
    Bare,
    /// v2: `T<tag> <line>`.
    Tagged(u64),
    /// v2, tag unrecoverable: the reserved `T?` marker.
    Unknown,
    /// v3: a binary frame under `tag`.
    V3(u64),
}

impl Framing {
    /// Render `resp` under this framing: text lines for v1/v2 (the
    /// rendering [`ops::Response::to_line`] shares with `proto::ok`/
    /// `proto::err`), a binary frame for v3 — where interned bodies stay
    /// zero-copy all the way to the batch encoder.
    pub(crate) fn wrap(self, resp: ops::Response) -> Payload {
        match self {
            Framing::Bare => Payload::Line(resp.to_line()),
            Framing::Tagged(t) => Payload::Line(proto::tagged(t, &resp.to_line())),
            Framing::Unknown => Payload::Line(proto::tagged_unknown(&resp.to_line())),
            Framing::V3(tag) => Payload::Frame { tag, resp },
        }
    }
}

/// What the driver must do after the machine handled one item.
pub(crate) enum Flow {
    /// Keep going.
    Continue,
    /// Stop reading and close once already-queued responses have
    /// flushed (over-long line, hostile frame header).
    Close,
    /// `QUIT`: drain every in-flight response, then send this `BYE`
    /// under one freshly acquired slot as the last bytes on the wire,
    /// and close.
    Quit(Outgoing),
}

/// A backend's completion-delivery handle: scheduler completions (which
/// run on worker-leader threads) hand finished responses here. A sink
/// must never block — the threads backend sends into the response
/// channel under the window-slot guarantee, the epoll backend pushes to
/// an unbounded pending queue and rings an `eventfd` doorbell.
pub(crate) trait CompletionSink: Send + Sync {
    fn deliver(&self, item: Outgoing);
}

/// The machine's window onto its backend: slot acquisition (the
/// per-connection backpressure), inline response delivery, and minting
/// the completion sink scheduler jobs deliver through.
pub(crate) trait ConnIo {
    /// Acquire one window slot under `cap` and bump the service gauges.
    /// The threads backend blocks here at a full window; the epoll
    /// backend pre-gates item delivery on window room, so its acquire
    /// never waits.
    fn acquire(&mut self, cap: usize);
    /// Queue one response for writing under an already-acquired slot.
    fn respond(&mut self, item: Outgoing);
    /// The sink this connection's scheduler completions deliver to.
    fn sink(&self) -> Arc<dyn CompletionSink>;
}

/// Protocol mode of one connection: v1 until an upgrade hello arrives.
#[derive(Clone, Copy, PartialEq)]
enum ProtoMode {
    V1,
    V2,
    V3,
}

/// Outcome of [`ConnMachine::dispatch`]: either the item was fully
/// handled, or it is a compute request the caller must schedule (after
/// its protocol-specific cache-probe policy).
enum Handled {
    Done(Flow),
    Compute(Request),
}

/// The connection state machine both I/O backends drive: hello
/// negotiation (`V2`/`V3` upgrades), v1/v2 tagged lines and v3 binary
/// frames, per-request window-slot accounting, inline
/// `PING`/`STATS`/`METRICS`, the v3 zero-serialization cache probe with
/// its one-entry hot-key parse memo, parse and framing errors, and the
/// draining `QUIT`. Sans-I/O: items come from a [`FrameDecoder`],
/// effects leave through a [`ConnIo`].
///
/// The v3 fast path deserves its own note. A compute request whose
/// serialized response bytes are already interned is answered straight
/// from the reader via [`Registry::try_response`] — no scheduler, no
/// re-render, no payload allocation. On top of the probe sits the
/// **hot-key parse memo**: when an inline hit is served for a *suite*
/// graph, the raw request bytes and the parsed [`Request`] are
/// remembered, and a byte-identical next request skips UTF-8 validation
/// and parsing. The memoized request still goes through the normal
/// `try_response` probe, which is deliberate: an earlier version
/// memoized the interned `Arc` itself and served repeats without
/// touching the registry, so a graph served exclusively from the memo
/// never refreshed its resp/artifact/graph LRU stamps, looked
/// LRU-coldest, and was the first thing evicted under `--mem-budget`
/// pressure — the hottest key on the connection thrashed in and out of
/// the cache. Probing the registry per request keeps the stamps (and
/// the `hits`/`resp_hits` counters) exact while still skipping the
/// per-repeat parse work.
pub(crate) struct ConnMachine {
    mode: ProtoMode,
    memo: Option<(Vec<u8>, Request)>,
}

impl ConnMachine {
    pub(crate) fn new() -> ConnMachine {
        ConnMachine {
            mode: ProtoMode::V1,
            memo: None,
        }
    }

    /// The wire framing the decoder should apply to the *next* item.
    pub(crate) fn wire_mode(&self) -> WireMode {
        match self.mode {
            ProtoMode::V3 => WireMode::Frames,
            _ => WireMode::Lines,
        }
    }

    /// The in-flight window cap in force right now: v1 connections keep
    /// the classic one-in-flight, in-order contract; v2/v3 open the
    /// window to the configured cap.
    pub(crate) fn cap(&self, cx: &ConnShared) -> usize {
        match self.mode {
            ProtoMode::V1 => 1,
            _ => cx.max_inflight,
        }
    }

    /// Framing for a line whose tag cannot be recovered: bare on v1, the
    /// reserved `T?` marker on v2.
    fn unframeable(&self) -> Framing {
        match self.mode {
            ProtoMode::V2 => Framing::Unknown,
            _ => Framing::Bare,
        }
    }

    /// Feed one framed item through the protocol. `t0` is the span clock
    /// zero — stamped once per socket read, shared by every item parsed
    /// from that burst (one clock read per syscall, not per request;
    /// `None` when recording is off, so the disabled path pays no clock
    /// reads at all).
    pub(crate) fn handle(
        &mut self,
        item: Inbound<'_>,
        t0: Option<Instant>,
        cx: &ConnShared,
        io: &mut dyn ConnIo,
    ) -> Flow {
        match item {
            Inbound::Line(bytes) => self.handle_line(bytes, t0, cx, io),
            Inbound::Frame { tag, payload } => self.handle_frame(tag, payload, t0, cx, io),
            Inbound::OverlongLine => {
                // Acquire under the *current* cap — with a pipelined
                // window in flight this must not wait for a full drain.
                io.acquire(self.cap(cx));
                io.respond(Outgoing {
                    payload: self.unframeable().wrap(ops::Response::err("line too long")),
                    span: inline_span(t0, metrics::Op::Other, metrics::Outcome::Error, ""),
                });
                Flow::Close // the rest of the line is unframeable
            }
            Inbound::OversizedFrame { tag } => {
                // The advertised length is hostile; nothing past this
                // header can be trusted to frame. Answer under the
                // frame's own tag (binary tags always parse, so there is
                // no `T?` analog) and close — the v3 analog of v2's
                // over-long line.
                io.acquire(cx.max_inflight);
                io.respond(Outgoing {
                    payload: Framing::V3(tag).wrap(ops::Response::err("frame too long")),
                    span: None,
                });
                Flow::Close
            }
        }
    }

    fn handle_line(
        &mut self,
        bytes: &[u8],
        t0: Option<Instant>,
        cx: &ConnShared,
        io: &mut dyn ConnIo,
    ) -> Flow {
        let cap = self.cap(cx);
        let Ok(line) = std::str::from_utf8(bytes) else {
            // The line boundary itself is byte-based, so later lines
            // still frame fine: answer and keep the connection.
            io.acquire(cap);
            io.respond(Outgoing {
                payload: self.unframeable().wrap(ops::Response::err("invalid utf-8")),
                span: inline_span(t0, metrics::Op::Other, metrics::Outcome::Error, ""),
            });
            return Flow::Continue;
        };
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            return Flow::Continue;
        }
        // Test-only fault injection: lets the unit tests prove a
        // panicking connection still releases its slot on both backends
        // (threads: the handler thread's drop guard; epoll: the loop
        // catches the unwind and tears down only this connection).
        #[cfg(test)]
        if trimmed == "PANIC" {
            panic!("injected connection-handler panic (test hook)");
        }
        let (framing, parsed) = match self.mode {
            ProtoMode::V1 if trimmed == proto::HELLO_V2 => {
                io.acquire(cap);
                io.respond(Outgoing {
                    payload: Payload::Line(proto::hello_ok(cx.max_inflight)),
                    span: inline_span(t0, metrics::Op::Other, metrics::Outcome::Computed, ""),
                });
                self.mode = ProtoMode::V2;
                return Flow::Continue;
            }
            ProtoMode::V1 if trimmed == codec::HELLO_V3 => {
                // Upgrade to binary framing: the hello answer is the
                // last *text* line on the wire; from the next byte on,
                // both directions speak 13-byte-header frames.
                io.acquire(cap);
                io.respond(Outgoing {
                    payload: Payload::Line(codec::hello_ok(cx.max_inflight)),
                    span: inline_span(t0, metrics::Op::Other, metrics::Outcome::Computed, ""),
                });
                self.mode = ProtoMode::V3;
                return Flow::Continue;
            }
            ProtoMode::V1 => (Framing::Bare, Request::parse(trimmed)),
            _ => match proto::split_tagged(trimmed) {
                // The tag itself is unparseable (this covers v1-style
                // untagged lines after the upgrade): answer under the
                // reserved T? marker, keep the connection.
                Err(e) => {
                    io.acquire(cap);
                    io.respond(Outgoing {
                        payload: Framing::Unknown.wrap(ops::Response::err(&e)),
                        span: inline_span(t0, metrics::Op::Other, metrics::Outcome::Error, ""),
                    });
                    return Flow::Continue;
                }
                Ok((tag, rest)) => (Framing::Tagged(tag), Request::parse(rest)),
            },
        };
        match self.dispatch(parsed, framing, cap, t0, cx, io) {
            Handled::Done(flow) => flow,
            Handled::Compute(req) => {
                // Compute request: acquire a window slot, then submit in
                // completion mode. The machine moves straight on to the
                // next item — this is the pipelining. (No cache probe on
                // the text protocols: their responses are re-rendered
                // per request, so `execute_response` is the cache.)
                io.acquire(cap);
                let (op, key) = req_span_parts(&req);
                let span = metrics::Span::start(t0, op, key);
                self.submit(req, framing, span, cx, io);
                Flow::Continue
            }
        }
    }

    fn handle_frame(
        &mut self,
        tag: u64,
        payload: &[u8],
        t0: Option<Instant>,
        cx: &ConnShared,
        io: &mut dyn ConnIo,
    ) -> Flow {
        let cap = cx.max_inflight;
        let framing = Framing::V3(tag);
        // Hot-key parse memo: a byte-identical repeat of the last inline
        // hit reuses the parsed request — but still takes the normal
        // try_response path below, so LRU stamps and hit counters
        // refresh exactly as if the request had been parsed fresh.
        // (Outcome-wise a memo repeat that hits is a `memo_hit`, a
        // parsed request that hits is a `resp_hit`.)
        let memo_hit = matches!(&self.memo, Some((key, _)) if key == payload);
        let parsed = match &self.memo {
            Some((key, req)) if key == payload => Ok(req.clone()),
            _ => {
                let Ok(text) = std::str::from_utf8(payload) else {
                    // Lengths are explicit, so the stream stays framed:
                    // reject this request, keep the connection.
                    io.acquire(cap);
                    io.respond(Outgoing {
                        payload: framing.wrap(ops::Response::err("invalid utf-8")),
                        span: inline_span(t0, metrics::Op::Other, metrics::Outcome::Error, ""),
                    });
                    return Flow::Continue;
                };
                Request::parse(text.trim_end_matches(['\r', '\n']))
            }
        };
        let req = match self.dispatch(parsed, framing, cap, t0, cx, io) {
            Handled::Done(flow) => return flow,
            Handled::Compute(req) => req,
        };
        io.acquire(cap);
        let (op, key) = req_span_parts(&req);
        let mut span;
        // Zero-serialization fast path: interned response bytes go
        // straight to the writer. The registry counts this as a hit (and
        // a resp_hit) so cache accounting stays exact.
        if let Some((graph, opkey)) = ops::request_op(&req) {
            if memo_hit {
                // Memo repeat: the memo already holds exactly this
                // payload, and the probe is an in-memory lookup far
                // under the histograms' 1µs floor — so the whole hit
                // costs zero clock reads.
                if let Some(bytes) = cx.registry.try_response(graph, &opkey) {
                    let s = metrics::Span::fast(t0, op, metrics::Outcome::MemoHit, key);
                    io.respond(Outgoing {
                        payload: framing.wrap(ops::Response::interned(bytes)),
                        span: s,
                    });
                    return Flow::Continue;
                }
                // Evicted since the memo was set: schedule; the (rare)
                // probe goes untimed.
                span = metrics::Span::start(t0, op, key);
            } else {
                span = metrics::Span::start(t0, op, key);
                let probe_start = span.as_ref().map(|_| Instant::now());
                let hit = cx.registry.try_response(graph, &opkey);
                if let (Some(s), Some(p)) = (span.as_mut(), probe_start) {
                    s.stamp_probe(p);
                }
                if let Some(bytes) = hit {
                    // Memoize suite-graph hits only: suite names need no
                    // filesystem canonicalization, so the cached parse
                    // is always equivalent to a fresh one; an `.mtx`
                    // path's resolution could change on disk.
                    if matches!(graph, proto::GraphRef::Suite(_)) {
                        self.memo = Some((payload.to_vec(), req.clone()));
                    }
                    if let Some(s) = span.as_mut() {
                        s.outcome = metrics::Outcome::RespHit;
                    }
                    io.respond(Outgoing {
                        payload: framing.wrap(ops::Response::interned(bytes)),
                        span,
                    });
                    return Flow::Continue;
                }
            }
        } else {
            span = metrics::Span::start(t0, op, key);
        }
        self.submit(req, framing, span, cx, io);
        Flow::Continue
    }

    /// Handle the protocol-level requests every framing shares. Returns
    /// the compute request back to the caller (whose probe policy
    /// differs by protocol) when the item needs the scheduler.
    fn dispatch(
        &mut self,
        parsed: Result<Request, String>,
        framing: Framing,
        cap: usize,
        t0: Option<Instant>,
        cx: &ConnShared,
        io: &mut dyn ConnIo,
    ) -> Handled {
        use metrics::{Op, Outcome};
        let inline = |io: &mut dyn ConnIo, resp: ops::Response, op: Op, outcome: Outcome| {
            io.acquire(cap);
            io.respond(Outgoing {
                payload: framing.wrap(resp),
                span: inline_span(t0, op, outcome, ""),
            });
        };
        match parsed {
            // Parse failures still carry the request's tag, so a
            // pipelining client can correlate the error.
            Err(e) => {
                inline(io, ops::Response::err(&e), Op::Other, Outcome::Error);
                Handled::Done(Flow::Continue)
            }
            // PING/STATS/METRICS answer inline — they never queue behind
            // compute jobs (they still take a window slot, so a full
            // window backpressures them like everything else).
            Ok(Request::Ping) => {
                inline(
                    io,
                    ops::Response::ok_text("PONG".into()),
                    Op::Other,
                    Outcome::Computed,
                );
                Handled::Done(Flow::Continue)
            }
            Ok(Request::Stats) => {
                // Acquire before rendering: the report counts itself in
                // peak_inflight and subtracts itself from the in-flight
                // gauge (see stats_body).
                io.acquire(cap);
                let body = stats_body(cx);
                io.respond(Outgoing {
                    payload: framing.wrap(ops::Response::ok_text(body)),
                    span: inline_span(t0, Op::Stats, Outcome::Computed, ""),
                });
                Handled::Done(Flow::Continue)
            }
            Ok(Request::Metrics) => {
                io.acquire(cap);
                let body = metrics_body(cx);
                io.respond(Outgoing {
                    payload: framing.wrap(ops::Response::ok_text(body)),
                    span: inline_span(t0, Op::Metrics, Outcome::Computed, ""),
                });
                Handled::Done(Flow::Continue)
            }
            Ok(Request::Quit) => {
                // The driver drains every in-flight response, acquires a
                // fresh slot, and makes this BYE the last bytes on the
                // wire.
                Handled::Done(Flow::Quit(Outgoing {
                    payload: framing.wrap(ops::Response::ok_text("BYE".into())),
                    span: inline_span(t0, Op::Other, Outcome::Computed, ""),
                }))
            }
            Ok(req) => Handled::Compute(req),
        }
    }

    /// Submit a compute request in completion mode under an
    /// already-acquired slot: the worker-leader that finishes the job
    /// delivers the framed response through the backend's completion
    /// sink. The completion runs on a scheduler thread and must not
    /// block; the slot it holds guarantees its delivery cannot.
    fn submit(
        &self,
        req: Request,
        framing: Framing,
        mut span: Option<metrics::Span>,
        cx: &ConnShared,
        io: &mut dyn ConnIo,
    ) {
        let stamps = span.as_mut().map(|s| s.attach_job());
        let registry = Arc::clone(&cx.registry);
        let sink = io.sink();
        if let Some(s) = &stamps {
            s.stamp_enqueued();
        }
        cx.sched.submit_with(
            Box::new(move || {
                if let Some(s) = &stamps {
                    s.stamp_start();
                }
                let resp = ops::execute_response(&registry, &req);
                if let Some(s) = &stamps {
                    s.stamp_end();
                }
                resp
            }),
            Box::new(move |resp| {
                let mut span = span;
                if let Some(s) = span.as_mut() {
                    s.outcome = if resp.is_ok() {
                        metrics::Outcome::Computed
                    } else {
                        metrics::Outcome::Error
                    };
                }
                sink.deliver(Outgoing {
                    payload: framing.wrap(resp),
                    span,
                });
            }),
        );
    }
}

/// The threads backend's completion sink: the bounded response channel
/// (capacity = window cap keeps completion sends non-blocking).
struct ThreadSink {
    tx: SyncSender<Outgoing>,
    win: Arc<ConnWindow>,
    stats: Arc<SvcStats>,
}

impl CompletionSink for ThreadSink {
    fn deliver(&self, item: Outgoing) {
        send_response(item, &self.tx, &self.win, &self.stats);
    }
}

/// The threads backend's [`ConnIo`]: acquire blocks on the shared
/// [`ConnWindow`], responses go into the writer channel.
struct ThreadIo {
    sink: Arc<ThreadSink>,
}

impl ConnIo for ThreadIo {
    fn acquire(&mut self, cap: usize) {
        acquire_slot(&self.sink.win, cap, &self.sink.stats);
    }

    fn respond(&mut self, item: Outgoing) {
        self.sink.deliver(item);
    }

    fn sink(&self) -> Arc<dyn CompletionSink> {
        Arc::clone(&self.sink) as Arc<dyn CompletionSink>
    }
}

/// Bytes pulled from a socket per `read` call, on both backends.
pub(crate) const READ_CHUNK: usize = 16 * 1024;

/// The threads backend's read driver: blocking chunked reads feeding the
/// shared decoder and machine.
fn read_loop(
    stream: TcpStream,
    cx: &Arc<ConnShared>,
    win: &Arc<ConnWindow>,
    tx: &SyncSender<Outgoing>,
) -> io::Result<()> {
    let mut stream = stream;
    let mut dec = FrameDecoder::new();
    let mut machine = ConnMachine::new();
    let mut io = ThreadIo {
        sink: Arc::new(ThreadSink {
            tx: tx.clone(),
            win: Arc::clone(win),
            stats: Arc::clone(&cx.stats),
        }),
    };
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut t0: Option<Instant> = None;
    loop {
        while let Some(item) = dec.next(machine.wire_mode()) {
            match machine.handle(item, t0, cx, &mut io) {
                Flow::Continue => {}
                Flow::Close => return Ok(()),
                Flow::Quit(bye) => return finish_quit(bye, &machine, cx, win, tx),
            }
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            // EOF: the old blocking reader served an unterminated final
            // line (`read_until` returns what it got); keep that
            // contract on both backends.
            if let Some(item) = dec.take_remainder(machine.wire_mode()) {
                if let Flow::Quit(bye) = machine.handle(item, t0, cx, &mut io) {
                    return finish_quit(bye, &machine, cx, win, tx);
                }
            }
            return Ok(());
        }
        // Span clock zero: stamped once per socket read, shared by every
        // item parsed from the burst.
        t0 = cx.mx.enabled().then(Instant::now);
        dec.push(&chunk[..n]);
    }
}

/// The threads backend's `QUIT` epilogue: drain every in-flight response
/// (so `BYE` is the last bytes on the wire), take a fresh slot, send the
/// goodbye.
fn finish_quit(
    bye: Outgoing,
    machine: &ConnMachine,
    cx: &Arc<ConnShared>,
    win: &Arc<ConnWindow>,
    tx: &SyncSender<Outgoing>,
) -> io::Result<()> {
    win.wait_empty();
    acquire_slot(win, machine.cap(cx), &cx.stats);
    send_response(bye, tx, win, &cx.stats);
    Ok(())
}

/// The `STATS` response body: registry, scheduler, wire-window and pool
/// counters.
fn stats_body(cx: &ConnShared) -> String {
    let (svc, mx, max_inflight) = (&*cx.stats, &*cx.mx, cx.max_inflight);
    let r = cx.registry.stats();
    let s = cx.sched.stats();
    // The STATS request reporting this line is itself holding a window
    // slot; subtract it so an otherwise-idle server reports inflight=0.
    let inflight = svc.inflight.load(Ordering::Relaxed).saturating_sub(1);
    // New gauges append at the END of the line: consumers (CI smoke
    // scripts among them) grep for the first `bytes=` match, which must
    // stay the registry's total. `io_backend=` is the only non-numeric
    // value; the router's `parse_stats_body` skips it when merging.
    format!(
        "STATS graphs={} artifacts={} hits={} misses={} bytes={} mem_budget={} evictions={} \
         graph_builds={} jobs={} queue_wait_us={} run_us={} \
         panics={} inflight={} max_inflight={} peak_inflight={} \
         workers={} team={} pool_spawned={} pool_contended={} \
         resp={} resp_bytes={} resp_hits={} writev_batches={} bytes_tx={} \
         queue_wait_count={} uptime_s={} requests={} conns={} io_backend={}",
        r.graphs,
        r.artifacts,
        r.hits,
        r.misses,
        r.bytes,
        r.mem_budget,
        r.evictions,
        r.graph_builds,
        s.jobs.load(Ordering::Relaxed),
        s.queue_wait_us.load(Ordering::Relaxed),
        s.run_us.load(Ordering::Relaxed),
        s.panics.load(Ordering::Relaxed),
        inflight,
        max_inflight,
        svc.peak_inflight.load(Ordering::Relaxed),
        cx.sched.workers(),
        cx.sched.team(),
        pool::spawned_workers(),
        pool::contended_regions(),
        r.resp,
        r.resp_bytes,
        r.resp_hits,
        svc.writev_batches.load(Ordering::Relaxed),
        svc.bytes_tx.load(Ordering::Relaxed),
        s.queue_wait_count.load(Ordering::Relaxed),
        mx.uptime_s(),
        mx.requests_total(),
        cx.conns.load(Ordering::Relaxed),
        cx.backend.name(),
    )
}

/// The `METRICS` response body: the exposition of [`Metrics::render`]
/// plus server-level counters mirrored in as extra gauges, newline-
/// escaped into a single-line wire body (identical on every protocol —
/// `mis2svc client` and the router unescape it back).
fn metrics_body(cx: &ConnShared) -> String {
    let (svc, mx) = (&*cx.stats, &*cx.mx);
    let r = cx.registry.stats();
    let s = cx.sched.stats();
    let extra = [
        ("mis2_cache_graphs", r.graphs as u64),
        ("mis2_cache_artifacts", r.artifacts as u64),
        ("mis2_cache_hits_total", r.hits),
        ("mis2_cache_misses_total", r.misses),
        ("mis2_cache_bytes", r.bytes as u64),
        ("mis2_cache_evictions_total", r.evictions),
        ("mis2_graph_builds_total", r.graph_builds),
        ("mis2_resp_cached", r.resp as u64),
        ("mis2_resp_bytes", r.resp_bytes as u64),
        ("mis2_resp_hits_total", r.resp_hits),
        ("mis2_jobs_total", s.jobs.load(Ordering::Relaxed)),
        ("mis2_job_panics_total", s.panics.load(Ordering::Relaxed)),
        (
            "mis2_queue_wait_us_total",
            s.queue_wait_us.load(Ordering::Relaxed),
        ),
        (
            "mis2_queue_wait_count_total",
            s.queue_wait_count.load(Ordering::Relaxed),
        ),
        ("mis2_run_us_total", s.run_us.load(Ordering::Relaxed)),
        (
            "mis2_writev_batches_total",
            svc.writev_batches.load(Ordering::Relaxed),
        ),
        ("mis2_bytes_tx_total", svc.bytes_tx.load(Ordering::Relaxed)),
    ];
    format!("METRICS {}", metrics::escape_body(&mx.render(&extra)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::io::{BufRead, BufReader};

    #[test]
    fn ping_stats_quit_roundtrip() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        let stats = c.request("STATS").unwrap();
        assert!(stats.starts_with("OK STATS graphs=0"), "{stats}");
        assert_eq!(c.request("QUIT").unwrap(), "OK BYE");
        h.shutdown();
    }

    #[test]
    fn malformed_lines_get_err_and_connection_survives() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert!(c.request("NONSENSE").unwrap().starts_with("ERR "));
        assert!(c.request("COARSEN g 0").unwrap().starts_with("ERR "));
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        h.shutdown();
    }

    /// Slot-accounting proof, run against BOTH I/O backends: over-cap
    /// connections get the busy line and are dropped while the admitted
    /// connection keeps working.
    fn busy_and_dropped_on(backend: IoBackend) {
        let h = serve(ServerConfig {
            max_conns: 1,
            io_backend: backend,
            ..Default::default()
        })
        .unwrap();
        let mut first = Client::connect(h.addr()).unwrap();
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        // Second connection is over the cap: it gets the busy line (read
        // raw — request() would also succeed, but the connection then
        // closes) and the first connection keeps working.
        {
            use std::io::{BufRead, BufReader};
            let s = std::net::TcpStream::connect(h.addr()).unwrap();
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "ERR server busy");
        }
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        first.quit().unwrap();
        h.shutdown();
    }

    #[test]
    fn connections_beyond_cap_get_busy_and_dropped_epoll() {
        busy_and_dropped_on(IoBackend::Epoll);
    }

    #[test]
    fn connections_beyond_cap_get_busy_and_dropped_threads() {
        busy_and_dropped_on(IoBackend::Threads);
    }

    /// Read the single `ERR server busy` line an over-cap connection gets.
    fn read_busy_line(addr: std::net::SocketAddr) -> String {
        let s = std::net::TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Slot-accounting proof, run against BOTH I/O backends:
    /// claim-then-verify accounting — a rejected connection must give
    /// its claimed slot back, or every rejection would permanently
    /// shrink the cap. Reject many times at cap 1, then free the slot
    /// and verify a new connection is accepted.
    fn over_cap_release_on(backend: IoBackend) {
        let h = serve(ServerConfig {
            max_conns: 1,
            io_backend: backend,
            ..Default::default()
        })
        .unwrap();
        let mut first = Client::connect(h.addr()).unwrap();
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        for _ in 0..8 {
            assert_eq!(read_busy_line(h.addr()), "ERR server busy");
        }
        first.quit().unwrap();
        // The freed slot must become claimable again (the handler exits
        // asynchronously after QUIT, so poll briefly).
        let mut ok = false;
        for _ in 0..100 {
            let mut c = Client::connect(h.addr()).unwrap();
            if matches!(c.request("PING").as_deref(), Ok("OK PONG")) {
                ok = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ok, "slot never became claimable after rejections + QUIT");
        h.shutdown();
    }

    #[test]
    fn over_cap_rejection_releases_its_claimed_slot_epoll() {
        over_cap_release_on(IoBackend::Epoll);
    }

    #[test]
    fn over_cap_rejection_releases_its_claimed_slot_threads() {
        over_cap_release_on(IoBackend::Threads);
    }

    /// Slot-accounting proof, run against BOTH I/O backends: a handler
    /// that panics mid-connection must still release its slot via the
    /// drop guard; before the guard, each panic skipped the decrement
    /// and wedged the server at the cap.
    fn panicking_handler_release_on(backend: IoBackend) {
        let h = serve(ServerConfig {
            max_conns: 1,
            io_backend: backend,
            ..Default::default()
        })
        .unwrap();
        // Each round must reclaim the single slot the previous round's
        // panicked handler held (its release is asynchronous: poll). If a
        // panic leaked the slot, every later round sees only `server busy`
        // and the poll below exhausts — the pre-guard wedge.
        for round in 0..3 {
            let mut reclaimed = false;
            for _ in 0..200 {
                let mut c = Client::connect(h.addr()).unwrap();
                if matches!(c.request("PING").as_deref(), Ok("OK PONG")) {
                    // The injected panic kills the handler before it can
                    // respond: the client sees EOF/reset, the slot must
                    // still come back for the next round.
                    let _ = c.request("PANIC");
                    reclaimed = true;
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(
                reclaimed,
                "round {round}: slot leaked by a panicking handler; server wedged at cap"
            );
        }
        h.shutdown();
    }

    #[test]
    fn panicking_handler_releases_its_connection_slot_epoll() {
        panicking_handler_release_on(IoBackend::Epoll);
    }

    #[test]
    fn panicking_handler_releases_its_connection_slot_threads() {
        panicking_handler_release_on(IoBackend::Threads);
    }

    #[test]
    fn mem_budget_threads_through_to_the_registry() {
        let h = serve(ServerConfig {
            mem_budget: 123_456,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(h.registry().mem_budget(), 123_456);
        let mut c = Client::connect(h.addr()).unwrap();
        let stats = c.request("STATS").unwrap();
        assert!(stats.contains("mem_budget=123456"), "{stats}");
        h.shutdown();
    }

    /// Raw v2 socket for framing tests: hello already exchanged.
    struct RawV2 {
        w: TcpStream,
        r: BufReader<TcpStream>,
    }

    impl RawV2 {
        fn connect(addr: SocketAddr) -> RawV2 {
            let s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let mut raw = RawV2 {
                w: s.try_clone().unwrap(),
                r: BufReader::new(s),
            };
            raw.send(proto::HELLO_V2);
            let hello = raw.recv();
            assert!(
                proto::parse_hello_ok(&hello).is_some(),
                "bad hello response: {hello}"
            );
            raw
        }

        fn send(&mut self, line: &str) {
            writeln!(self.w, "{line}").unwrap();
            self.w.flush().unwrap();
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            assert!(self.r.read_line(&mut line).unwrap() > 0, "unexpected EOF");
            line.trim_end_matches(['\r', '\n']).to_string()
        }
    }

    #[test]
    fn v2_hello_upgrades_and_responses_echo_tags() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV2::connect(h.addr());
        c.send("T1 PING");
        assert_eq!(c.recv(), "T1 OK PONG");
        c.send("T2 STATS");
        assert!(c.recv().starts_with("T2 OK STATS graphs="));
        c.send(&format!("T{} PING", u64::MAX));
        assert_eq!(c.recv(), format!("T{} OK PONG", u64::MAX));
        c.send("T3 QUIT");
        assert_eq!(c.recv(), "T3 OK BYE");
        h.shutdown();
    }

    #[test]
    fn v2_duplicate_tags_are_echoed_verbatim() {
        // Tag uniqueness is the client's responsibility (memcached-opaque
        // semantics): the server answers each request under the tag it
        // came with, duplicates included.
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV2::connect(h.addr());
        c.send("T7 PING");
        c.send("T7 PING");
        assert_eq!(c.recv(), "T7 OK PONG");
        assert_eq!(c.recv(), "T7 OK PONG");
        h.shutdown();
    }

    #[test]
    fn v2_parse_failures_still_carry_the_tag() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV2::connect(h.addr());
        for (req, tag) in [
            ("T9 MIS2", "T9"),                 // missing graph
            ("T10 COARSEN ecology2 0", "T10"), // bad levels
            ("T11 FROB x", "T11"),             // unknown command
            ("T12", "T12"),                    // empty request under a tag
        ] {
            c.send(req);
            let got = c.recv();
            assert!(got.starts_with(&format!("{tag} ERR ")), "{req:?} -> {got}");
        }
        // The connection survives all of it.
        c.send("T13 PING");
        assert_eq!(c.recv(), "T13 OK PONG");
        h.shutdown();
    }

    #[test]
    fn v1_lines_on_a_v2_connection_get_tagged_unknown_error() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV2::connect(h.addr());
        for bad in ["PING", "MIS2 ecology2", "Tx PING", "V2", "V3"] {
            c.send(bad);
            let got = c.recv();
            assert!(
                got.starts_with("T? ERR "),
                "untagged/unparseable-tag line {bad:?} -> {got}"
            );
        }
        c.send("T1 PING");
        assert_eq!(c.recv(), "T1 OK PONG");
        h.shutdown();
    }

    #[test]
    fn overlong_line_gets_err_and_connection_closes() {
        let h = serve(ServerConfig::default()).unwrap();
        let s = TcpStream::connect(h.addr()).unwrap();
        let mut w = s.try_clone().unwrap();
        // Exactly MAX_LINE + 1 bytes, no newline: one past the cap, and
        // the server consumes every byte we send (no RST racing the
        // response out of the client's receive buffer).
        let blob = vec![b'a'; proto::MAX_LINE + 1];
        w.write_all(&blob).unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(s);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ERR line too long");
        line.clear();
        assert_eq!(r.read_line(&mut line).unwrap(), 0, "server must close");
        h.shutdown();
    }

    #[test]
    fn overlong_line_on_v2_gets_a_tagged_unknown_error() {
        // A truncated line's tag cannot be trusted, so the v2 framing
        // contract answers under the reserved T? marker before closing.
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV2::connect(h.addr());
        let blob = "a".repeat(proto::MAX_LINE + 1);
        c.w.write_all(blob.as_bytes()).unwrap();
        c.w.flush().unwrap();
        assert_eq!(c.recv(), "T? ERR line too long");
        let mut rest = String::new();
        assert_eq!(c.r.read_line(&mut rest).unwrap(), 0, "server must close");
        h.shutdown();
    }

    #[test]
    fn overlong_line_cut_mid_codepoint_still_gets_the_error() {
        // The byte cap can land inside a multi-byte UTF-8 character; the
        // over-long check must run on raw bytes, before any UTF-8
        // validation, or the promised error never reaches the client.
        let h = serve(ServerConfig::default()).unwrap();
        let s = TcpStream::connect(h.addr()).unwrap();
        let mut w = s.try_clone().unwrap();
        let mut blob = vec![b'a'; proto::MAX_LINE];
        blob.extend_from_slice("é".as_bytes()); // straddles MAX_LINE + 1
        w.write_all(&blob).unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(s);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ERR line too long");
        h.shutdown();
    }

    #[test]
    fn invalid_utf8_line_gets_err_and_connection_survives() {
        let h = serve(ServerConfig::default()).unwrap();
        let s = TcpStream::connect(h.addr()).unwrap();
        let mut w = s.try_clone().unwrap();
        w.write_all(b"MIS2 \xff\xfe\n").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(s);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ERR invalid utf-8");
        // Line boundaries are byte-based, so the connection keeps framing.
        writeln!(w, "PING").unwrap();
        w.flush().unwrap();
        line.clear();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK PONG");
        h.shutdown();
    }

    #[test]
    fn a_line_of_exactly_max_line_bytes_is_still_served() {
        let h = serve(ServerConfig::default()).unwrap();
        let s = TcpStream::connect(h.addr()).unwrap();
        let mut w = s.try_clone().unwrap();
        // "PING" padded with trailing spaces to exactly MAX_LINE content
        // bytes (split_whitespace ignores the padding): at the cap, not
        // over it.
        let mut line = "PING".to_string();
        line.push_str(&" ".repeat(proto::MAX_LINE - line.len()));
        writeln!(w, "{line}").unwrap();
        w.flush().unwrap();
        let mut r = BufReader::new(s);
        let mut resp = String::new();
        r.read_line(&mut resp).unwrap();
        assert_eq!(resp.trim_end(), "OK PONG");
        h.shutdown();
    }

    #[test]
    fn ping_and_stats_answer_inline_while_compute_is_in_flight() {
        // One scheduler worker, so the cold compute occupies the only
        // leader; PING/STATS must still answer immediately because the
        // reader never queues them.
        let h = serve(ServerConfig {
            threads: 1,
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let mut c = RawV2::connect(h.addr());
        // Cold compute: graph build + solve, orders of magnitude slower
        // than the reader's inline path.
        c.send("T1 SOLVE StocF-1465 cg");
        c.send("T2 PING");
        c.send("T3 STATS");
        assert_eq!(c.recv(), "T2 OK PONG", "PING must overtake the compute");
        assert!(c.recv().starts_with("T3 OK STATS "));
        assert!(c.recv().starts_with("T1 OK SOLVE StocF-1465 cg "));
        h.shutdown();
    }

    #[test]
    fn v2_responses_arrive_in_completion_order() {
        // Two scheduler workers, a slow compute tagged first and a fast
        // one tagged second: the fast response must arrive first, each
        // under its own tag.
        let h = serve(ServerConfig {
            threads: 2,
            workers: 2,
            ..Default::default()
        })
        .unwrap();
        let mut c = RawV2::connect(h.addr());
        // Warm the fast graph so T2 is a pure cache hit.
        c.send("T0 MIS2 ecology2");
        assert!(c.recv().starts_with("T0 OK MIS2 "));
        c.send("T1 SOLVE StocF-1465 gmres");
        c.send("T2 MIS2 ecology2");
        assert!(c.recv().starts_with("T2 OK MIS2 ecology2 "));
        assert!(c.recv().starts_with("T1 OK SOLVE StocF-1465 gmres "));
        h.shutdown();
    }

    #[test]
    fn stats_reports_window_counters() {
        let h = serve(ServerConfig {
            max_inflight: 16,
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        let stats = c.request("STATS").unwrap();
        assert!(
            stats.contains("inflight=0 max_inflight=16"),
            "idle server must report an empty window: {stats}"
        );
        assert!(stats.contains("peak_inflight=1"), "{stats}");
        h.shutdown();
    }

    /// Raw v3 socket for framing tests: hello already exchanged, binary
    /// frames from here on.
    struct RawV3 {
        w: TcpStream,
        r: BufReader<TcpStream>,
    }

    impl RawV3 {
        fn connect(addr: SocketAddr) -> RawV3 {
            let s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            let mut raw = RawV3 {
                w: s.try_clone().unwrap(),
                r: BufReader::new(s),
            };
            writeln!(raw.w, "{}", codec::HELLO_V3).unwrap();
            raw.w.flush().unwrap();
            let mut hello = String::new();
            raw.r.read_line(&mut hello).unwrap();
            assert!(
                codec::parse_hello_ok(hello.trim_end()).is_some(),
                "bad hello response: {hello}"
            );
            raw
        }

        fn send(&mut self, tag: u64, payload: &[u8]) {
            codec::write_frame(&mut self.w, tag, codec::STATUS_OK, payload).unwrap();
            self.w.flush().unwrap();
        }

        fn recv(&mut self) -> codec::Frame {
            codec::read_frame(&mut self.r)
                .unwrap()
                .expect("unexpected EOF")
        }

        fn eof(&mut self) -> bool {
            codec::read_frame(&mut self.r).unwrap().is_none()
        }
    }

    #[test]
    fn v3_hello_upgrades_and_frames_echo_tags() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV3::connect(h.addr());
        c.send(1, b"PING");
        let f = c.recv();
        assert_eq!((f.tag, f.status), (1, codec::STATUS_OK));
        assert_eq!(f.payload, b"PONG");
        // A tag no decimal text protocol could carry.
        c.send(u64::MAX, b"STATS");
        let f = c.recv();
        assert_eq!(f.tag, u64::MAX);
        assert!(f.payload.starts_with(b"STATS graphs="), "{}", f.to_line());
        c.send(3, b"QUIT");
        let f = c.recv();
        assert_eq!((f.tag, f.payload.as_slice()), (3, &b"BYE"[..]));
        assert!(c.eof(), "server must close after BYE");
        h.shutdown();
    }

    #[test]
    fn v3_parse_failures_carry_the_frame_tag() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV3::connect(h.addr());
        for (tag, payload) in [
            (9u64, &b"MIS2"[..]),             // missing graph
            (10, &b"COARSEN ecology2 0"[..]), // bad levels
            (11, &b"FROB x"[..]),             // unknown command
            (12, &b""[..]),                   // empty request
        ] {
            c.send(tag, payload);
            let f = c.recv();
            assert_eq!(f.tag, tag, "{payload:?}");
            assert_eq!(
                f.status,
                codec::STATUS_ERR,
                "{payload:?} -> {}",
                f.to_line()
            );
        }
        // The connection survives all of it.
        c.send(13, b"PING");
        assert_eq!(c.recv().payload, b"PONG");
        h.shutdown();
    }

    #[test]
    fn v3_invalid_utf8_payload_fails_only_that_request() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV3::connect(h.addr());
        c.send(5, b"\xff\xfe");
        let f = c.recv();
        assert_eq!((f.tag, f.status), (5, codec::STATUS_ERR));
        assert_eq!(f.payload, b"invalid utf-8");
        // Lengths are explicit, so the stream stays framed.
        c.send(6, b"PING");
        assert_eq!(c.recv().payload, b"PONG");
        h.shutdown();
    }

    #[test]
    fn v3_oversized_header_gets_err_frame_and_close() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = RawV3::connect(h.addr());
        let hdr = codec::encode_header(77, (codec::MAX_PAYLOAD + 1) as u32, codec::STATUS_OK);
        c.w.write_all(&hdr).unwrap();
        c.w.flush().unwrap();
        let f = c.recv();
        assert_eq!((f.tag, f.status), (77, codec::STATUS_ERR));
        assert_eq!(f.payload, b"frame too long");
        assert!(c.eof(), "nothing past a hostile header can be framed");
        h.shutdown();
    }

    #[test]
    fn v3_cache_hit_is_served_inline_with_interned_bytes() {
        let h = serve(ServerConfig {
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let mut c = RawV3::connect(h.addr());
        c.send(1, b"MIS2 ecology2");
        let first = c.recv();
        assert_eq!(first.status, codec::STATUS_OK, "{}", first.to_line());
        c.send(2, b"MIS2 ecology2");
        let second = c.recv();
        assert_eq!(first.payload, second.payload, "hit must be byte-identical");
        // The hit bypassed the scheduler: one job, one resp_hit, and the
        // registry still counts it as a plain hit (hits + misses = 2).
        let r = h.registry().stats();
        assert_eq!((r.hits, r.misses, r.resp_hits), (1, 1, 1), "{r:?}");
        let s = h.svc_stats();
        assert!(s.writev_batches.load(Ordering::Relaxed) > 0);
        assert!(s.bytes_tx.load(Ordering::Relaxed) > 0);
        c.send(3, b"QUIT");
        assert_eq!(c.recv().payload, b"BYE");
        h.shutdown();
    }

    #[test]
    fn v3_payloads_are_byte_identical_to_v1_lines() {
        // One server, both protocols: the v3 payload plus its status byte
        // must reassemble to exactly the v1 text line.
        let h = serve(ServerConfig::default()).unwrap();
        let mut v1 = Client::connect(h.addr()).unwrap();
        let mut v3 = RawV3::connect(h.addr());
        for (tag, req) in [
            (1u64, "MIS2 ecology2"),
            (2, "COARSEN ecology2 2"),
            (3, "MIS2 not_a_graph"),
        ] {
            let line = v1.request(req).unwrap();
            v3.send(tag, req.as_bytes());
            let f = v3.recv();
            assert_eq!(f.to_line(), line, "{req}");
        }
        h.shutdown();
    }

    #[test]
    fn memo_repeats_keep_the_hot_key_resident_under_eviction_pressure() {
        // Regression for the memo-hit LRU bug: the v3 hot-key memo used
        // to answer byte-identical repeats without touching the registry,
        // so the hot key's resp/artifact/graph stamps never refreshed and
        // a tight budget evicted exactly the hottest entry. The memo now
        // only skips the re-parse; every repeat still probes
        // `try_response`, which refreshes all three stamps.
        //
        // Churn distinct COARSEN levels on the *same* graph so the graph
        // stays shared and eviction pressure lands on the artifact
        // segment, where the LRU stamp alone picks the victim. Budget =
        // the hot key's footprint + the largest coarsen artifact + slack:
        // each new coarsen insert overflows, and evicting the *previous*
        // coarsen artifact gets back under — unless the hot artifact's
        // stamp is stale, in which case it is the LRU victim instead.
        let hot = proto::GraphRef::Suite("ecology2".into());
        let (hot_bytes, biggest_cold) = {
            let probe = Registry::new(Scale::Tiny);
            probe.response(&hot, &ops::OpKey::Mis2).unwrap();
            let hot_bytes = probe.stats().bytes;
            probe
                .response(&hot, &ops::OpKey::Coarsen { levels: 3 })
                .unwrap();
            (hot_bytes, probe.stats().bytes - hot_bytes)
        };
        let h = serve(ServerConfig {
            threads: 2,
            mem_budget: hot_bytes + biggest_cold + 4096,
            ..Default::default()
        })
        .unwrap();
        let mut c = RawV3::connect(h.addr());
        let mut tag = 0u64;
        let mut ask = |c: &mut RawV3, req: &str| {
            tag += 1;
            c.send(tag, req.as_bytes());
            let f = c.recv();
            assert_eq!((f.tag, f.status), (tag, codec::STATUS_OK), "{req}");
        };
        // Warm the hot key (miss), then once more to arm the memo (hit).
        ask(&mut c, "MIS2 ecology2");
        ask(&mut c, "MIS2 ecology2");
        // Interleave cold computes with byte-identical hot repeats (each
        // must ride the memo AND refresh the hot entries' stamps).
        for level in 1..=3 {
            ask(&mut c, &format!("COARSEN ecology2 {level}"));
            ask(&mut c, "MIS2 ecology2");
        }
        let r = h.registry().stats();
        assert!(r.evictions > 0, "budget must actually bite: {r:?}");
        // Hot computed once, each coarsen level once. Had the hot
        // artifact been evicted, a repeat would have re-missed.
        assert_eq!(r.misses, 4, "{r:?}");
        assert!(
            h.registry().try_response(&hot, &ops::OpKey::Mis2).is_some(),
            "hot key must still be resident after the churn: {r:?}"
        );
        c.send(999, b"QUIT");
        assert_eq!(c.recv().payload, b"BYE");
        h.shutdown();
    }

    #[test]
    fn oversized_response_body_becomes_a_per_tag_err_frame() {
        // The v3 header's length field is a u32 capped at MAX_PAYLOAD; a
        // body past the cap cannot be framed, so the batcher swaps in a
        // per-tag ERR instead of truncating or poisoning the stream.
        let mut scratch = Vec::new();
        let mut pieces = Vec::new();
        let mut shared = Vec::new();
        let big = ops::Response::ok_text("x".repeat(codec::MAX_PAYLOAD + 1));
        encode_outgoing(
            Payload::Frame { tag: 42, resp: big },
            &mut scratch,
            &mut pieces,
            &mut shared,
        );
        let (f, used) = codec::decode_frame(&scratch).unwrap();
        assert_eq!(used, scratch.len());
        assert_eq!((f.tag, f.status), (42, codec::STATUS_ERR));
        assert_eq!(f.payload, b"response too large");
        // Exactly MAX_PAYLOAD still frames intact.
        scratch.clear();
        pieces.clear();
        let max = ops::Response::ok_text("y".repeat(codec::MAX_PAYLOAD));
        encode_outgoing(
            Payload::Frame { tag: 7, resp: max },
            &mut scratch,
            &mut pieces,
            &mut shared,
        );
        let (f, used) = codec::decode_frame(&scratch).unwrap();
        assert_eq!(used, scratch.len());
        assert_eq!((f.tag, f.status), (7, codec::STATUS_OK));
        assert_eq!(f.payload.len(), codec::MAX_PAYLOAD);
    }

    #[test]
    fn compute_request_served_and_cached() {
        let h = serve(ServerConfig {
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        let first = c.request("MIS2 ecology2").unwrap();
        assert!(first.starts_with("OK MIS2 ecology2 size="), "{first}");
        let second = c.request("MIS2 ecology2").unwrap();
        assert_eq!(first, second, "cache hit must be byte-identical");
        let stats = c.request("STATS").unwrap();
        assert!(stats.contains("hits=1 misses=1"), "{stats}");
        h.shutdown();
    }

    #[test]
    fn stats_tail_gains_queue_wait_count_uptime_and_requests() {
        let h = serve(ServerConfig {
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert!(c.request("MIS2 ecology2").unwrap().starts_with("OK "));
        let stats = c.request("STATS").unwrap();
        // Appended after bytes_tx= (the append-only STATS tail contract).
        let tail = stats.split(" queue_wait_count=").nth(1).unwrap_or_else(|| {
            panic!("missing queue_wait_count in {stats}");
        });
        assert!(stats.contains("bytes_tx="), "{stats}");
        assert!(tail.contains("uptime_s="), "{stats}");
        assert!(tail.contains("requests="), "{stats}");
        // One job ran, so exactly one wait was counted.
        assert!(
            tail.starts_with("1 "),
            "queue_wait_count should be 1: {stats}"
        );
        h.shutdown();
    }

    #[test]
    fn metrics_round_trips_over_v1_and_counts_requests() {
        let h = serve(ServerConfig {
            threads: 2,
            slow_ms: 0, // capture everything into the slow ring
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert!(c.request("MIS2 ecology2").unwrap().starts_with("OK "));
        assert!(c.request("MIS2 ecology2").unwrap().starts_with("OK "));
        assert!(c.request("NONSENSE").unwrap().starts_with("ERR "));
        // Poll: requests are recorded post-write, so the scrape races the
        // writer's bookkeeping by a hair.
        let mut exp = crate::metrics::Exposition::default();
        for _ in 0..100 {
            let raw = c.request("METRICS").unwrap();
            let body = raw.strip_prefix("OK METRICS ").expect(&raw);
            exp = crate::metrics::parse_exposition(&crate::metrics::unescape_body(body)).unwrap();
            if exp.value("mis2_requests_total") >= Some(3) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(exp.schema, crate::metrics::SCHEMA);
        // Histogram _count totals must equal the requests counter (both
        // are recorded in the same place).
        let total: u64 = exp
            .samples
            .iter()
            .filter(|s| s.name == "mis2_request_latency_ns_count")
            .map(|s| s.value)
            .sum();
        assert_eq!(Some(total), exp.value("mis2_requests_total"), "{exp:?}");
        // Per-bucket counts sum to _count for every series.
        for count in exp
            .samples
            .iter()
            .filter(|s| s.name == "mis2_request_latency_ns_count")
        {
            let buckets: u64 = exp
                .samples
                .iter()
                .filter(|s| {
                    s.name == "mis2_request_latency_ns_bucket"
                        && s.label("op") == count.label("op")
                        && s.label("outcome") == count.label("outcome")
                })
                .map(|s| s.value)
                .sum();
            assert_eq!(buckets, count.value, "{count:?}");
        }
        // With --slow-ms 0 the ring captured the MIS2 requests.
        assert!(exp.value("mis2_slow_captured_total").unwrap() >= 3);
        let slow_keys: Vec<_> = exp
            .samples
            .iter()
            .filter(|s| s.name == "mis2_slow_request")
            .filter_map(|s| s.label("key"))
            .collect();
        assert!(slow_keys.contains(&"ecology2"), "{slow_keys:?}");
        // The server's own exposition always says shard="0"; the router
        // rewrites it when merging.
        assert!(exp
            .samples
            .iter()
            .filter(|s| s.name == "mis2_slow_request")
            .all(|s| s.label("shard") == Some("0")));
        h.shutdown();
    }

    #[test]
    fn v1_metrics_and_v3_metrics_bodies_agree_in_shape() {
        // The METRICS body is the same single escaped line on every
        // protocol (the cross-protocol byte-identity contract can't hold
        // for METRICS values, which move between scrapes, but the shape
        // and schema must).
        let h = serve(ServerConfig::default()).unwrap();
        let mut v1 = Client::connect(h.addr()).unwrap();
        let line = v1.request("METRICS").unwrap();
        assert!(
            line.starts_with("OK METRICS # mis2svc metrics schema "),
            "{line}"
        );
        let mut v3 = RawV3::connect(h.addr());
        v3.send(5, b"METRICS");
        let f = v3.recv();
        assert_eq!((f.tag, f.status), (5, codec::STATUS_OK));
        assert!(f.payload.starts_with(b"METRICS # mis2svc metrics schema "));
        let body = std::str::from_utf8(&f.payload).unwrap();
        let exp = crate::metrics::parse_exposition(&crate::metrics::unescape_body(
            body.strip_prefix("METRICS ").unwrap(),
        ))
        .unwrap();
        assert_eq!(exp.schema, crate::metrics::SCHEMA);
        h.shutdown();
    }

    #[test]
    fn disabled_metrics_serve_an_empty_exposition() {
        let h = serve(ServerConfig {
            metrics: false,
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        let raw = c.request("METRICS").unwrap();
        let body = raw.strip_prefix("OK METRICS ").expect(&raw);
        let exp = crate::metrics::parse_exposition(&crate::metrics::unescape_body(body)).unwrap();
        assert_eq!(exp.value("mis2_requests_total"), Some(0));
        assert_eq!(exp.value("mis2_slow_captured_total"), Some(0));
        h.shutdown();
    }
}
