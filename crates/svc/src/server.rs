//! The loopback TCP server: accepts line-protocol connections and
//! multiplexes their compute requests onto the batching scheduler.
//!
//! One OS thread per connection reads request lines; `PING`/`STATS`/`QUIT`
//! are answered inline, compute requests are submitted to the shared
//! [`Scheduler`] (blocking the connection on the bounded queue when the
//! service is saturated — per-connection backpressure instead of unbounded
//! buffering). Responses preserve request order within a connection.

use crate::proto::{self, Request};
use crate::registry::Registry;
use crate::sched::{SchedConfig, Scheduler};
use mis2_graph::Scale;
use mis2_prim::pool;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the default — read
    /// the actual address from [`ServerHandle::addr`]).
    pub addr: String,
    /// Thread budget shared by concurrently running jobs (0 = all CPUs).
    pub threads: usize,
    /// Scheduler worker-leaders (0 = auto).
    pub workers: usize,
    /// Bounded job-queue capacity (0 = default).
    pub queue_cap: usize,
    /// Maximum concurrent connections; one past the cap is accepted only
    /// to be told `ERR server busy` and dropped (0 = 1024).
    pub max_conns: usize,
    /// Scale suite workloads are built at.
    pub scale: Scale,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            workers: 0,
            queue_cap: 0,
            max_conns: 0,
            scale: Scale::Tiny,
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`] (tests) or [`ServerHandle::wait`] (the
/// `mis2svc` bin).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    sched: Arc<Scheduler>,
    registry: Arc<Registry>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared graph/artifact registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Block forever serving (the accept loop never returns on its own).
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }

    /// Stop accepting, stop the scheduler (in-flight jobs finish, queued
    /// ones are rejected, later submits get `ERR`), and join the accept
    /// thread. Connection handler threads exit as their clients
    /// disconnect; any still alive only ever see the shut-down scheduler.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        self.sched.shutdown();
    }
}

/// Bind and start serving in background threads.
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let registry = Arc::new(Registry::new(cfg.scale));
    let sched = Arc::new(Scheduler::new(SchedConfig {
        threads: cfg.threads,
        workers: cfg.workers,
        queue_cap: cfg.queue_cap,
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let max_conns = if cfg.max_conns == 0 {
        1024
    } else {
        cfg.max_conns
    };
    let accept = {
        let registry = Arc::clone(&registry);
        let sched = Arc::clone(&sched);
        let stop = Arc::clone(&stop);
        let conns = Arc::new(AtomicUsize::new(0));
        std::thread::Builder::new()
            .name("mis2-svc-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else {
                        // Transient (often fd-exhaustion) accept failure:
                        // back off instead of spinning the core; existing
                        // connections keep their handler threads.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    };
                    if conns.load(Ordering::Relaxed) >= max_conns {
                        let _ = writeln!(stream, "{}", proto::err("server busy"));
                        continue; // drop the stream
                    }
                    conns.fetch_add(1, Ordering::Relaxed);
                    let registry = Arc::clone(&registry);
                    let sched = Arc::clone(&sched);
                    let handler_conns = Arc::clone(&conns);
                    let spawned = std::thread::Builder::new()
                        .name("mis2-svc-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &registry, &sched);
                            handler_conns.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        conns.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            })?
    };
    Ok(ServerHandle {
        addr,
        stop,
        accept: Some(accept),
        sched,
        registry,
    })
}

/// Serve one connection until EOF, error, or `QUIT`.
fn handle_connection(
    stream: TcpStream,
    registry: &Arc<Registry>,
    sched: &Scheduler,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let response = match Request::parse(trimmed) {
            Err(e) => proto::err(&e),
            Ok(Request::Ping) => proto::ok("PONG"),
            Ok(Request::Quit) => {
                writeln!(writer, "{}", proto::ok("BYE"))?;
                writer.flush()?;
                return Ok(());
            }
            Ok(Request::Stats) => proto::ok(&stats_body(registry, sched)),
            Ok(req) => {
                // Compute request: batch it onto the scheduler and block
                // this connection until its response line is ready.
                let registry = Arc::clone(registry);
                sched
                    .submit(Box::new(move || crate::ops::execute(&registry, &req)))
                    .wait()
            }
        };
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
}

/// The `STATS` response body: registry, scheduler and pool counters.
fn stats_body(registry: &Registry, sched: &Scheduler) -> String {
    let r = registry.stats();
    let s = sched.stats();
    format!(
        "STATS graphs={} artifacts={} hits={} misses={} jobs={} queue_wait_us={} run_us={} \
         panics={} workers={} team={} pool_spawned={} pool_contended={}",
        r.graphs,
        r.artifacts,
        r.hits,
        r.misses,
        s.jobs.load(Ordering::Relaxed),
        s.queue_wait_us.load(Ordering::Relaxed),
        s.run_us.load(Ordering::Relaxed),
        s.panics.load(Ordering::Relaxed),
        sched.workers(),
        sched.team(),
        pool::spawned_workers(),
        pool::contended_regions(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    #[test]
    fn ping_stats_quit_roundtrip() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        let stats = c.request("STATS").unwrap();
        assert!(stats.starts_with("OK STATS graphs=0"), "{stats}");
        assert_eq!(c.request("QUIT").unwrap(), "OK BYE");
        h.shutdown();
    }

    #[test]
    fn malformed_lines_get_err_and_connection_survives() {
        let h = serve(ServerConfig::default()).unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        assert!(c.request("NONSENSE").unwrap().starts_with("ERR "));
        assert!(c.request("COARSEN g 0").unwrap().starts_with("ERR "));
        assert_eq!(c.request("PING").unwrap(), "OK PONG");
        h.shutdown();
    }

    #[test]
    fn connections_beyond_cap_get_busy_and_dropped() {
        let h = serve(ServerConfig {
            max_conns: 1,
            ..Default::default()
        })
        .unwrap();
        let mut first = Client::connect(h.addr()).unwrap();
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        // Second connection is over the cap: it gets the busy line (read
        // raw — request() would also succeed, but the connection then
        // closes) and the first connection keeps working.
        {
            use std::io::{BufRead, BufReader};
            let s = std::net::TcpStream::connect(h.addr()).unwrap();
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "ERR server busy");
        }
        assert_eq!(first.request("PING").unwrap(), "OK PONG");
        first.quit().unwrap();
        h.shutdown();
    }

    #[test]
    fn compute_request_served_and_cached() {
        let h = serve(ServerConfig {
            threads: 2,
            ..Default::default()
        })
        .unwrap();
        let mut c = Client::connect(h.addr()).unwrap();
        let first = c.request("MIS2 ecology2").unwrap();
        assert!(first.starts_with("OK MIS2 ecology2 size="), "{first}");
        let second = c.request("MIS2 ecology2").unwrap();
        assert_eq!(first, second, "cache hit must be byte-identical");
        let stats = c.request("STATS").unwrap();
        assert!(stats.contains("hits=1 misses=1"), "{stats}");
        h.shutdown();
    }
}
