//! Minimal blocking client for the line protocol: one request line out,
//! one response line back. Used by the e2e tests, the `mis2svc client`
//! mode, and the CI server-smoke leg.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one request line and block for its response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Polite close: `QUIT` and drop the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}
