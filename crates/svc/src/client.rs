//! Protocol clients: the blocking v1 [`Client`] (one request line out,
//! one response line back), the windowed v2 [`PipelinedClient`] that
//! keeps many tagged requests in flight and reassembles responses by
//! tag, and the binary v3 [`V3Client`] — the same windowed shape over
//! the length-prefixed frames of [`crate::codec`].
//!
//! All are used by the e2e tests, the `mis2svc` bin, and the CI smoke
//! legs.

use crate::codec;
use crate::proto::{self, Request};
use crate::registry;
use crate::shard::{shard_key, Ring};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Read one response line, distinguishing the three ways it can go wrong:
/// a clean EOF before any byte (server closed between responses), a
/// truncated line (server died mid-response), or a plain I/O error —
/// which includes `WouldBlock`/`TimedOut` when a read timeout is set.
fn read_response_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection (clean EOF before a response line)",
        ));
    }
    if !response.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "server closed the connection mid-line (truncated response: {:?})",
                response.trim_end()
            ),
        ));
    }
    Ok(response.trim_end_matches(['\r', '\n']).to_string())
}

/// The error returned by `request` calls after an earlier request on the
/// same connection already failed: a read error (timeout included) can
/// leave consumed-but-unparsed bytes behind, so the line framing can no
/// longer be trusted — reconnect instead of retrying.
fn poisoned_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::BrokenPipe,
        "connection poisoned by an earlier request error; reconnect",
    )
}

/// A connected blocking (v1) protocol client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    poisoned: bool,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            poisoned: false,
        })
    }

    /// Bound how long a [`Client::request`] may block waiting for the
    /// response (`None` = forever, the default). With a timeout set, a
    /// hung server surfaces as an `io::Error` of kind
    /// `WouldBlock`/`TimedOut` instead of parking the client for good.
    /// A timeout may fire after part of a response line was already
    /// consumed, so the connection is **poisoned** on any request error:
    /// later `request` calls fail fast instead of reading desynchronized
    /// frames — reconnect to recover.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request line and block for its response line. A server
    /// that closes before responding yields `UnexpectedEof`, with the
    /// error text distinguishing a clean close from a truncated line.
    /// Any error poisons the connection (see
    /// [`Client::set_read_timeout`]).
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        let attempt = (|| {
            writeln!(self.writer, "{line}")?;
            self.writer.flush()?;
            read_response_line(&mut self.reader)
        })();
        if attempt.is_err() {
            self.poisoned = true;
        }
        attempt
    }

    /// Polite close: `QUIT` and drop the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}

/// A v2 pipelined client: writes a *window* of tagged requests before the
/// first response is read, reads responses as they arrive — in completion
/// order, not request order — and reassembles them by tag.
///
/// The connection upgrades at construction time (`V2` hello); the window
/// is clamped to the server's advertised `max_inflight`, so the client
/// never sends a request the server's reader would refuse to accept into
/// its window.
pub struct PipelinedClient {
    // Buffered: a window refill becomes one write syscall at the flush,
    // not one per request line.
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_tag: u64,
    window: usize,
    poisoned: bool,
    latencies_ns: Vec<u64>,
}

impl PipelinedClient {
    /// Connect and upgrade to v2 framing, keeping up to `window` requests
    /// in flight (clamped to `1..=server max_inflight`).
    pub fn connect<A: ToSocketAddrs>(addr: A, window: usize) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{}", proto::HELLO_V2)?;
        writer.flush()?;
        let hello = read_response_line(&mut reader)?;
        let server_max = proto::parse_hello_ok(&hello)
            .filter(|max| *max > 0)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server rejected the V2 hello: {hello}"),
                )
            })?;
        Ok(PipelinedClient {
            writer,
            reader,
            next_tag: 0,
            window: window.clamp(1, server_max),
            poisoned: false,
            latencies_ns: Vec::new(),
        })
    }

    /// Client-observed latency of each request in the **last completed**
    /// [`PipelinedClient::request_many`] batch, in nanoseconds, indexed
    /// like the batch's lines. Measured from the moment the request was
    /// written into the pipeline to the moment its response was
    /// reassembled — so it includes queueing behind the window. Copy the
    /// slice out before `quit()`, which consumes the client.
    pub fn last_latencies_ns(&self) -> &[u64] {
        &self.latencies_ns
    }

    /// The effective window after clamping to the server's cap.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Bound how long a read for the next response may block (`None` =
    /// forever, the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send every request, keeping up to `window` of them in flight, and
    /// return the responses **in request order** (tags stripped) — the
    /// wire order is completion order; the tags are what put them back.
    ///
    /// Tags are assigned from this client's private counter, so they are
    /// unique across the connection's lifetime; a response carrying an
    /// unknown or already-answered tag (or the server's `T?` marker) is a
    /// protocol error surfaced as `InvalidData`. Any error poisons the
    /// connection — un-retired tags may still be in flight, so the
    /// framing can no longer be trusted; later calls fail fast and the
    /// caller should reconnect.
    pub fn request_many<S: AsRef<str>>(&mut self, lines: &[S]) -> io::Result<Vec<String>> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        let attempt = self.request_many_inner(lines);
        if attempt.is_err() {
            self.poisoned = true;
        }
        attempt
    }

    fn request_many_inner<S: AsRef<str>>(&mut self, lines: &[S]) -> io::Result<Vec<String>> {
        let mut results: Vec<Option<String>> = Vec::with_capacity(lines.len());
        results.resize_with(lines.len(), || None);
        let mut tag_to_index: HashMap<u64, usize> = HashMap::with_capacity(self.window);
        let mut sent_at: Vec<Instant> = Vec::with_capacity(lines.len());
        self.latencies_ns.clear();
        self.latencies_ns.resize(lines.len(), 0);
        let mut sent = 0;
        let mut received = 0;
        while received < lines.len() {
            // Refill the window, batching the writes into one flush.
            let mut wrote = false;
            while sent < lines.len() && sent - received < self.window {
                let tag = self.next_tag;
                self.next_tag += 1;
                writeln!(self.writer, "T{tag} {}", lines[sent].as_ref())?;
                tag_to_index.insert(tag, sent);
                sent_at.push(Instant::now());
                sent += 1;
                wrote = true;
            }
            if wrote {
                self.writer.flush()?;
            }
            // Take the next response, whichever request it answers.
            let response = read_response_line(&mut self.reader)?;
            if response.starts_with(proto::UNKNOWN_TAG) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server could not frame a request: {response}"),
                ));
            }
            let (tag, payload) = proto::split_tagged(&response)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let index = tag_to_index.remove(&tag).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unknown or duplicate tag T{tag}: {payload}"),
                )
            })?;
            results[index] = Some(payload.to_string());
            self.latencies_ns[index] = sent_at[index].elapsed().as_nanos() as u64;
            received += 1;
        }
        Ok(results.into_iter().map(|r| r.unwrap()).collect())
    }

    /// Single-request convenience over [`PipelinedClient::request_many`].
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        Ok(self.request_many(&[line])?.pop().unwrap())
    }

    /// Polite close: tagged `QUIT` (the server drains every in-flight
    /// response first, so `BYE` is the last line) and drop the connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}

/// A v3 binary-frame client: the windowed, tag-reassembling shape of
/// [`PipelinedClient`] over the length-prefixed frames of
/// [`crate::codec`] — no response-line parsing, just fixed-offset header
/// reads.
///
/// The connection upgrades at construction time (`V3` text hello; the
/// server's `OK V3 max_inflight=N` answer is the last text line on the
/// wire). Responses come back as frames whose status byte replaces the
/// `OK `/`ERR ` prefix; [`V3Client::request_many`] renders each back to
/// its v1-equivalent text line, which keeps every caller (tests, bin
/// sweeps, benches) byte-comparable across all three protocols.
pub struct V3Client {
    // Buffered: a window refill becomes one write syscall at the flush,
    // not one per frame.
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_tag: u64,
    window: usize,
    poisoned: bool,
    latencies_ns: Vec<u64>,
}

impl V3Client {
    /// Connect and upgrade to v3 framing, keeping up to `window` requests
    /// in flight (clamped to `1..=server max_inflight`).
    pub fn connect<A: ToSocketAddrs>(addr: A, window: usize) -> io::Result<V3Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        writeln!(writer, "{}", codec::HELLO_V3)?;
        writer.flush()?;
        let hello = read_response_line(&mut reader)?;
        let server_max = codec::parse_hello_ok(&hello)
            .filter(|max| *max > 0)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server rejected the V3 hello: {hello}"),
                )
            })?;
        Ok(V3Client {
            writer,
            reader,
            next_tag: 0,
            window: window.clamp(1, server_max),
            poisoned: false,
            latencies_ns: Vec::new(),
        })
    }

    /// Client-observed latency of each request in the **last completed**
    /// [`V3Client::request_many`] batch — same contract as
    /// [`PipelinedClient::last_latencies_ns`].
    pub fn last_latencies_ns(&self) -> &[u64] {
        &self.latencies_ns
    }

    /// The effective window after clamping to the server's cap.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Bound how long a read for the next frame may block (`None` =
    /// forever, the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send every request as a frame, keeping up to `window` in flight,
    /// and return the responses **in request order**, rendered to their
    /// v1 text form (`OK <body>` / `ERR <body>`). Same tag discipline and
    /// poisoning rules as [`PipelinedClient::request_many`].
    pub fn request_many<S: AsRef<str>>(&mut self, lines: &[S]) -> io::Result<Vec<String>> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        let attempt = self.request_many_inner(lines);
        if attempt.is_err() {
            self.poisoned = true;
        }
        attempt
    }

    fn request_many_inner<S: AsRef<str>>(&mut self, lines: &[S]) -> io::Result<Vec<String>> {
        let mut results: Vec<Option<String>> = Vec::with_capacity(lines.len());
        results.resize_with(lines.len(), || None);
        // Tags are assigned consecutively from this client's counter, so a
        // response's index is `tag - base` — pure arithmetic, no per-batch
        // tag map. Out-of-range or already-answered tags are still
        // protocol errors.
        let base_tag = self.next_tag;
        let mut payload: Vec<u8> = Vec::new();
        let mut sent_at: Vec<Instant> = Vec::with_capacity(lines.len());
        self.latencies_ns.clear();
        self.latencies_ns.resize(lines.len(), 0);
        let mut sent = 0;
        let mut received = 0;
        while received < lines.len() {
            // Refill the window, batching the frames into one flush.
            let mut wrote = false;
            while sent < lines.len() && sent - received < self.window {
                let tag = self.next_tag;
                self.next_tag += 1;
                codec::write_frame(
                    &mut self.writer,
                    tag,
                    codec::STATUS_OK,
                    lines[sent].as_ref().as_bytes(),
                )?;
                sent_at.push(Instant::now());
                sent += 1;
                wrote = true;
            }
            if wrote {
                self.writer.flush()?;
            }
            // Take the next frame (blocking), then drain every response
            // already sitting in the read buffer before refilling: the
            // server's writer retires responses in coalesced batches, so
            // consuming the whole batch here turns the refill into one
            // equally wide write burst instead of a one-frame-per-
            // response ping-pong — fewer syscalls on both ends.
            loop {
                // The payload buffer is reused across the whole batch.
                let (tag, status) = codec::read_frame_into(&mut self.reader, &mut payload)?
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection mid-batch",
                        )
                    })?;
                let index = tag
                    .checked_sub(base_tag)
                    .map(|i| i as usize)
                    .filter(|i| *i < sent && results[*i].is_none())
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("response frame for unknown or duplicate tag {tag}"),
                        )
                    })?;
                // Render back to the v1 text line (status byte -> prefix).
                let prefix = if status == codec::STATUS_OK {
                    "OK "
                } else {
                    "ERR "
                };
                let mut line = String::with_capacity(prefix.len() + payload.len());
                line.push_str(prefix);
                line.push_str(&String::from_utf8_lossy(&payload));
                results[index] = Some(line);
                self.latencies_ns[index] = sent_at[index].elapsed().as_nanos() as u64;
                received += 1;
                // Another frame's header already buffered? Keep draining.
                if received >= sent || self.reader.buffer().len() < codec::HEADER_LEN {
                    break;
                }
            }
        }
        Ok(results.into_iter().map(|r| r.unwrap()).collect())
    }

    /// Single-request convenience over [`V3Client::request_many`].
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        Ok(self.request_many(&[line])?.pop().unwrap())
    }

    /// Polite close: framed `QUIT` (the server drains every in-flight
    /// response first, so `BYE` is the last frame) and drop the
    /// connection.
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}

/// One shard's connection inside a [`ShardedClient`]: the address (the
/// ring identity) plus the live v3 connection, `None` once the shard has
/// failed (fail-fast: its keys answer `ERR shard down` from then on).
struct ShardConn {
    addr: String,
    conn: Option<V3Client>,
}

/// A shard-aware client: consistent-hashes each request's graph to its
/// owning shard (the same [`Ring`] + [`shard_key`] rule the router
/// uses), fans a batch out across the shards — one thread per shard,
/// each driving its own pipelined [`V3Client`] window with the existing
/// base-offset tag reassembly — and merges the responses back into
/// request order.
///
/// Failure semantics mirror the router and the per-connection poisoning
/// contract: a shard whose batch errors (death mid-window included) is
/// marked dead, every request routed to it — in this batch and later
/// ones — answers the literal line `ERR shard down`, and the surviving
/// shards keep serving. The call itself still returns `Ok`, so one dead
/// shard never masks the other shards' responses.
pub struct ShardedClient {
    shards: Vec<ShardConn>,
    ring: Ring,
    window: usize,
}

impl ShardedClient {
    /// Connect to every shard and upgrade each to v3 framing. The
    /// per-shard window is `window` clamped to the smallest shard's
    /// advertised cap, so every shard accepts the same depth. All shards
    /// must be reachable at construction (a client that starts with a
    /// dead shard should say so loudly); shards may die afterwards.
    pub fn connect(addrs: &[String], window: usize) -> io::Result<ShardedClient> {
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "sharded client needs at least one shard",
            ));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        let mut effective = window.max(1);
        for addr in addrs {
            let conn = V3Client::connect(addr.as_str(), window)?;
            effective = effective.min(conn.window());
            shards.push(ShardConn {
                addr: addr.clone(),
                conn: Some(conn),
            });
        }
        Ok(ShardedClient {
            shards,
            ring: Ring::new(addrs),
            window: effective,
        })
    }

    /// The effective per-shard window after clamping to every shard's cap.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Index of the shard owning `graph` — exposed so tests can predict
    /// which keys a killed shard takes down.
    pub fn shard_of(&self, graph: &proto::GraphRef) -> usize {
        self.ring.shard_of(&shard_key(graph))
    }

    /// Send every request line, each through its owning shard, and
    /// return the responses **in request order** rendered to their v1
    /// text form — exactly what [`V3Client::request_many`] returns for
    /// the same lines on an unsharded server. Lines that do not name a
    /// graph (`PING`, `STATS`, parse errors) go to shard 0, whose server
    /// answers them with the very strings a single server would.
    pub fn request_many<S: AsRef<str> + Sync>(&mut self, lines: &[S]) -> io::Result<Vec<String>> {
        let mut batches: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, line) in lines.iter().enumerate() {
            let shard = match Request::parse(line.as_ref()) {
                Ok(ref req) => match crate::ops::request_op(req) {
                    Some((graph, _)) => self.ring.shard_of(&shard_key(graph)),
                    None => 0,
                },
                Err(_) => 0,
            };
            batches[shard].push(i);
        }
        let mut results: Vec<Option<String>> = Vec::with_capacity(lines.len());
        results.resize_with(lines.len(), || None);
        let per_shard: Vec<Vec<(usize, String)>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(batches.iter())
                .map(|(shard, batch)| {
                    s.spawn(move || -> Vec<(usize, String)> {
                        if batch.is_empty() {
                            return Vec::new();
                        }
                        let sub: Vec<&str> = batch.iter().map(|&i| lines[i].as_ref()).collect();
                        let responses = match shard.conn.as_mut() {
                            Some(conn) => match conn.request_many(&sub) {
                                Ok(r) => r,
                                Err(_) => {
                                    // Death mid-window: the connection is
                                    // poisoned (tags can't be trusted), so
                                    // fail-fast every key this shard owns.
                                    shard.conn = None;
                                    vec!["ERR shard down".to_string(); batch.len()]
                                }
                            },
                            None => vec!["ERR shard down".to_string(); batch.len()],
                        };
                        batch.iter().copied().zip(responses).collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        });
        for (i, response) in per_shard.into_iter().flatten() {
            results[i] = Some(response);
        }
        Ok(results.into_iter().map(|r| r.unwrap()).collect())
    }

    /// Single-request convenience over [`ShardedClient::request_many`].
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        Ok(self.request_many(&[line])?.pop().unwrap())
    }

    /// The merged cluster `STATS` line (`OK STATS ...` with every shard's
    /// counters summed and the `shards= shards_up= shard_bytes=
    /// shard_evictions=` gauges appended — see
    /// [`registry::merge_stats_bodies`]). Fetched over short-lived v1
    /// connections so it never perturbs the pipelined v3 windows; a dead
    /// shard contributes zeros.
    pub fn stats(&self) -> String {
        let fetch = |addr: &str| -> Option<String> {
            let mut c = Client::connect(addr).ok()?;
            c.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
            let line = c.request("STATS").ok()?;
            let body = line.strip_prefix("OK ")?.to_string();
            let _ = c.quit();
            Some(body)
        };
        let bodies: Vec<Option<String>> = self.shards.iter().map(|s| fetch(&s.addr)).collect();
        format!("OK {}", registry::merge_stats_bodies(&bodies))
    }

    /// Polite close: framed `QUIT` to every live shard (each drains its
    /// in-flight responses first), ignoring shards that already died.
    pub fn quit(self) -> io::Result<()> {
        for shard in self.shards {
            if let Some(conn) = shard.conn {
                let _ = conn.quit();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A fake server that accepts one connection, feeds it `response`
    /// verbatim, and closes.
    fn fake_server(response: &'static [u8]) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Consume the request line so the client's write can't fail.
            let mut buf = [0u8; 256];
            let _ = std::io::Read::read(&mut s, &mut buf);
            s.write_all(response).unwrap();
            // Drop closes the connection.
        });
        addr
    }

    #[test]
    fn clean_eof_and_truncation_are_distinguished() {
        let mut eof = Client::connect(fake_server(b"")).unwrap();
        let e = eof.request("PING").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
        assert!(e.to_string().contains("clean EOF"), "{e}");

        let mut cut = Client::connect(fake_server(b"OK PON")).unwrap();
        let e = cut.request("PING").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
        assert!(e.to_string().contains("truncated"), "{e}");
    }

    #[test]
    fn read_timeout_unparks_a_client_on_a_hung_server() {
        // A listener that accepts and then never responds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().unwrap());
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let e = c.request("PING").unwrap_err();
        assert!(
            matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "hung server must surface as a timeout, got: {e}"
        );
        // The timeout may have consumed part of a response line, so the
        // connection is poisoned: a retry must fail fast rather than read
        // desynchronized frames.
        let e = c.request("PING").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::BrokenPipe);
        assert!(e.to_string().contains("poisoned"), "{e}");
        drop(hold);
    }
}
