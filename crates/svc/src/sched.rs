//! The batching job scheduler: a bounded MPMC queue drained by a fixed set
//! of worker-leader threads, each running its job on a pool **sub-team**.
//!
//! ## Why not one team per request?
//!
//! Before pool sub-teams, concurrent leaders serialized on the single
//! parked team — one request won the workers and the rest drained their
//! regions inline (the ROADMAP open item this subsystem resolves). Even
//! with sub-teams, a thread per request oversubscribes the machine the
//! moment requests outnumber cores, and MIS-2-sized jobs are small and
//! bursty (Blelloch et al.: expected polylog depth per MIS pass), so the
//! winning shape is a *few* warm leaders batching many cheap jobs:
//!
//! * `K = workers` leader threads pull jobs from one bounded queue;
//! * each leader runs its job under `with_pool(team)` where
//!   `team = threads / K`, so the K concurrent jobs *split* the parked
//!   workers via `mis2_prim::pool`'s sub-team dispatch instead of fighting
//!   over one team;
//! * the bounded queue applies backpressure to producers (connection
//!   handlers block in [`Scheduler::submit`] when the queue is full).
//!
//! Per-job statistics (queue wait, run time, team size) are aggregated in
//! [`SchedStats`] and surfaced through the `STATS` request.

use mis2_prim::pool;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A unit of work: produces the full response line for one request.
pub type Job = Box<dyn FnOnce() -> String + Send>;

/// Scheduler sizing. Zeros mean "pick a sensible default".
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedConfig {
    /// Total thread budget shared by all concurrently running jobs
    /// (0 = all logical CPUs).
    pub threads: usize,
    /// Worker-leader threads pulling from the queue
    /// (0 = `min(4, threads)`).
    pub workers: usize,
    /// Bounded queue capacity; producers block when full (0 = 64).
    pub queue_cap: usize,
}

/// Aggregated per-job statistics (durations in microseconds).
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Jobs completed (including panicked ones).
    pub jobs: AtomicU64,
    /// Total time jobs spent queued before a worker picked them up.
    pub queue_wait_us: AtomicU64,
    /// Total time jobs spent running.
    pub run_us: AtomicU64,
    /// Jobs that panicked (reported to the client as `ERR`).
    pub panics: AtomicU64,
}

/// One-shot completion slot a submitter waits on.
struct DoneSlot {
    result: Mutex<Option<String>>,
    ready: Condvar,
}

impl DoneSlot {
    fn complete(&self, line: String) {
        *self.result.lock().unwrap() = Some(line);
        self.ready.notify_all();
    }
}

/// Handle to a submitted job; [`JobHandle::wait`] blocks until the worker
/// publishes the response line.
pub struct JobHandle(Arc<DoneSlot>);

impl JobHandle {
    pub fn wait(self) -> String {
        let mut guard = self.0.result.lock().unwrap();
        loop {
            if let Some(line) = guard.take() {
                return line;
            }
            guard = self.0.ready.wait(guard).unwrap();
        }
    }
}

struct Queued {
    job: Job,
    enqueued: Instant,
    done: Arc<DoneSlot>,
}

struct Queue {
    jobs: VecDeque<Queued>,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
    team: usize,
    stats: SchedStats,
}

/// See the module docs.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    nworkers: usize,
}

impl Scheduler {
    pub fn new(cfg: SchedConfig) -> Scheduler {
        let threads = if cfg.threads == 0 {
            pool::max_threads()
        } else {
            cfg.threads.clamp(1, pool::MAX_TEAM)
        };
        // Never more leaders than budgeted threads: each leader runs a job
        // concurrently, so workers > threads would oversubscribe the very
        // budget `threads` declares.
        let nworkers = if cfg.workers == 0 {
            threads.min(4)
        } else {
            cfg.workers.clamp(1, threads)
        };
        let queue_cap = if cfg.queue_cap == 0 {
            64
        } else {
            cfg.queue_cap
        };
        // K concurrent jobs split the thread budget; each leader thread
        // counts toward its own sub-team. Floor division keeps the sum of
        // sub-teams within the budget (at most nworkers - 1 budgeted
        // threads stay idle from the remainder).
        let team = (threads / nworkers).max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap,
            team,
            stats: SchedStats::default(),
        });
        let workers = (0..nworkers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mis2-svc-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
            nworkers,
        }
    }

    /// Sub-team size each job runs with.
    pub fn team(&self) -> usize {
        self.inner.team
    }

    /// Number of worker-leader threads.
    pub fn workers(&self) -> usize {
        self.nworkers
    }

    /// Aggregated job statistics.
    pub fn stats(&self) -> &SchedStats {
        &self.inner.stats
    }

    /// Enqueue a job, blocking while the queue is full (backpressure).
    /// After [`Scheduler::shutdown`] the job is rejected immediately with
    /// an `ERR` response.
    pub fn submit(&self, job: Job) -> JobHandle {
        let done = Arc::new(DoneSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let mut q = self.inner.queue.lock().unwrap();
        while q.jobs.len() >= self.inner.queue_cap && !q.shutdown {
            q = self.inner.not_full.wait(q).unwrap();
        }
        if q.shutdown {
            drop(q);
            done.complete(crate::proto::err("scheduler shut down"));
            return JobHandle(done);
        }
        q.jobs.push_back(Queued {
            job,
            enqueued: Instant::now(),
            done: Arc::clone(&done),
        });
        drop(q);
        self.inner.not_empty.notify_one();
        JobHandle(done)
    }

    /// Stop the workers; queued-but-unstarted jobs complete with `ERR`
    /// and later [`Scheduler::submit`] calls are rejected. Idempotent, and
    /// takes `&self` so it works through a shared `Arc` even while
    /// connection handlers still hold clones.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.shutdown = true;
            for queued in q.jobs.drain(..) {
                queued
                    .done
                    .complete(crate::proto::err("scheduler shut down"));
            }
        }
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let queued = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(item) = q.jobs.pop_front() {
                    break item;
                }
                q = inner.not_empty.wait(q).unwrap();
            }
        };
        inner.not_full.notify_one();
        let wait_us = queued.enqueued.elapsed().as_micros() as u64;
        let start = Instant::now();
        // The job runs on this leader plus a sub-team of parked pool
        // workers; concurrent leaders' sub-teams split the pool. A panic
        // inside a job must not kill the worker — it becomes an ERR
        // response for that one request.
        let line = match catch_unwind(AssertUnwindSafe(|| pool::with_pool(inner.team, queued.job)))
        {
            Ok(line) => line,
            Err(_) => {
                inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                crate::proto::err("job panicked")
            }
        };
        let run_us = start.elapsed().as_micros() as u64;
        inner.stats.jobs.fetch_add(1, Ordering::Relaxed);
        inner
            .stats
            .queue_wait_us
            .fetch_add(wait_us, Ordering::Relaxed);
        inner.stats.run_us.fetch_add(run_us, Ordering::Relaxed);
        queued.done.complete(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(threads: usize, workers: usize, cap: usize) -> Scheduler {
        Scheduler::new(SchedConfig {
            threads,
            workers,
            queue_cap: cap,
        })
    }

    #[test]
    fn jobs_complete_with_their_own_results() {
        let s = sched(2, 2, 8);
        let handles: Vec<JobHandle> = (0..20)
            .map(|i| s.submit(Box::new(move || format!("OK job {i}"))))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), format!("OK job {i}"));
        }
        assert_eq!(s.stats().jobs.load(Ordering::Relaxed), 20);
        s.shutdown();
    }

    #[test]
    fn team_splits_thread_budget_across_workers() {
        let s = sched(8, 4, 4);
        assert_eq!(s.team(), 2);
        assert_eq!(s.workers(), 4);
        s.shutdown();
        let s = sched(1, 0, 0);
        assert_eq!((s.team(), s.workers()), (1, 1));
        s.shutdown();
        // An explicit worker count is clamped to the thread budget: a
        // 2-thread budget must never run 8 concurrent leaders.
        let s = sched(2, 8, 4);
        assert_eq!((s.team(), s.workers()), (1, 2));
        s.shutdown();
    }

    #[test]
    fn panicking_job_yields_err_and_worker_survives() {
        let s = sched(1, 1, 4);
        let bad = s.submit(Box::new(|| panic!("kaboom")));
        assert!(bad.wait().starts_with("ERR "));
        let good = s.submit(Box::new(|| "OK fine".into()));
        assert_eq!(good.wait(), "OK fine");
        assert_eq!(s.stats().panics.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn bounded_queue_applies_backpressure_but_completes_everything() {
        // Queue of 2 with 1 worker and 8 producers: submits block rather
        // than grow unboundedly, and every job still completes.
        let s = Arc::new(sched(1, 1, 2));
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for p in 0..8u64 {
                let s = Arc::clone(&s);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    for j in 0..5u64 {
                        let h = s.submit(Box::new(move || format!("OK {p}/{j}")));
                        assert_eq!(h.wait(), format!("OK {p}/{j}"));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 40);
        s.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs_and_is_idempotent() {
        let s = sched(1, 1, 4);
        let slow = s.submit(Box::new(|| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            "OK slow".into()
        }));
        assert_eq!(slow.wait(), "OK slow");
        s.shutdown();
        // shutdown takes &self (handlers may still hold Arc clones), so
        // the same scheduler must now reject and survive a second call.
        let rejected = s.submit(Box::new(|| "OK never".into()));
        assert!(rejected.wait().starts_with("ERR "));
        s.shutdown();
    }
}
