//! The batching job scheduler: a bounded MPMC queue drained by a fixed set
//! of worker-leader threads, each running its job on a pool **sub-team**.
//!
//! ## Why not one team per request?
//!
//! Before pool sub-teams, concurrent leaders serialized on the single
//! parked team — one request won the workers and the rest drained their
//! regions inline (the ROADMAP open item this subsystem resolves). Even
//! with sub-teams, a thread per request oversubscribes the machine the
//! moment requests outnumber cores, and MIS-2-sized jobs are small and
//! bursty (Blelloch et al.: expected polylog depth per MIS pass), so the
//! winning shape is a *few* warm leaders batching many cheap jobs:
//!
//! * `K = workers` leader threads pull jobs from one bounded queue;
//! * each leader runs its job under `with_pool(team)` where
//!   `team = threads / K`, so the K concurrent jobs *split* the parked
//!   workers via `mis2_prim::pool`'s sub-team dispatch instead of fighting
//!   over one team;
//! * the bounded queue applies backpressure to producers (connection
//!   handlers block in [`Scheduler::submit_with`] when the queue is full).
//!
//! ## Completion delivery
//!
//! The scheduler's primitive is **completion delivery**, not blocking:
//! [`Scheduler::submit_with`] takes the job *and* a [`Completion`]
//! callback, and the worker-leader that finishes the job hands the
//! structured [`crate::ops::Response`] to the callback instead of parking
//! a waiter. That is what lets the pipelined servers keep one reader
//! thread parsing new requests while earlier jobs run — each completion
//! pushes its response into the connection's writer channel, in whatever
//! order jobs finish, and the per-connection writer renders it for its
//! protocol (v2 text line or v3 binary frame).
//!
//! A completion is invoked **exactly once** for every accepted job, on
//! whichever thread retires it: a worker-leader after a run or a panic
//! (`ERR job panicked`), or the thread calling [`Scheduler::shutdown`]
//! for jobs still queued (`ERR scheduler shut down`). Completions must
//! never block indefinitely — a blocked completion wedges a worker-leader
//! (or the shutdown path) for every other connection. The server
//! guarantees this with its window-slot protocol: a completion only ever
//! sends into channel capacity its request already reserved.
//!
//! [`Scheduler::submit`] remains as a thin blocking adapter: it submits
//! with a completion that fills a one-shot slot and returns a
//! [`JobHandle`] whose `wait()` parks on that slot — exactly the v1
//! one-request-per-connection behavior, now layered on the completion
//! mode.
//!
//! Per-job statistics (queue wait, run time, team size) are aggregated in
//! [`SchedStats`] and surfaced through the `STATS` request.

use mis2_prim::pool;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A unit of work: produces the [`crate::ops::Response`] for one request.
/// Carrying the structured response (rather than a pre-rendered `String`)
/// is what lets the v3 server hand interned response bytes straight to the
/// writer — the protocol-specific rendering happens per connection, after
/// the scheduler is done.
pub type Job = Box<dyn FnOnce() -> crate::ops::Response + Send>;

/// Receives the finished response for one job, exactly once, on the
/// thread that retired the job. Must not block indefinitely (see the
/// module docs).
pub type Completion = Box<dyn FnOnce(crate::ops::Response) + Send>;

/// Scheduler sizing. Zeros mean "pick a sensible default".
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedConfig {
    /// Total thread budget shared by all concurrently running jobs
    /// (0 = all logical CPUs).
    pub threads: usize,
    /// Worker-leader threads pulling from the queue
    /// (0 = `min(4, threads)`).
    pub workers: usize,
    /// Bounded queue capacity; producers block when full (0 = 64).
    pub queue_cap: usize,
}

/// Aggregated per-job statistics (durations in microseconds).
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Jobs completed (including panicked ones).
    pub jobs: AtomicU64,
    /// Total time jobs spent queued before a worker picked them up.
    /// Saturates instead of wrapping, so the mean stays meaningful on
    /// long-lived servers.
    pub queue_wait_us: AtomicU64,
    /// Number of waits summed into `queue_wait_us` (equals `jobs`, but
    /// paired explicitly so `STATS` consumers can compute a mean
    /// without relying on that coincidence).
    pub queue_wait_count: AtomicU64,
    /// Total time jobs spent running. Saturates instead of wrapping.
    pub run_us: AtomicU64,
    /// Jobs that panicked (reported to the client as `ERR`).
    pub panics: AtomicU64,
}

/// Add without wrapping: a duration sum that hits `u64::MAX` pins there
/// rather than silently restarting from zero.
fn saturating_add(counter: &AtomicU64, n: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// One-shot completion slot a submitter waits on.
struct DoneSlot {
    result: Mutex<Option<crate::ops::Response>>,
    ready: Condvar,
}

impl DoneSlot {
    fn complete(&self, resp: crate::ops::Response) {
        *self.result.lock().unwrap() = Some(resp);
        self.ready.notify_all();
    }
}

/// Handle to a job submitted through the blocking adapter
/// [`Scheduler::submit`]; [`JobHandle::wait`] blocks until the completion
/// publishes the response, rendered to its v1 text line.
pub struct JobHandle(Arc<DoneSlot>);

impl JobHandle {
    pub fn wait(self) -> String {
        let mut guard = self.0.result.lock().unwrap();
        loop {
            if let Some(resp) = guard.take() {
                return resp.to_line();
            }
            guard = self.0.ready.wait(guard).unwrap();
        }
    }
}

struct Queued {
    job: Job,
    enqueued: Instant,
    done: Completion,
}

struct Queue {
    jobs: VecDeque<Queued>,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    queue_cap: usize,
    team: usize,
    stats: SchedStats,
}

/// See the module docs.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    nworkers: usize,
}

impl Scheduler {
    pub fn new(cfg: SchedConfig) -> Scheduler {
        let threads = if cfg.threads == 0 {
            pool::max_threads()
        } else {
            cfg.threads.clamp(1, pool::MAX_TEAM)
        };
        // Never more leaders than budgeted threads: each leader runs a job
        // concurrently, so workers > threads would oversubscribe the very
        // budget `threads` declares.
        let nworkers = if cfg.workers == 0 {
            threads.min(4)
        } else {
            cfg.workers.clamp(1, threads)
        };
        let queue_cap = if cfg.queue_cap == 0 {
            64
        } else {
            cfg.queue_cap
        };
        // K concurrent jobs split the thread budget; each leader thread
        // counts toward its own sub-team. Floor division keeps the sum of
        // sub-teams within the budget (at most nworkers - 1 budgeted
        // threads stay idle from the remainder).
        let team = (threads / nworkers).max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap,
            team,
            stats: SchedStats::default(),
        });
        let workers = (0..nworkers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mis2-svc-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
            nworkers,
        }
    }

    /// Sub-team size each job runs with.
    pub fn team(&self) -> usize {
        self.inner.team
    }

    /// Number of worker-leader threads.
    pub fn workers(&self) -> usize {
        self.nworkers
    }

    /// Aggregated job statistics.
    pub fn stats(&self) -> &SchedStats {
        &self.inner.stats
    }

    /// Enqueue a job with a completion callback, blocking while the queue
    /// is full (backpressure). The completion receives the full response
    /// line exactly once — from a worker-leader in completion order, or
    /// immediately (on this thread) with an `ERR` line if the scheduler is
    /// already shut down. This is the primitive the pipelined server
    /// builds on; see the module docs for the no-blocking rule completions
    /// must obey.
    pub fn submit_with(&self, job: Job, done: Completion) {
        let mut q = self.inner.queue.lock().unwrap();
        while q.jobs.len() >= self.inner.queue_cap && !q.shutdown {
            q = self.inner.not_full.wait(q).unwrap();
        }
        if q.shutdown {
            drop(q);
            done(crate::ops::Response::err("scheduler shut down"));
            return;
        }
        q.jobs.push_back(Queued {
            job,
            enqueued: Instant::now(),
            done,
        });
        drop(q);
        self.inner.not_empty.notify_one();
    }

    /// Blocking adapter over [`Scheduler::submit_with`]: the returned
    /// handle's `wait()` parks until the completion fires. After
    /// [`Scheduler::shutdown`] the job is rejected immediately with an
    /// `ERR` response.
    pub fn submit(&self, job: Job) -> JobHandle {
        let done = Arc::new(DoneSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        let slot = Arc::clone(&done);
        self.submit_with(job, Box::new(move |resp| slot.complete(resp)));
        JobHandle(done)
    }

    /// Stop the workers; queued-but-unstarted jobs complete with `ERR`
    /// and later [`Scheduler::submit`] calls are rejected. Idempotent, and
    /// takes `&self` so it works through a shared `Arc` even while
    /// connection handlers still hold clones.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.shutdown = true;
            let drained: Vec<Queued> = q.jobs.drain(..).collect();
            drop(q);
            // Completions run outside the queue lock: one may (briefly)
            // take other locks, and holding the queue lock across foreign
            // code invites lock-order inversions.
            for queued in drained {
                (queued.done)(crate::ops::Response::err("scheduler shut down"));
            }
        }
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for w in self.workers.lock().unwrap().drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let queued = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(item) = q.jobs.pop_front() {
                    break item;
                }
                q = inner.not_empty.wait(q).unwrap();
            }
        };
        inner.not_full.notify_one();
        let wait_us = queued.enqueued.elapsed().as_micros() as u64;
        let start = Instant::now();
        // The job runs on this leader plus a sub-team of parked pool
        // workers; concurrent leaders' sub-teams split the pool. A panic
        // inside a job must not kill the worker — it becomes an ERR
        // response for that one request.
        let resp = match catch_unwind(AssertUnwindSafe(|| pool::with_pool(inner.team, queued.job)))
        {
            Ok(resp) => resp,
            Err(_) => {
                inner.stats.panics.fetch_add(1, Ordering::Relaxed);
                crate::ops::Response::err("job panicked")
            }
        };
        let run_us = start.elapsed().as_micros() as u64;
        inner.stats.jobs.fetch_add(1, Ordering::Relaxed);
        saturating_add(&inner.stats.queue_wait_us, wait_us);
        inner.stats.queue_wait_count.fetch_add(1, Ordering::Relaxed);
        saturating_add(&inner.stats.run_us, run_us);
        // A panicking completion must not take the worker-leader down with
        // it (the job's response is lost to its connection, but every
        // other connection keeps its scheduler).
        let done = queued.done;
        if catch_unwind(AssertUnwindSafe(move || done(resp))).is_err() {
            inner.stats.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Response;

    fn ok(body: &str) -> Response {
        Response::ok_text(body.to_string())
    }

    fn sched(threads: usize, workers: usize, cap: usize) -> Scheduler {
        Scheduler::new(SchedConfig {
            threads,
            workers,
            queue_cap: cap,
        })
    }

    #[test]
    fn jobs_complete_with_their_own_results() {
        let s = sched(2, 2, 8);
        let handles: Vec<JobHandle> = (0..20)
            .map(|i| s.submit(Box::new(move || Response::ok_text(format!("job {i}")))))
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.wait(), format!("OK job {i}"));
        }
        assert_eq!(s.stats().jobs.load(Ordering::Relaxed), 20);
        // Every summed wait is paired with a count, so a mean queue
        // wait is computable from STATS.
        assert_eq!(s.stats().queue_wait_count.load(Ordering::Relaxed), 20);
        s.shutdown();
    }

    #[test]
    fn duration_sums_saturate_instead_of_wrapping() {
        let c = AtomicU64::new(u64::MAX - 5);
        saturating_add(&c, 100);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
        saturating_add(&c, 1);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn team_splits_thread_budget_across_workers() {
        let s = sched(8, 4, 4);
        assert_eq!(s.team(), 2);
        assert_eq!(s.workers(), 4);
        s.shutdown();
        let s = sched(1, 0, 0);
        assert_eq!((s.team(), s.workers()), (1, 1));
        s.shutdown();
        // An explicit worker count is clamped to the thread budget: a
        // 2-thread budget must never run 8 concurrent leaders.
        let s = sched(2, 8, 4);
        assert_eq!((s.team(), s.workers()), (1, 2));
        s.shutdown();
    }

    #[test]
    fn panicking_job_yields_err_and_worker_survives() {
        let s = sched(1, 1, 4);
        let bad = s.submit(Box::new(|| panic!("kaboom")));
        assert!(bad.wait().starts_with("ERR "));
        let good = s.submit(Box::new(|| ok("fine")));
        assert_eq!(good.wait(), "OK fine");
        assert_eq!(s.stats().panics.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn bounded_queue_applies_backpressure_but_completes_everything() {
        // Queue of 2 with 1 worker and 8 producers: submits block rather
        // than grow unboundedly, and every job still completes.
        let s = Arc::new(sched(1, 1, 2));
        let done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for p in 0..8u64 {
                let s = Arc::clone(&s);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    for j in 0..5u64 {
                        let h = s.submit(Box::new(move || Response::ok_text(format!("{p}/{j}"))));
                        assert_eq!(h.wait(), format!("OK {p}/{j}"));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 40);
        s.shutdown();
    }

    #[test]
    fn completions_deliver_in_completion_order_not_submit_order() {
        // Two workers: a slow job submitted first and a fast job second.
        // The fast job's completion must arrive first — the scheduler
        // delivers in completion order, which is the whole point of the
        // pipelined v2 protocol.
        let s = sched(2, 2, 8);
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        let slow_tx = tx.clone();
        s.submit_with(
            Box::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(150));
                ok("slow")
            }),
            Box::new(move |resp| slow_tx.send(resp.to_line()).unwrap()),
        );
        let fast_tx = tx.clone();
        s.submit_with(
            Box::new(|| ok("fast")),
            Box::new(move |resp| fast_tx.send(resp.to_line()).unwrap()),
        );
        assert_eq!(rx.recv().unwrap(), "OK fast");
        assert_eq!(rx.recv().unwrap(), "OK slow");
        s.shutdown();
    }

    #[test]
    fn shutdown_retires_queued_jobs_through_their_completions() {
        // One worker busy with a slow job; three more queue behind it.
        // Shutdown must hand every queued job's completion an ERR line
        // (exactly-once delivery), while the in-flight job finishes.
        let s = sched(1, 1, 8);
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        let slow_tx = tx.clone();
        s.submit_with(
            Box::new(move || {
                started_tx.send(()).unwrap();
                std::thread::sleep(std::time::Duration::from_millis(100));
                ok("slow")
            }),
            Box::new(move |resp| slow_tx.send(resp.to_line()).unwrap()),
        );
        started_rx.recv().unwrap();
        for _ in 0..3 {
            let tx = tx.clone();
            s.submit_with(
                Box::new(|| ok("never runs")),
                Box::new(move |resp| tx.send(resp.to_line()).unwrap()),
            );
        }
        s.shutdown();
        drop(tx);
        let mut lines: Vec<String> = rx.iter().collect();
        lines.sort();
        assert_eq!(lines.len(), 4, "every completion fires exactly once");
        assert_eq!(lines[3], "OK slow");
        assert!(
            lines[..3].iter().all(|l| l.starts_with("ERR ")),
            "{lines:?}"
        );
        // A post-shutdown submit_with completes inline with ERR.
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        s.submit_with(
            Box::new(|| ok("never")),
            Box::new(move |resp| tx.send(resp.to_line()).unwrap()),
        );
        assert!(rx.recv().unwrap().starts_with("ERR "));
    }

    #[test]
    fn panicking_completion_does_not_kill_the_worker() {
        let s = sched(1, 1, 4);
        s.submit_with(
            Box::new(|| ok("doomed")),
            Box::new(|_| panic!("completion kaboom")),
        );
        // The same (only) worker must still retire later jobs.
        let good = s.submit(Box::new(|| ok("fine")));
        assert_eq!(good.wait(), "OK fine");
        assert_eq!(s.stats().panics.load(Ordering::Relaxed), 1);
        s.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_jobs_and_is_idempotent() {
        let s = sched(1, 1, 4);
        let slow = s.submit(Box::new(|| {
            std::thread::sleep(std::time::Duration::from_millis(50));
            ok("slow")
        }));
        assert_eq!(slow.wait(), "OK slow");
        s.shutdown();
        // shutdown takes &self (handlers may still hold Arc clones), so
        // the same scheduler must now reject and survive a second call.
        let rejected = s.submit(Box::new(|| ok("never")));
        assert!(rejected.wait().starts_with("ERR "));
        s.shutdown();
    }
}
