//! The binary v3 frame codec: length-prefixed frames with a fixed
//! little-endian header, no per-frame text parsing.
//!
//! ## Frame layout
//!
//! Every v3 frame — request and response alike — is a fixed 13-byte
//! header followed by exactly `len` payload bytes:
//!
//! ```text
//! offset  size  field    encoding
//! ------  ----  -------  --------------------------------------------
//!      0     8  tag      u64, little-endian (client-chosen, echoed)
//!      8     4  len      u32, little-endian (payload byte count)
//!     12     1  status   u8: 0 = OK, 1 = ERR (0 on requests)
//!     13   len  payload  raw bytes
//! ```
//!
//! A *request* payload is the v1 request text (`MIS2 ecology2`,
//! `COARSEN g 3`, ... — see [`crate::proto`]); a *response* payload is
//! the v1 response body, i.e. everything after the `OK ` / `ERR ` prefix,
//! with the prefix folded into the `status` byte. That makes the mapping
//! between a v3 frame and its v1 line mechanical ([`Frame::to_line`]),
//! which is how the e2e tests and the CI v3 smoke leg prove every v3
//! payload byte-identical to the v1 text.
//!
//! ## Negotiation
//!
//! A connection upgrades by sending the text hello line [`HELLO_V3`]
//! (`V3`) as its first line; the server answers the *text* line
//! `OK V3 max_inflight=<n>` ([`hello_ok`]) and both directions switch to
//! binary frames from the next byte on. v1 and v2 connections are
//! unchanged and mix freely with v3 on one server — the framing mode is
//! per-connection.
//!
//! The codec itself is payload-agnostic: tags and arbitrary payload bytes
//! round-trip unchanged ([`encode_frame`] / [`decode_frame`] are exact
//! inverses, property-tested), while the *server* additionally requires
//! request payloads to be UTF-8 text and caps payloads at
//! [`MAX_PAYLOAD`] bytes — an oversized header is answered with an ERR
//! frame under its own tag (binary tags always parse, so there is no v3
//! analog of v2's reserved `T?` marker) and the connection closes, the
//! same contract as v2's over-long lines.
//!
//! ## Why binary
//!
//! v2 parses decimal tags and re-renders every response into a fresh
//! `String`. The v3 header is stamped and read with fixed-offset
//! little-endian loads, and a cached response is written straight from
//! the registry's interned bytes (see [`crate::registry`]) — a hit is a
//! header stamp plus a vectored write, zero serialization and zero
//! payload allocation.

use crate::proto;
use std::fmt;
use std::io::{self, BufRead, Write};

/// The untagged text hello line that upgrades a connection to v3 binary
/// framing.
pub const HELLO_V3: &str = "V3";

/// Fixed header size in bytes: `u64` tag + `u32` len + `u8` status.
pub const HEADER_LEN: usize = 13;

/// `status` byte of a successful response (and of every request).
pub const STATUS_OK: u8 = 0;

/// `status` byte of an error response.
pub const STATUS_ERR: u8 = 1;

/// Maximum payload bytes the server accepts or emits in one frame — the
/// same bound as v1/v2's [`proto::MAX_LINE`], for the same reason: a
/// hostile header must not make the server allocate without limit.
pub const MAX_PAYLOAD: usize = proto::MAX_LINE;

/// One decoded v3 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub tag: u64,
    pub status: u8,
    pub payload: Vec<u8>,
}

impl Frame {
    /// Render the frame back to its v1 text line (`OK <payload>` /
    /// `ERR <payload>`): the mechanical inverse mapping the e2e diffs
    /// rely on. Response payloads are always UTF-8 (the server renders
    /// them from strings); invalid bytes are replaced rather than
    /// panicking because this also runs on untrusted test input.
    pub fn to_line(&self) -> String {
        let body = String::from_utf8_lossy(&self.payload);
        if self.status == STATUS_OK {
            format!("OK {body}")
        } else {
            format!("ERR {body}")
        }
    }
}

/// Why a byte buffer failed to decode as a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header + advertised payload require.
    Truncated { need: usize, have: usize },
    /// The header advertises a payload larger than [`MAX_PAYLOAD`].
    Oversized { len: usize },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::Oversized { len } => {
                write!(f, "oversized frame: payload {len} > max {MAX_PAYLOAD}")
            }
        }
    }
}

/// Stamp a header. Fixed-offset little-endian stores — no formatting, no
/// allocation.
pub fn encode_header(tag: u64, len: u32, status: u8) -> [u8; HEADER_LEN] {
    let mut hdr = [0u8; HEADER_LEN];
    hdr[0..8].copy_from_slice(&tag.to_le_bytes());
    hdr[8..12].copy_from_slice(&len.to_le_bytes());
    hdr[12] = status;
    hdr
}

/// Read a header back: `(tag, len, status)`.
pub fn decode_header(hdr: &[u8; HEADER_LEN]) -> (u64, u32, u8) {
    let tag = u64::from_le_bytes(hdr[0..8].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes"));
    (tag, len, hdr[12])
}

/// Encode one whole frame into a fresh buffer (test/client convenience —
/// the server's writer stamps headers into its batch buffer instead).
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`]: an oversized body would
/// otherwise truncate the length through the `u32` cast and emit a frame
/// the peer rejects as `Oversized`, poisoning the connection. Callers
/// that can see untrusted sizes use [`write_frame`], which returns an
/// error instead.
pub fn encode_frame(tag: u64, status: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "{}",
        FrameError::Oversized { len: payload.len() }
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&encode_header(tag, payload.len() as u32, status));
    buf.extend_from_slice(payload);
    buf
}

/// Decode one frame from the front of `buf`, returning it and the bytes
/// consumed. Exact inverse of [`encode_frame`] for any tag, status, and
/// payload bytes (property-tested); rejects truncated buffers and
/// headers advertising more than [`MAX_PAYLOAD`].
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            need: HEADER_LEN,
            have: buf.len(),
        });
    }
    let hdr: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("length checked");
    let (tag, len, status) = decode_header(hdr);
    let len = len as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized { len });
    }
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    Ok((
        Frame {
            tag,
            status,
            payload: buf[HEADER_LEN..total].to_vec(),
        },
        total,
    ))
}

/// Read exactly one header from a stream. `Ok(None)` is a clean EOF (the
/// peer closed between frames); EOF *inside* a header is an
/// `UnexpectedEof` error (the peer died mid-frame).
pub fn read_header(r: &mut impl BufRead) -> io::Result<Option<[u8; HEADER_LEN]>> {
    let mut hdr = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        let n = r.read(&mut hdr[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("connection closed mid-header ({got} of {HEADER_LEN} bytes)"),
            ));
        }
        got += n;
    }
    Ok(Some(hdr))
}

/// Read one whole frame (header + payload) from a stream; `Ok(None)` is a
/// clean EOF between frames. An oversized header is `InvalidData` — used
/// by the client, which trusts the server to respect [`MAX_PAYLOAD`].
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Frame>> {
    let mut payload = Vec::new();
    Ok(
        read_frame_into(r, &mut payload)?.map(|(tag, status)| Frame {
            tag,
            status,
            payload,
        }),
    )
}

/// [`read_frame`] without the per-frame allocation: the payload lands in
/// the caller's buffer (cleared and refilled), and only `(tag, status)`
/// is returned. This is the hot-loop read for clients pulling a window's
/// worth of responses.
pub fn read_frame_into(
    r: &mut impl BufRead,
    payload: &mut Vec<u8>,
) -> io::Result<Option<(u64, u8)>> {
    let Some(hdr) = read_header(r)? else {
        return Ok(None);
    };
    let (tag, len, status) = decode_header(&hdr);
    if len as usize > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized { len: len as usize }.to_string(),
        ));
    }
    payload.clear();
    payload.resize(len as usize, 0);
    r.read_exact(payload)?;
    Ok(Some((tag, status)))
}

/// Write one frame (client convenience; callers batch via `BufWriter`).
///
/// Rejects payloads over [`MAX_PAYLOAD`] with `InvalidData` *before*
/// writing anything: encoding one would truncate the length through the
/// `u32` cast (or advertise a length the peer rejects as `Oversized`),
/// desynchronizing the stream and poisoning the connection. Refusing at
/// encode time keeps the failure scoped to the one oversized request.
pub fn write_frame(w: &mut impl Write, tag: u64, status: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Oversized { len: payload.len() }.to_string(),
        ));
    }
    w.write_all(&encode_header(tag, payload.len() as u32, status))?;
    w.write_all(payload)
}

/// The server's *text* answer to the [`HELLO_V3`] hello, advertising the
/// per-connection window cap. Binary framing starts on the next byte.
pub fn hello_ok(max_inflight: usize) -> String {
    proto::hello_ok_for(HELLO_V3, max_inflight)
}

/// Parse the window cap out of a [`hello_ok`] line.
pub fn parse_hello_ok(line: &str) -> Option<usize> {
    proto::parse_hello_ok_for(HELLO_V3, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        for (tag, len, status) in [
            (0u64, 0u32, STATUS_OK),
            (42, 17, STATUS_ERR),
            (u64::MAX, u32::MAX, 7),
        ] {
            let hdr = encode_header(tag, len, status);
            assert_eq!(decode_header(&hdr), (tag, len, status));
        }
    }

    #[test]
    fn header_is_little_endian_at_fixed_offsets() {
        let hdr = encode_header(0x0102_0304_0506_0708, 0x0A0B_0C0D, 0xEE);
        assert_eq!(
            &hdr[0..8],
            &[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]
        );
        assert_eq!(&hdr[8..12], &[0x0D, 0x0C, 0x0B, 0x0A]);
        assert_eq!(hdr[12], 0xEE);
    }

    #[test]
    fn frame_round_trips_through_encode_decode() {
        let f = Frame {
            tag: 99,
            status: STATUS_OK,
            payload: b"MIS2 ecology2".to_vec(),
        };
        let buf = encode_frame(f.tag, f.status, &f.payload);
        let (got, used) = decode_frame(&buf).unwrap();
        assert_eq!(got, f);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn truncated_and_oversized_buffers_are_rejected() {
        let buf = encode_frame(7, STATUS_OK, b"hello");
        for cut in 0..buf.len() {
            assert!(
                matches!(decode_frame(&buf[..cut]), Err(FrameError::Truncated { .. })),
                "cut at {cut} must be truncated"
            );
        }
        let big = encode_header(1, (MAX_PAYLOAD + 1) as u32, STATUS_OK);
        assert!(matches!(
            decode_frame(&big),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn frames_render_back_to_v1_lines() {
        let ok = Frame {
            tag: 1,
            status: STATUS_OK,
            payload: b"PONG".to_vec(),
        };
        assert_eq!(ok.to_line(), "OK PONG");
        let err = Frame {
            tag: 2,
            status: STATUS_ERR,
            payload: b"nope".to_vec(),
        };
        assert_eq!(err.to_line(), "ERR nope");
    }

    #[test]
    fn stream_reads_distinguish_clean_eof_from_mid_frame_death() {
        let buf = encode_frame(3, STATUS_OK, b"xyz");
        let mut full = io::Cursor::new(buf.clone());
        let f = read_frame(&mut full).unwrap().unwrap();
        assert_eq!(
            (f.tag, f.status, f.payload.as_slice()),
            (3, STATUS_OK, &b"xyz"[..])
        );
        assert!(read_frame(&mut full).unwrap().is_none(), "clean EOF");

        let mut cut = io::Cursor::new(buf[..HEADER_LEN - 2].to_vec());
        let e = read_frame(&mut cut).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn write_frame_accepts_exactly_max_payload() {
        let payload = vec![0x5A_u8; MAX_PAYLOAD];
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, STATUS_OK, &payload).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + MAX_PAYLOAD);
        let (f, used) = decode_frame(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!((f.tag, f.status), (9, STATUS_OK));
        assert_eq!(f.payload, payload);
    }

    #[test]
    fn write_frame_rejects_one_past_max_payload_without_writing() {
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        let mut buf = Vec::new();
        let e = write_frame(&mut buf, 9, STATUS_OK, &payload).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(
            buf.is_empty(),
            "an oversized payload must not desynchronize the stream"
        );
    }

    #[test]
    #[should_panic(expected = "oversized frame")]
    fn encode_frame_panics_past_max_payload() {
        let payload = vec![0u8; MAX_PAYLOAD + 1];
        let _ = encode_frame(1, STATUS_OK, &payload);
    }

    #[test]
    fn hello_round_trips_the_window_cap() {
        let line = hello_ok(64);
        assert_eq!(line, "OK V3 max_inflight=64");
        assert_eq!(parse_hello_ok(&line), Some(64));
        assert_eq!(parse_hello_ok("OK V2 max_inflight=64"), None);
        assert_eq!(parse_hello_ok("ERR nope"), None);
    }
}
