//! The line-oriented request protocol spoken over the loopback socket —
//! v1 (blocking, one response in request order) and the pipelined,
//! tag-framed v2. (The binary v3 framing lives in [`crate::codec`]; its
//! request payloads are these same v1 request texts, and its upgrade
//! hello reuses this module's negotiation spelling via
//! [`hello_ok_for`].)
//!
//! ## v1 — one request line, one response line, in order
//!
//! UTF-8, fields separated by single spaces:
//!
//! ```text
//! request  = "MIS2" SP graph
//!          | "COARSEN" SP graph SP levels        ; 1 <= levels <= 32
//!          | "SOLVE" SP graph SP ("cg"|"gmres")
//!          | "STATS" | "PING" | "QUIT"
//! graph    = suite workload name | path ending in ".mtx"
//! response = "OK" SP body | "ERR" SP message
//! ```
//!
//! A v1 connection can have exactly one request in flight: the server
//! answers each line before reading the next, so responses arrive in
//! request order.
//!
//! ## v2 — tagged frames, out-of-order completion
//!
//! A connection upgrades by sending the bare hello line [`HELLO_V2`]
//! (`V2`); the server answers `OK V2 max_inflight=<n>` where `<n>` is the
//! per-connection window cap. After the upgrade every request line carries
//! a client-chosen decimal tag and every response echoes it:
//!
//! ```text
//! v2-request  = "V2"                              ; hello, once, untagged
//!             | tag SP request                    ; request as in v1
//! tag         = "T" 1*DIGIT                       ; client-chosen, u64,
//!                                                 ;   canonical decimal
//!                                                 ;   (no leading zeros)
//! v2-response = tag SP response                   ; response as in v1
//!             | "T?" SP "ERR" SP message          ; line whose tag could
//!                                                 ;   not be parsed
//! ```
//!
//! The client may keep up to `max_inflight` tagged requests outstanding
//! (the *window*); the server pipelines them through the batching
//! scheduler and writes responses in **completion order**, which need not
//! be request order — the tag is what lets the client reassemble. Errors
//! echo the tag too (a parse failure on `T7 MIS2` answers `T7 ERR ...`),
//! so every tagged request gets exactly one tagged response. Lines whose
//! *tag itself* is unparseable — including v1-style untagged lines sent
//! after the upgrade — are answered with the reserved marker [`UNKNOWN_TAG`]
//! (`T?`, never a valid client tag). Tag uniqueness within the window is
//! the client's responsibility: the server echoes duplicates verbatim,
//! exactly like the memcached binary protocol's opaque field.
//!
//! Determinism contract: for a fixed graph and op, a response's *payload*
//! (everything after the tag, fingerprints included) is byte-identical to
//! the v1/direct-library answer regardless of arrival order.
//!
//! The protocol is deliberately tiny and text-only: it exists so many
//! clients can multiplex MIS-2 / coarsening / solver work onto one warm
//! process, not to be a general RPC system. Responses for compute requests
//! embed order-sensitive fingerprints of the full result (see
//! [`crate::ops`]), which is how the end-to-end tests assert that a served
//! answer is bitwise-identical to a direct library call.

use std::fmt;

/// The untagged hello line that upgrades a connection to v2 framing.
pub const HELLO_V2: &str = "V2";

/// Tag marker echoed on responses to lines whose tag could not be parsed
/// (malformed tag token, or an untagged v1 line on a v2 connection). `?`
/// is not a digit, so no client-chosen tag ever collides with it.
pub const UNKNOWN_TAG: &str = "T?";

/// Maximum request line length in bytes (including the tag, excluding the
/// newline). Longer lines get `ERR line too long` and the connection is
/// closed — an unterminated line must not grow the server's read buffer
/// without bound.
pub const MAX_LINE: usize = 64 * 1024;

/// How a request names its graph: a synthetic suite workload (built by
/// `mis2_graph::suite`) or a Matrix Market file on the server's disk.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphRef {
    /// A name from `mis2_graph::suite::workloads()`.
    Suite(String),
    /// A path to a `.mtx` file, resolved on the server side.
    Mtx(String),
}

impl GraphRef {
    /// Classify a protocol token: anything ending in `.mtx` is a file
    /// path, everything else a suite workload name.
    pub fn parse(tok: &str) -> Result<GraphRef, String> {
        if tok.is_empty() {
            return Err("empty graph name".into());
        }
        if tok.ends_with(".mtx") {
            Ok(GraphRef::Mtx(tok.to_string()))
        } else {
            Ok(GraphRef::Suite(tok.to_string()))
        }
    }

    /// The token as it appears on the wire (and in response bodies).
    pub fn token(&self) -> &str {
        match self {
            GraphRef::Suite(s) | GraphRef::Mtx(s) => s,
        }
    }

    /// The cache-key form of this reference: `.mtx` paths are
    /// canonicalized (`.`/`..`/symlinks resolved against the filesystem),
    /// so `./g.mtx` and `g.mtx` intern **one** graph instead of two cache
    /// entries. Suite names are already canonical. `None` means the path
    /// did not resolve (typically a missing file); callers fall back to
    /// the literal spelling — which keeps error messages in the client's
    /// words — and must not memoize the failure, since the file may
    /// appear later. Response bodies always echo the wire token, never
    /// this form.
    pub fn try_canonical(&self) -> Option<GraphRef> {
        match self {
            GraphRef::Suite(_) => Some(self.clone()),
            GraphRef::Mtx(path) => std::fs::canonicalize(path)
                .ok()
                .map(|real| GraphRef::Mtx(real.to_string_lossy().into_owned())),
        }
    }
}

impl fmt::Display for GraphRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Krylov method selector for `SOLVE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    Cg,
    Gmres,
}

impl Method {
    pub fn parse(tok: &str) -> Result<Method, String> {
        match tok {
            "cg" => Ok(Method::Cg),
            "gmres" => Ok(Method::Gmres),
            other => Err(format!("unknown solve method: {other} (want cg|gmres)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Method::Cg => "cg",
            Method::Gmres => "gmres",
        }
    }
}

/// Maximum `levels` a `COARSEN` request may ask for.
pub const MAX_LEVELS: usize = 32;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Request {
    Mis2 { graph: GraphRef },
    Coarsen { graph: GraphRef, levels: usize },
    Solve { graph: GraphRef, method: Method },
    Stats,
    Metrics,
    Ping,
    Quit,
}

impl Request {
    /// Parse one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut it = line.split_whitespace();
        let cmd = it.next().ok_or_else(|| "empty request".to_string())?;
        let req = match cmd {
            "MIS2" => Request::Mis2 {
                graph: GraphRef::parse(it.next().ok_or("MIS2 needs a graph")?)?,
            },
            "COARSEN" => {
                let graph = GraphRef::parse(it.next().ok_or("COARSEN needs a graph")?)?;
                let levels: usize = it
                    .next()
                    .ok_or("COARSEN needs a level count")?
                    .parse()
                    .map_err(|_| "COARSEN levels must be an integer".to_string())?;
                if levels == 0 || levels > MAX_LEVELS {
                    return Err(format!("COARSEN levels must be in 1..={MAX_LEVELS}"));
                }
                Request::Coarsen { graph, levels }
            }
            "SOLVE" => {
                let graph = GraphRef::parse(it.next().ok_or("SOLVE needs a graph")?)?;
                let method = Method::parse(it.next().ok_or("SOLVE needs cg|gmres")?)?;
                Request::Solve { graph, method }
            }
            "STATS" => Request::Stats,
            "METRICS" => Request::Metrics,
            "PING" => Request::Ping,
            "QUIT" => Request::Quit,
            other => {
                return Err(format!(
                    "unknown command: {other} (want MIS2|COARSEN|SOLVE|STATS|METRICS|PING|QUIT)"
                ))
            }
        };
        if let Some(extra) = it.next() {
            return Err(format!("trailing token: {extra}"));
        }
        Ok(req)
    }

    /// Render back to the wire form (inverse of [`Request::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Mis2 { graph } => format!("MIS2 {graph}"),
            Request::Coarsen { graph, levels } => format!("COARSEN {graph} {levels}"),
            Request::Solve { graph, method } => format!("SOLVE {graph} {}", method.name()),
            Request::Stats => "STATS".into(),
            Request::Metrics => "METRICS".into(),
            Request::Ping => "PING".into(),
            Request::Quit => "QUIT".into(),
        }
    }
}

/// Format a success response line.
pub fn ok(body: &str) -> String {
    format!("OK {body}")
}

/// Format an error response line (newlines collapsed so the response
/// stays a single line).
pub fn err(msg: &str) -> String {
    format!("ERR {}", msg.replace('\n', "; "))
}

/// Split a v2 line into its tag and the request remainder. The tag is the
/// first whitespace-delimited token and must be `T` followed by the
/// *canonical* decimal rendering of a `u64` — no leading zeros — so the
/// echo on the response ([`tagged`] re-renders from the parsed value) is
/// always byte-identical to what the client sent. The remainder may be
/// empty (which [`Request::parse`] then rejects as an empty request —
/// still under the caller's tag, so the client can correlate the error).
pub fn split_tagged(line: &str) -> Result<(u64, &str), String> {
    let line = line.trim_start();
    let (tok, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let digits = tok
        .strip_prefix('T')
        .ok_or_else(|| format!("expected T<tag> on a v2 connection, got: {tok}"))?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!(
            "malformed tag: {tok} (want T followed by decimal digits)"
        ));
    }
    if digits.len() > 1 && digits.starts_with('0') {
        // Responses re-render the tag from its parsed value; accepting
        // "T007" would echo it back as "T7", breaking the verbatim-echo
        // contract. Only the canonical form is a valid tag.
        return Err(format!("non-canonical tag: {tok} (no leading zeros)"));
    }
    let tag = digits
        .parse::<u64>()
        .map_err(|_| format!("tag out of range: {tok} (max {})", u64::MAX))?;
    Ok((tag, rest.trim_start()))
}

/// Prefix a response line with its echoed tag.
pub fn tagged(tag: u64, response: &str) -> String {
    format!("T{tag} {response}")
}

/// Prefix a response with the [`UNKNOWN_TAG`] marker — for lines whose tag
/// could not be parsed at all.
pub fn tagged_unknown(response: &str) -> String {
    format!("{UNKNOWN_TAG} {response}")
}

/// The server's answer to a protocol-upgrade hello: `OK <version>
/// max_inflight=<n>`, advertising the per-connection in-flight window
/// cap. Shared by the v2 upgrade here and the v3 upgrade in
/// [`crate::codec`] — one spelling of the negotiation, two framings
/// after it.
pub fn hello_ok_for(version: &str, max_inflight: usize) -> String {
    ok(&format!("{version} max_inflight={max_inflight}"))
}

/// Parse the window cap out of a [`hello_ok_for`] line for `version`;
/// `None` if the line is not that version's hello answer.
pub fn parse_hello_ok_for(version: &str, line: &str) -> Option<usize> {
    let rest = line.strip_prefix("OK ")?.strip_prefix(version)?;
    rest.split_whitespace()
        .find_map(|f| f.strip_prefix("max_inflight="))
        .and_then(|v| v.parse().ok())
}

/// The server's answer to the [`HELLO_V2`] hello, advertising the
/// per-connection in-flight window cap.
pub fn hello_ok(max_inflight: usize) -> String {
    hello_ok_for(HELLO_V2, max_inflight)
}

/// Parse the window cap out of a [`hello_ok`] response line.
pub fn parse_hello_ok(line: &str) -> Option<usize> {
    parse_hello_ok_for(HELLO_V2, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for line in [
            "MIS2 ecology2",
            "MIS2 /tmp/g.mtx",
            "COARSEN af_shell7 3",
            "SOLVE Laplace3D_100 cg",
            "SOLVE tmt_sym gmres",
            "STATS",
            "METRICS",
            "PING",
            "QUIT",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.to_line(), line, "round trip of {line}");
        }
    }

    #[test]
    fn mtx_paths_are_classified_by_suffix() {
        assert_eq!(
            Request::parse("MIS2 data/g.mtx").unwrap(),
            Request::Mis2 {
                graph: GraphRef::Mtx("data/g.mtx".into())
            }
        );
        assert_eq!(
            Request::parse("MIS2 ecology2").unwrap(),
            Request::Mis2 {
                graph: GraphRef::Suite("ecology2".into())
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "MIS2",
            "FROBNICATE x",
            "COARSEN g",
            "COARSEN g zero",
            "COARSEN g 0",
            "COARSEN g 33",
            "SOLVE g",
            "SOLVE g jacobi",
            "MIS2 a b",
            "STATS extra",
            "METRICS extra",
        ] {
            assert!(Request::parse(line).is_err(), "must reject {line:?}");
        }
    }

    #[test]
    fn err_responses_stay_single_line() {
        assert_eq!(err("a\nb"), "ERR a; b");
        assert_eq!(ok("x=1"), "OK x=1");
    }

    #[test]
    fn tagged_lines_split_and_render() {
        assert_eq!(split_tagged("T0 PING").unwrap(), (0, "PING"));
        assert_eq!(
            split_tagged("T42 MIS2 ecology2").unwrap(),
            (42, "MIS2 ecology2")
        );
        assert_eq!(
            split_tagged(&format!("T{} STATS", u64::MAX)).unwrap(),
            (u64::MAX, "STATS")
        );
        // An empty remainder is a valid *frame* (the request parse then
        // fails under the caller's tag).
        assert_eq!(split_tagged("T7").unwrap(), (7, ""));
        assert_eq!(tagged(42, "OK PONG"), "T42 OK PONG");
        assert_eq!(tagged_unknown("ERR nope"), "T? ERR nope");
    }

    #[test]
    fn malformed_tags_are_rejected() {
        for line in [
            "PING",                       // untagged v1 line
            "T PING",                     // no digits
            "Tx PING",                    // non-digit tag
            "T-1 PING",                   // sign is not a digit
            "t1 PING",                    // case-sensitive
            "T18446744073709551616 PING", // u64::MAX + 1
            "T? PING",                    // the reserved marker is not a client tag
            "T007 PING",                  // non-canonical: would echo as T7
            "T01 PING",                   // non-canonical
        ] {
            assert!(split_tagged(line).is_err(), "must reject {line:?}");
        }
        // "T0" itself is canonical and stays valid.
        assert_eq!(split_tagged("T0 PING").unwrap(), (0, "PING"));
    }

    #[test]
    fn hello_round_trips_the_window_cap() {
        let line = hello_ok(64);
        assert_eq!(line, "OK V2 max_inflight=64");
        assert_eq!(parse_hello_ok(&line), Some(64));
        assert_eq!(parse_hello_ok("OK PONG"), None);
        assert_eq!(parse_hello_ok("ERR nope"), None);
    }
}
