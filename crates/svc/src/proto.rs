//! The line-oriented request protocol spoken over the loopback socket.
//!
//! One request per line, one response line per request, UTF-8, fields
//! separated by single spaces:
//!
//! ```text
//! request  = "MIS2" SP graph
//!          | "COARSEN" SP graph SP levels        ; 1 <= levels <= 32
//!          | "SOLVE" SP graph SP ("cg"|"gmres")
//!          | "STATS" | "PING" | "QUIT"
//! graph    = suite workload name | path ending in ".mtx"
//! response = "OK" SP body | "ERR" SP message
//! ```
//!
//! The protocol is deliberately tiny and text-only: it exists so many
//! clients can multiplex MIS-2 / coarsening / solver work onto one warm
//! process, not to be a general RPC system. Responses for compute requests
//! embed order-sensitive fingerprints of the full result (see
//! [`crate::ops`]), which is how the end-to-end tests assert that a served
//! answer is bitwise-identical to a direct library call.

use std::fmt;

/// How a request names its graph: a synthetic suite workload (built by
/// `mis2_graph::suite`) or a Matrix Market file on the server's disk.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GraphRef {
    /// A name from `mis2_graph::suite::workloads()`.
    Suite(String),
    /// A path to a `.mtx` file, resolved on the server side.
    Mtx(String),
}

impl GraphRef {
    /// Classify a protocol token: anything ending in `.mtx` is a file
    /// path, everything else a suite workload name.
    pub fn parse(tok: &str) -> Result<GraphRef, String> {
        if tok.is_empty() {
            return Err("empty graph name".into());
        }
        if tok.ends_with(".mtx") {
            Ok(GraphRef::Mtx(tok.to_string()))
        } else {
            Ok(GraphRef::Suite(tok.to_string()))
        }
    }

    /// The token as it appears on the wire (and in response bodies).
    pub fn token(&self) -> &str {
        match self {
            GraphRef::Suite(s) | GraphRef::Mtx(s) => s,
        }
    }

    /// The cache-key form of this reference: `.mtx` paths are
    /// canonicalized (`.`/`..`/symlinks resolved against the filesystem),
    /// so `./g.mtx` and `g.mtx` intern **one** graph instead of two cache
    /// entries. Suite names are already canonical. `None` means the path
    /// did not resolve (typically a missing file); callers fall back to
    /// the literal spelling — which keeps error messages in the client's
    /// words — and must not memoize the failure, since the file may
    /// appear later. Response bodies always echo the wire token, never
    /// this form.
    pub fn try_canonical(&self) -> Option<GraphRef> {
        match self {
            GraphRef::Suite(_) => Some(self.clone()),
            GraphRef::Mtx(path) => std::fs::canonicalize(path)
                .ok()
                .map(|real| GraphRef::Mtx(real.to_string_lossy().into_owned())),
        }
    }
}

impl fmt::Display for GraphRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Krylov method selector for `SOLVE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    Cg,
    Gmres,
}

impl Method {
    pub fn parse(tok: &str) -> Result<Method, String> {
        match tok {
            "cg" => Ok(Method::Cg),
            "gmres" => Ok(Method::Gmres),
            other => Err(format!("unknown solve method: {other} (want cg|gmres)")),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Method::Cg => "cg",
            Method::Gmres => "gmres",
        }
    }
}

/// Maximum `levels` a `COARSEN` request may ask for.
pub const MAX_LEVELS: usize = 32;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Request {
    Mis2 { graph: GraphRef },
    Coarsen { graph: GraphRef, levels: usize },
    Solve { graph: GraphRef, method: Method },
    Stats,
    Ping,
    Quit,
}

impl Request {
    /// Parse one request line (without the trailing newline).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut it = line.split_whitespace();
        let cmd = it.next().ok_or_else(|| "empty request".to_string())?;
        let req = match cmd {
            "MIS2" => Request::Mis2 {
                graph: GraphRef::parse(it.next().ok_or("MIS2 needs a graph")?)?,
            },
            "COARSEN" => {
                let graph = GraphRef::parse(it.next().ok_or("COARSEN needs a graph")?)?;
                let levels: usize = it
                    .next()
                    .ok_or("COARSEN needs a level count")?
                    .parse()
                    .map_err(|_| "COARSEN levels must be an integer".to_string())?;
                if levels == 0 || levels > MAX_LEVELS {
                    return Err(format!("COARSEN levels must be in 1..={MAX_LEVELS}"));
                }
                Request::Coarsen { graph, levels }
            }
            "SOLVE" => {
                let graph = GraphRef::parse(it.next().ok_or("SOLVE needs a graph")?)?;
                let method = Method::parse(it.next().ok_or("SOLVE needs cg|gmres")?)?;
                Request::Solve { graph, method }
            }
            "STATS" => Request::Stats,
            "PING" => Request::Ping,
            "QUIT" => Request::Quit,
            other => {
                return Err(format!(
                    "unknown command: {other} (want MIS2|COARSEN|SOLVE|STATS|PING|QUIT)"
                ))
            }
        };
        if let Some(extra) = it.next() {
            return Err(format!("trailing token: {extra}"));
        }
        Ok(req)
    }

    /// Render back to the wire form (inverse of [`Request::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Mis2 { graph } => format!("MIS2 {graph}"),
            Request::Coarsen { graph, levels } => format!("COARSEN {graph} {levels}"),
            Request::Solve { graph, method } => format!("SOLVE {graph} {}", method.name()),
            Request::Stats => "STATS".into(),
            Request::Ping => "PING".into(),
            Request::Quit => "QUIT".into(),
        }
    }
}

/// Format a success response line.
pub fn ok(body: &str) -> String {
    format!("OK {body}")
}

/// Format an error response line (newlines collapsed so the response
/// stays a single line).
pub fn err(msg: &str) -> String {
    format!("ERR {}", msg.replace('\n', "; "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for line in [
            "MIS2 ecology2",
            "MIS2 /tmp/g.mtx",
            "COARSEN af_shell7 3",
            "SOLVE Laplace3D_100 cg",
            "SOLVE tmt_sym gmres",
            "STATS",
            "PING",
            "QUIT",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.to_line(), line, "round trip of {line}");
        }
    }

    #[test]
    fn mtx_paths_are_classified_by_suffix() {
        assert_eq!(
            Request::parse("MIS2 data/g.mtx").unwrap(),
            Request::Mis2 {
                graph: GraphRef::Mtx("data/g.mtx".into())
            }
        );
        assert_eq!(
            Request::parse("MIS2 ecology2").unwrap(),
            Request::Mis2 {
                graph: GraphRef::Suite("ecology2".into())
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "MIS2",
            "FROBNICATE x",
            "COARSEN g",
            "COARSEN g zero",
            "COARSEN g 0",
            "COARSEN g 33",
            "SOLVE g",
            "SOLVE g jacobi",
            "MIS2 a b",
            "STATS extra",
        ] {
            assert!(Request::parse(line).is_err(), "must reject {line:?}");
        }
    }

    #[test]
    fn err_responses_stay_single_line() {
        assert_eq!(err("a\nb"), "ERR a; b");
        assert_eq!(ok("x=1"), "OK x=1");
    }
}
