//! The compute operations the service exposes, as pure functions of a
//! graph — one place that defines *exactly* what a request runs, so the
//! server, the direct library path used by tests, and the throughput
//! bench can never drift apart.
//!
//! Every operation is deterministic (seeded, fixed-block reductions), so a
//! response body — which embeds an order-sensitive fingerprint of the full
//! result — is bitwise-identical no matter which thread, sub-team size, or
//! backend computed it. That is the service's determinism contract.

use crate::codec;
use crate::proto::{GraphRef, Method, Request};
use crate::registry::{Registry, RespBytes};
use mis2_coarsen::hierarchy::{coarsen_recursive, Level};
use mis2_core::Mis2Result;
use mis2_graph::CsrGraph;
use mis2_prim::hash::splitmix64;
use mis2_solver::{gmres, pcg, Jacobi, SolveOpts, SolveResult};
use std::sync::Arc;

/// Cache key for a derived artifact: the operation plus every parameter
/// that influences the result. Paired with a graph reference by the
/// registry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKey {
    Mis2,
    Coarsen { levels: usize },
    Solve { method: Method },
}

/// Solver iteration cap — bounds worst-case request latency; an
/// unconverged solve is still a valid, deterministic response.
pub const SOLVE_MAX_ITERS: usize = 200;
/// Solver relative-residual tolerance.
pub const SOLVE_TOL: f64 = 1e-8;
/// GMRES restart length.
pub const SOLVE_RESTART: usize = 30;
/// Coarsening stops once a level has at most this many vertices.
pub const COARSEN_MIN_VERTICES: usize = 64;

/// A cached derived result.
pub enum Artifact {
    Mis2(Mis2Result),
    Hierarchy(Vec<Level>),
    Solve(SolveArtifact),
}

impl Artifact {
    /// Approximate heap footprint in bytes — what the registry charges
    /// this artifact against its memory budget.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Artifact::Mis2(r) => r.heap_bytes(),
            Artifact::Hierarchy(h) => {
                mis2_coarsen::hierarchy::hierarchy_heap_bytes(h)
                    + h.capacity() * std::mem::size_of::<Level>()
            }
            Artifact::Solve(s) => s.heap_bytes(),
        }
    }
}

/// Result of a `SOLVE` request: the iterate and the solve statistics.
pub struct SolveArtifact {
    pub x: Vec<f64>,
    pub result: SolveResult,
}

impl SolveArtifact {
    /// Approximate heap footprint in bytes (iterate plus history).
    pub fn heap_bytes(&self) -> usize {
        self.x.capacity() * std::mem::size_of::<f64>() + self.result.heap_bytes()
    }
}

/// Order-sensitive 64-bit fingerprint of a u32 sequence (the same chain
/// the repo's golden-fingerprint tests use).
pub fn fingerprint_u32(data: impl IntoIterator<Item = u32>) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for x in data {
        h = splitmix64(h ^ x as u64);
    }
    h
}

/// Order-sensitive fingerprint of an f64 sequence over exact bit patterns,
/// so any reduction-order drift in the solvers is caught.
pub fn fingerprint_f64<'a>(data: impl IntoIterator<Item = &'a f64>) -> u64 {
    let mut h = 0x84222325_CBF29CE4u64;
    for x in data {
        h = splitmix64(h ^ x.to_bits());
    }
    h
}

/// The deterministic SPD operator a `SOLVE` request assembles from its
/// graph: adjacency off-diagonals of -1 with a constant diagonal of
/// `max_degree + 1` (strictly diagonally dominant, hence SPD).
pub fn solve_matrix(g: &CsrGraph) -> mis2_sparse::CsrMatrix {
    mis2_sparse::gen::from_graph_with_diag(g, (g.max_degree() + 1) as f64)
}

/// The fixed right-hand side of a `SOLVE` request.
pub fn solve_rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect()
}

/// Run one operation on a graph. This is the single definition of each
/// request's semantics; everything else (server, tests, benches) calls
/// through here.
pub fn compute(g: &CsrGraph, op: &OpKey) -> Artifact {
    match op {
        OpKey::Mis2 => {
            let r = mis2_core::mis2(g);
            mis2_core::verify_mis2(g, &r.is_in).expect("internal error: served MIS-2 invalid");
            Artifact::Mis2(r)
        }
        OpKey::Coarsen { levels } => {
            Artifact::Hierarchy(coarsen_recursive(g, COARSEN_MIN_VERTICES, *levels))
        }
        OpKey::Solve { method } => {
            let a = solve_matrix(g);
            let b = solve_rhs(a.nrows());
            let opts = SolveOpts {
                tol: SOLVE_TOL,
                max_iters: SOLVE_MAX_ITERS,
            };
            let jacobi = Jacobi::new(&a);
            let (x, result) = match method {
                Method::Cg => pcg(&a, &b, &jacobi, &opts),
                Method::Gmres => gmres(&a, &b, &jacobi, SOLVE_RESTART, &opts),
            };
            Artifact::Solve(SolveArtifact { x, result })
        }
    }
}

/// Render the response body (everything after `OK `) for an artifact.
pub fn body(graph_token: &str, op: &OpKey, artifact: &Artifact) -> String {
    match (op, artifact) {
        (OpKey::Mis2, Artifact::Mis2(r)) => {
            let fp = fingerprint_u32(
                r.in_set
                    .iter()
                    .copied()
                    .chain([r.iterations as u32, r.size() as u32]),
            );
            format!(
                "MIS2 {graph_token} size={} iters={} fp={fp:#018x}",
                r.size(),
                r.iterations
            )
        }
        (OpKey::Coarsen { levels }, Artifact::Hierarchy(h)) => {
            let mut fp = 0xCBF2_9CE4_8422_2325u64;
            for lvl in h {
                fp = splitmix64(fp ^ lvl.graph.num_vertices() as u64);
                fp = splitmix64(fp ^ lvl.graph.num_edges() as u64);
                if let Some(agg) = &lvl.agg {
                    fp = splitmix64(fp ^ fingerprint_u32(agg.labels.iter().copied()));
                }
            }
            let coarsest = &h.last().expect("hierarchy is never empty").graph;
            format!(
                "COARSEN {graph_token} want={levels} levels={} coarsest_v={} coarsest_e={} \
                 fp={fp:#018x}",
                h.len(),
                coarsest.num_vertices(),
                coarsest.num_edges()
            )
        }
        (OpKey::Solve { method }, Artifact::Solve(s)) => {
            let fp = splitmix64(
                fingerprint_f64(s.x.iter().chain(s.result.history.iter()))
                    ^ s.result.iterations as u64,
            );
            format!(
                "SOLVE {graph_token} {} n={} iters={} converged={} fp={fp:#018x}",
                method.name(),
                s.x.len(),
                s.result.iterations,
                s.result.converged
            )
        }
        _ => unreachable!("artifact kind always matches its op key"),
    }
}

/// The body of a response: freshly rendered text, or response bytes
/// interned in the registry and shared zero-copy onto the v3 wire.
pub enum Body {
    Text(String),
    Interned(Arc<RespBytes>),
}

/// One response, protocol-agnostic: `to_line()` renders the v1/v2 text
/// form (`OK ...` / `ERR ...`), while the v3 writer folds `status()` into
/// a binary header and puts `Body`'s bytes on the wire directly — for an
/// [`Body::Interned`] body, without copying or re-serializing anything.
///
/// This is the type the scheduler's jobs produce and its completions
/// receive, so interned bytes survive the whole job → completion → writer
/// path as one shared `Arc`.
pub struct Response {
    ok: bool,
    body: Body,
}

impl Response {
    /// A successful response with a freshly rendered body.
    pub fn ok_text(body: String) -> Response {
        Response {
            ok: true,
            body: Body::Text(body),
        }
    }

    /// An error response (newlines collapsed, exactly like
    /// [`crate::proto::err`], so the text rendering stays one line).
    pub fn err(msg: &str) -> Response {
        Response {
            ok: false,
            body: Body::Text(msg.replace('\n', "; ")),
        }
    }

    /// A successful response served from interned bytes — only `OK`
    /// bodies are ever interned (errors are never cached).
    pub fn interned(bytes: Arc<RespBytes>) -> Response {
        Response {
            ok: true,
            body: Body::Interned(bytes),
        }
    }

    /// Rebuild a response from its v3 wire form (status byte + payload)
    /// — the inverse of [`Response::status`] / [`Response::body_bytes`],
    /// used by the shard router to re-emit an upstream shard's frame to a
    /// downstream client. Response payloads are always UTF-8 (servers
    /// render them from strings); invalid bytes are replaced rather than
    /// trusted, exactly like [`crate::codec::Frame::to_line`].
    pub fn from_wire(status: u8, payload: &[u8]) -> Response {
        Response {
            ok: status == codec::STATUS_OK,
            body: Body::Text(String::from_utf8_lossy(payload).into_owned()),
        }
    }

    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// The v3 frame status byte this response carries.
    pub fn status(&self) -> u8 {
        if self.ok {
            codec::STATUS_OK
        } else {
            codec::STATUS_ERR
        }
    }

    /// The body bytes as they go on a v3 wire (no `OK `/`ERR ` prefix).
    pub fn body_bytes(&self) -> &[u8] {
        match &self.body {
            Body::Text(s) => s.as_bytes(),
            Body::Interned(b) => &b.body,
        }
    }

    /// Decompose for the writer: status byte plus the owned body.
    pub fn into_parts(self) -> (u8, Body) {
        let status = self.status();
        (status, self.body)
    }

    /// Render the v1/v2 text line (`OK <body>` / `ERR <body>`).
    pub fn to_line(&self) -> String {
        let prefix = if self.ok { "OK" } else { "ERR" };
        format!("{prefix} {}", String::from_utf8_lossy(self.body_bytes()))
    }
}

/// The `(graph, op)` a compute request names; `None` for the
/// connection-level requests (`STATS`/`PING`/`QUIT`).
pub fn request_op(req: &Request) -> Option<(&GraphRef, OpKey)> {
    match req {
        Request::Mis2 { graph } => Some((graph, OpKey::Mis2)),
        Request::Coarsen { graph, levels } => Some((graph, OpKey::Coarsen { levels: *levels })),
        Request::Solve { graph, method } => Some((graph, OpKey::Solve { method: *method })),
        Request::Stats | Request::Metrics | Request::Ping | Request::Quit => None,
    }
}

/// Execute one *compute* request against a registry. The success path
/// returns the registry's interned response bytes ([`Response::interned`])
/// so every protocol — and every later cache hit — serves the same shared
/// serialization. `STATS`/`PING`/`QUIT` are connection-level and handled
/// by the server, not here.
pub fn execute_response(reg: &Registry, req: &Request) -> Response {
    let Some((graph, op)) = request_op(req) else {
        return Response::err("not a compute request");
    };
    match reg.response(graph, &op) {
        Ok(bytes) => Response::interned(bytes),
        Err(e) => Response::err(&e),
    }
}

/// Text-line adapter over [`execute_response`]: the full v1 response line.
/// The direct-call side of every e2e diff goes through here.
pub fn execute(reg: &Registry, req: &Request) -> String {
    execute_response(reg, req).to_line()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::GraphRef;
    use mis2_graph::Scale;

    #[test]
    fn compute_is_deterministic_per_op() {
        let g = mis2_graph::gen::laplace2d(24, 24);
        for op in [
            OpKey::Mis2,
            OpKey::Coarsen { levels: 3 },
            OpKey::Solve { method: Method::Cg },
            OpKey::Solve {
                method: Method::Gmres,
            },
        ] {
            let a = body("g", &op, &compute(&g, &op));
            let b = body("g", &op, &compute(&g, &op));
            assert_eq!(a, b, "{op:?}");
        }
    }

    #[test]
    fn solve_converges_on_small_laplacian() {
        let g = mis2_graph::gen::laplace2d(16, 16);
        let Artifact::Solve(s) = compute(&g, &OpKey::Solve { method: Method::Cg }) else {
            panic!("wrong artifact kind");
        };
        assert!(
            s.result.converged,
            "Jacobi-CG must converge on a 16x16 grid"
        );
    }

    #[test]
    fn execute_formats_ok_and_err_lines() {
        let reg = Registry::new(Scale::Tiny);
        let ok_line = execute(
            &reg,
            &Request::Mis2 {
                graph: GraphRef::Suite("ecology2".into()),
            },
        );
        assert!(ok_line.starts_with("OK MIS2 ecology2 size="), "{ok_line}");
        let err_line = execute(
            &reg,
            &Request::Mis2 {
                graph: GraphRef::Suite("nope".into()),
            },
        );
        assert!(err_line.starts_with("ERR "), "{err_line}");
        assert!(!err_line.contains('\n'), "{err_line}");
    }

    #[test]
    fn response_renders_lines_and_status_bytes() {
        let ok = Response::ok_text("PONG".into());
        assert!(ok.is_ok());
        assert_eq!(ok.status(), codec::STATUS_OK);
        assert_eq!(ok.to_line(), "OK PONG");
        assert_eq!(ok.body_bytes(), b"PONG");

        let err = Response::err("a\nb");
        assert!(!err.is_ok());
        assert_eq!(err.status(), codec::STATUS_ERR);
        assert_eq!(err.to_line(), "ERR a; b");
    }

    #[test]
    fn wire_form_round_trips_through_from_wire() {
        for resp in [Response::ok_text("PONG".into()), Response::err("nope")] {
            let back = Response::from_wire(resp.status(), resp.body_bytes());
            assert_eq!(back.status(), resp.status());
            assert_eq!(back.to_line(), resp.to_line());
        }
    }

    #[test]
    fn interned_responses_share_the_registry_bytes() {
        let reg = Registry::new(Scale::Tiny);
        let req = Request::parse("MIS2 ecology2").unwrap();
        let resp = execute_response(&reg, &req);
        assert!(resp.is_ok());
        let Body::Interned(bytes) = &resp.body else {
            panic!("compute success must carry interned bytes");
        };
        let again = reg
            .response(&GraphRef::Suite("ecology2".into()), &OpKey::Mis2)
            .unwrap();
        assert!(
            Arc::ptr_eq(bytes, &again),
            "the response and the registry must share one interned Arc"
        );
        assert_eq!(resp.to_line(), execute(&reg, &req));
    }
}
